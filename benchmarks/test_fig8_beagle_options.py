"""Figure 8 — Beagle indexing options across content types."""

from conftest import bench_scale

from repro.bench import fig8_beagle_options


def test_fig8_beagle_index_options(benchmark, print_result):
    scale = bench_scale(0.08)
    result = benchmark.pedantic(
        lambda: fig8_beagle_options.run(scale=scale, seed=42), iterations=1, rounds=1
    )
    print_result(
        "Figure 8: Beagle relative index time and size", fig8_beagle_options.format_table(result)
    )

    relative_size = result["relative_size"]
    relative_time = result["relative_time"]

    # Everything is normalised to Original/Default.
    assert abs(relative_size["Original"]["Default"] - 1.0) < 1e-9
    assert abs(relative_time["Original"]["Default"] - 1.0) < 1e-9

    # TextCache inflates the index for text-heavy images (paper: ~2-3x).
    assert relative_size["TextCache"]["Text"] > 1.2 * relative_size["Original"]["Text"]
    # DisFilter collapses the index to attribute records only.
    assert relative_size["DisFilter"]["Default"] < 0.7 * relative_size["Original"]["Default"]
    assert relative_time["DisFilter"]["Default"] < relative_time["Original"]["Default"]
    # DisDir is a modest saving.
    assert relative_size["DisDir"]["Default"] < relative_size["Original"]["Default"]
    # The all-text image is the most expensive one to index under Original.
    assert relative_time["Original"]["Text"] >= relative_time["Original"]["Binary"]
