"""Table 3 — statistical accuracy of generated images (MDCC over trials)."""

from conftest import bench_scale

from repro.bench import table3_mdcc


def test_table3_mdcc(benchmark, print_result):
    scale = bench_scale(0.08)
    result = benchmark.pedantic(
        lambda: table3_mdcc.run(trials=10, scale=scale, seed=42), iterations=1, rounds=1
    )
    print_result("Table 3: average MDCC over trials", table3_mdcc.format_table(result))

    averaged = result["average_mdcc"]
    # Averages stay well-behaved; the paper's absolute values (0.004-0.06) are
    # reached at full scale (20k files) — see EXPERIMENTS.md.
    assert averaged["file_size_by_count"] < 0.10
    assert averaged["extension_popularity"] < 0.10
    assert averaged["directory_count_with_depth"] < 0.30
    assert averaged["file_count_with_depth"] < 0.30
    assert averaged["bytes_with_depth_mb"] < 2.0
