"""Figure 3 — convergence of constraint resolution and constrained distributions."""

from repro.bench import fig3_constraints


def test_fig3_constraint_convergence(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig3_constraints.run(num_files=1_000, target_sum=90_000.0, trials=5, seed=42),
        iterations=1,
        rounds=1,
    )
    print_result("Figure 3: resolving multiple constraints", fig3_constraints.format_table(result))

    # Most trials converge to within the 5% band (paper: 90% for the 90K case).
    assert result["converged_fraction"] >= 0.6
    # The constrained histogram still resembles the original one.
    original = result["original_files_by_size"]
    constrained = result["constrained_files_by_size"]
    assert len(original) == len(constrained)
    max_gap = max(abs(a - b) for a, b in zip(original, constrained))
    assert max_gap < 0.15
