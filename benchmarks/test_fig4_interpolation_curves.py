"""Figure 4 — piecewise interpolation of file-size curves."""

from repro.bench import fig4_interpolation


def test_fig4_piecewise_interpolation(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig4_interpolation.run(target_size_gib=75.0, max_files_per_snapshot=3_000),
        iterations=1,
        rounds=1,
    )
    print_result("Figure 4: piecewise interpolation", fig4_interpolation.format_table(result))

    assert result["known_sizes_gib"] == [10.0, 50.0, 100.0]
    composite = result["composite_fractions"]
    assert abs(sum(composite) - 1.0) < 1e-9
    # Every interpolated bin lies within the envelope of the known curves
    # (linear interpolation inside the known range cannot overshoot).
    for bin_index, segment in result["segments"].items():
        low, high = min(segment), max(segment)
        # compare pre-normalisation value implicitly via a loose envelope check
        assert composite[bin_index] <= high + 0.05
