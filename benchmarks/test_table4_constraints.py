"""Table 4 — summary of resolving multiple constraints at 30K/60K/90K."""

from repro.bench import table4_constraints


def test_table4_constraint_summary(benchmark, print_result):
    # The paper's 30K/60K/90K targets sit at 0.5x / 1.0x / 1.5x the expected
    # sum of its 1000-file sample.  To keep the benchmark fast we use 500
    # files and scale the targets to the same ratios (expected sum ~= 30000).
    num_files = 500
    expected_sum = num_files * 60.0
    targets = (0.5 * expected_sum, 1.0 * expected_sum, 1.5 * expected_sum)
    result = benchmark.pedantic(
        lambda: table4_constraints.run(
            target_sums=targets, num_files=num_files, trials=8, seed=42
        ),
        iterations=1,
        rounds=1,
    )
    print_result("Table 4: constraint resolution summary", table4_constraints.format_table(result))

    rows = result["rows"]
    for target, summary in rows.items():
        # Resolution always improves on the raw sample.
        assert summary["avg_final_beta"] <= summary["avg_initial_beta"] + 1e-9
        assert 0.0 <= summary["avg_ks_d"] <= 1.0
    # The middle target (at the expected sum) is the easiest: near-total success
    # with low oversampling, as in the paper's 60K row.
    assert rows[targets[1]]["success_rate"] >= 0.7
    assert rows[targets[1]]["avg_final_beta"] <= 0.05 + 1e-9
    # The far target (1.5x the expected sum) needs more oversampling, as in the
    # paper's 90K row.
    assert rows[targets[2]]["avg_alpha"] >= rows[targets[1]]["avg_alpha"]
