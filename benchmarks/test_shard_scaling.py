"""Sharded generation scaling (the repro.shard acceptance bar).

Splitting an Image2-scale metadata run across 4 shards must at least halve
the critical-path wall-clock.  Shard generation is embarrassingly parallel
by construction — each shard is a pure function of its ``ShardSpec`` — so
the parallel wall is ``plan + max(shard walls) + merge + digest``.  That
critical path is *modeled* from per-shard walls measured in one process
(this keeps the bar meaningful on CI runners with few cores, where measured
multi-process walls are dominated by interpreter/scipy start-up, not by the
algorithm); a measured ``jobs=4`` comparison runs when the machine actually
has the cores, mirroring ``test_materialize_parallel.py``.

Determinism is asserted as a side effect: the ``jobs=1`` and ``jobs=4``
merged fingerprints must be identical whenever both run.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import bench_scale

from repro.core.config import GIB, ImpressionsConfig
from repro.shard import generate_sharded

#: Acceptance bar: the 4-shard critical path must at least halve the wall.
SHARD_SPEEDUP_BAR = 2.0
NUM_SHARDS = 4


def _image2_metadata_config(scale: float, seed: int = 42) -> ImpressionsConfig:
    return ImpressionsConfig(
        fs_size_bytes=max(int(12.0 * GIB * scale), 8 * 1024 * 1024),
        num_files=max(int(52_000 * scale), 100),
        num_directories=max(int(4_000 * scale), 20),
        seed=seed,
    )


def _critical_path(result) -> float:
    timings = result.timings
    return (
        timings["plan_seconds"]
        + max(result.shard_walls)
        + timings["merge_seconds"]
        + timings["digest_seconds"]
    )


def test_shard_critical_path_speedup(print_result, bench_json):
    scale = bench_scale(0.25)
    config = _image2_metadata_config(scale)

    # Warm the lazy scipy/numpy distribution setup so shard walls measure the
    # algorithm, not first-touch imports.
    generate_sharded(_image2_metadata_config(0.002, seed=1), num_shards=2, jobs=1)

    start = time.perf_counter()
    serial = generate_sharded(config, num_shards=NUM_SHARDS, jobs=1)
    serial_seconds = time.perf_counter() - start

    modeled_parallel = _critical_path(serial)
    modeled_speedup = serial_seconds / max(modeled_parallel, 1e-9)

    cpus = os.cpu_count() or 1
    measured_seconds = None
    measured_speedup = None
    if cpus >= NUM_SHARDS:
        start = time.perf_counter()
        parallel = generate_sharded(config, num_shards=NUM_SHARDS, jobs=NUM_SHARDS)
        measured_seconds = time.perf_counter() - start
        measured_speedup = serial_seconds / max(measured_seconds, 1e-9)
        assert parallel.fingerprint == serial.fingerprint
        assert parallel.content_digest == serial.content_digest

    walls = ", ".join(f"{wall:.2f}" for wall in serial.shard_walls)
    print_result(
        "Sharded generation scaling",
        "\n".join(
            [
                f"image: {serial.image.file_count} files, "
                f"{serial.image.total_bytes / 1e9:.1f} GB "
                f"(Image2 scale {scale:g}, metadata only, {NUM_SHARDS} shards)",
                f"jobs=1 wall:        {serial_seconds:8.2f} s  (shard walls: {walls})",
                f"critical path:      {modeled_parallel:8.2f} s "
                f"(plan + max shard + merge + digest)",
                f"modeled speedup:    {modeled_speedup:8.2f}x (bar: {SHARD_SPEEDUP_BAR:.1f}x)",
                f"measured jobs={NUM_SHARDS}:    "
                + (f"{measured_seconds:8.2f} s ({measured_speedup:.2f}x)"
                   if measured_seconds is not None
                   else f" skipped ({cpus} CPUs)"),
            ]
        ),
    )
    bench_json(
        "shard",
        {
            "scale": scale,
            "files": serial.image.file_count,
            "directories": serial.image.directory_count,
            "total_bytes": serial.image.total_bytes,
            "num_shards": NUM_SHARDS,
            "cpu_count": cpus,
            "fingerprint": serial.fingerprint,
            "plan_fingerprint": serial.plan.fingerprint(),
            "serial_seconds": serial_seconds,
            "shard_walls": list(serial.shard_walls),
            "plan_seconds": serial.timings["plan_seconds"],
            "merge_seconds": serial.timings["merge_seconds"],
            "digest_seconds": serial.timings["digest_seconds"],
            "modeled_parallel_seconds": modeled_parallel,
            "modeled_speedup": modeled_speedup,
            "measured_parallel_seconds": measured_seconds,
            "measured_speedup": measured_speedup,
            "speedup_bar": SHARD_SPEEDUP_BAR,
        },
    )

    assert modeled_speedup >= SHARD_SPEEDUP_BAR, (
        f"{NUM_SHARDS}-shard critical path only {modeled_speedup:.2f}x better than "
        f"jobs=1 ({serial_seconds:.2f}s -> {modeled_parallel:.2f}s)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < NUM_SHARDS,
    reason=f"measured shard speedup bar needs >= {NUM_SHARDS} CPUs",
)
def test_shard_measured_parallel_speedup(print_result):
    scale = bench_scale(0.25)
    config = _image2_metadata_config(scale)
    generate_sharded(_image2_metadata_config(0.002, seed=1), num_shards=2, jobs=1)

    start = time.perf_counter()
    serial = generate_sharded(config, num_shards=NUM_SHARDS, jobs=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = generate_sharded(config, num_shards=NUM_SHARDS, jobs=NUM_SHARDS)
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print_result(
        "Sharded generation (measured)",
        f"jobs=1: {serial_seconds:.2f} s   jobs={NUM_SHARDS}: {parallel_seconds:.2f} s "
        f"({speedup:.2f}x, bar {SHARD_SPEEDUP_BAR:.1f}x)",
    )
    assert parallel.fingerprint == serial.fingerprint
    assert parallel.content_digest == serial.content_digest
    assert speedup >= SHARD_SPEEDUP_BAR, (
        f"jobs={NUM_SHARDS} only {speedup:.2f}x faster than jobs=1 "
        f"({serial_seconds:.2f}s -> {parallel_seconds:.2f}s)"
    )
