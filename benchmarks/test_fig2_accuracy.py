"""Figure 2 — accuracy of Impressions in recreating file-system properties."""

from conftest import bench_scale

from repro.bench import fig2_accuracy


def test_fig2_accuracy(benchmark, print_result):
    scale = bench_scale(0.15)
    result = benchmark.pedantic(
        lambda: fig2_accuracy.run(scale=scale, seed=42), iterations=1, rounds=1
    )
    print_result("Figure 2: generated vs desired distributions", fig2_accuracy.format_table(result))

    mdcc = result["mdcc"]
    # Size, extension and subdirectory curves match tightly even at small scale;
    # the per-depth curves carry more sampling noise but stay clearly aligned.
    assert mdcc["file_size_by_count"] < 0.10
    assert mdcc["extension_popularity"] < 0.10
    assert mdcc["directory_size_subdirectories"] < 0.15
    assert mdcc["directory_count_with_depth"] < 0.30
    assert mdcc["file_count_with_depth"] < 0.30
    assert mdcc["file_size_by_bytes"] < 0.45
