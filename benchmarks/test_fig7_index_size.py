"""Figure 7 — impact of file content on index size (Beagle vs GDL)."""

from conftest import bench_scale

from repro.bench import fig7_index_size


def test_fig7_index_size_comparison(benchmark, print_result):
    scale = bench_scale(0.08)
    result = benchmark.pedantic(
        lambda: fig7_index_size.run(scale=scale, seed=42), iterations=1, rounds=1
    )
    print_result("Figure 7: index size / FS size", fig7_index_size.format_table(result))

    scenarios = result["scenarios"]
    model_text = scenarios["Text (Model)"]
    single_word = scenarios["Text (1 Word)"]
    binary = scenarios["Binary"]

    # Word-model text: Beagle's index is the larger one.
    assert model_text["beagle"]["index_to_fs_ratio"] > model_text["gdl"]["index_to_fs_ratio"]
    # Binary content: the ordering flips and GDL's index is larger.
    assert binary["gdl"]["index_to_fs_ratio"] > binary["beagle"]["index_to_fs_ratio"]
    # Degenerate single-word text produces a smaller index than realistic text.
    assert (
        single_word["beagle"]["index_to_fs_ratio"] < model_text["beagle"]["index_to_fs_ratio"]
    )
    # Ratios live in the 0.001-0.5 band the paper's log axis spans.
    for scenario in scenarios.values():
        for engine in ("beagle", "gdl"):
            assert 0.0005 < scenario[engine]["index_to_fs_ratio"] < 0.5
