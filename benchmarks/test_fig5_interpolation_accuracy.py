"""Figure 5 — accuracy of interpolation (75 GB) and extrapolation (125 GB)."""

from repro.bench import fig5_interpolation


def test_fig5_interpolation_accuracy(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig5_interpolation.run(max_files_per_snapshot=3_000, seed=2009),
        iterations=1,
        rounds=1,
    )
    print_result("Figure 5: interpolation/extrapolation accuracy", fig5_interpolation.format_table(result))

    views = result["results"]
    # The by-count curves are the easier ones (paper: D = 0.054 / 0.081).
    assert views["files_by_count"][75.0]["mdcc"] < 0.15
    assert views["files_by_count"][125.0]["mdcc"] < 0.20
    # The bytes-weighted curves are noisier (paper: D = 0.105) but still useful.
    assert views["files_by_bytes"][75.0]["mdcc"] < 0.45
    assert views["files_by_bytes"][125.0]["mdcc"] < 0.45
