"""Ablation benches for the design choices the paper motivates in the text."""

from repro.bench import ablations


def test_ablation_size_models(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: ablations.run_size_model_ablation(num_files=20_000, seed=42), iterations=1, rounds=1
    )
    print_result("Ablation: file-size models", ablations.format_size_model_table(result))
    hybrid = result["hybrid"]
    simple = result["simple-lognormal"]
    # Both candidates fit the files-by-size (count) curve — the paper found the
    # simple model "acceptable for files by size".
    assert hybrid["files_by_size_mdcc"] < 0.05
    assert simple["files_by_size_mdcc"] < 0.05
    # The bytes curve is where they differ: the desired curve puts a large
    # share of all bytes into >512 MB files; the hybrid's Pareto tail accounts
    # for that mass (indeed over-weights it under a 1 TB cap) while the simple
    # lognormal puts almost nothing there — it simply cannot produce the
    # bytes-by-size curve's upper mode, which is the paper's reason for
    # switching models.
    target_share = hybrid["target_bytes_above_512mb"]
    assert target_share > 0.10
    assert simple["bytes_above_512mb"] < 0.05
    assert hybrid["bytes_above_512mb"] > 0.10


def test_ablation_depth_model(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: ablations.run_depth_model_ablation(num_files=2_000, seed=42), iterations=1, rounds=1
    )
    print_result("Ablation: depth models", ablations.format_depth_model_table(result))
    # The Poisson-only model matches the files-by-depth target at least as well,
    # but the multiplicative model trades a little of that accuracy for a much
    # better bytes-by-depth profile.
    assert (
        result["multiplicative"]["mean_bytes_by_depth_error_mb"]
        <= result["poisson-only"]["mean_bytes_by_depth_error_mb"] + 0.2
    )
    assert result["multiplicative"]["files_by_depth_mdcc"] < 0.5
    assert result["poisson-only"]["files_by_depth_mdcc"] < 0.5


def test_ablation_subset_sum_improvement(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: ablations.run_subset_sum_ablation(pool_size=1_100, subset_size=1_000, trials=8),
        iterations=1,
        rounds=1,
    )
    print_result("Ablation: subset-sum local improvement", ablations.format_subset_sum_table(result))
    assert (
        result["with-improvement"]["mean_relative_error"]
        <= result["without-improvement"]["mean_relative_error"]
    )


def test_ablation_content_models(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: ablations.run_content_model_ablation(bytes_per_model=400_000),
        iterations=1,
        rounds=1,
    )
    print_result("Ablation: content models", ablations.format_content_model_table(result))
    # Single-word content is degenerate (one unique word); the length-frequency
    # model produces the richest vocabulary; the hybrid sits in between.
    assert result["single-word"]["unique_words"] <= 2
    assert result["word-length"]["unique_words"] > result["hybrid"]["unique_words"]
    assert result["hybrid"]["unique_words"] > result["word-popularity"]["unique_words"]
