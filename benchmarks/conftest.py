"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure from the paper via the drivers
in :mod:`repro.bench` and prints the resulting rows/series, so running::

    pytest benchmarks/ --benchmark-only

produces both timing data (how long each experiment takes to regenerate) and
the experimental results themselves.

Scale: benchmarks default to scaled-down images so the whole suite finishes in
minutes.  Set ``IMPRESSIONS_BENCH_SCALE=1.0`` to run paper-sized experiments.

Perf baselines: pass ``--bench-json DIR`` (or set
``IMPRESSIONS_BENCH_JSON=DIR``) and instrumented benchmarks write
``BENCH_<name>.json`` files — machine-readable ops/sec and per-phase timings —
into DIR, so the performance trajectory can be tracked across PRs (CI uploads
them as artifacts).
"""

from __future__ import annotations

import json
import os
import platform

import pytest

# --bench-json itself is registered in the repo-root conftest.py: pytest only
# honours pytest_addoption from initial conftests, and this file is not one
# when the suite is invoked from the repo root.


def bench_scale(default: float) -> float:
    """Benchmark image scale, overridable via IMPRESSIONS_BENCH_SCALE."""
    value = os.environ.get("IMPRESSIONS_BENCH_SCALE")
    if value is None:
        return default
    return float(value)


@pytest.fixture(scope="session")
def print_result():
    """Print a driver's formatted table underneath the benchmark output."""

    def _print(title: str, table: str) -> None:
        print()
        print(f"=== {title} ===")
        print(table)

    return _print


@pytest.fixture(scope="session")
def bench_json(request):
    """Writer for ``BENCH_<name>.json`` perf-baseline files.

    Returns a callable ``(name, payload) -> path | None``.  A no-op (returns
    None) unless ``--bench-json`` / ``IMPRESSIONS_BENCH_JSON`` names a target
    directory.  Payloads are augmented with the platform and python version so
    baselines from different machines are not compared blindly.
    """
    directory = request.config.getoption("--bench-json")

    def _write(name: str, payload: dict) -> str | None:
        if not directory:
            return None
        os.makedirs(directory, exist_ok=True)
        document = {
            "benchmark": name,
            "platform": platform.platform(),
            "python": platform.python_version(),
            **payload,
        }
        path = os.path.join(directory, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True, default=str)
        return path

    return _write
