"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure from the paper via the drivers
in :mod:`repro.bench` and prints the resulting rows/series, so running::

    pytest benchmarks/ --benchmark-only

produces both timing data (how long each experiment takes to regenerate) and
the experimental results themselves.

Scale: benchmarks default to scaled-down images so the whole suite finishes in
minutes.  Set ``IMPRESSIONS_BENCH_SCALE=1.0`` to run paper-sized experiments.
"""

from __future__ import annotations

import os

import pytest


def bench_scale(default: float) -> float:
    """Benchmark image scale, overridable via IMPRESSIONS_BENCH_SCALE."""
    value = os.environ.get("IMPRESSIONS_BENCH_SCALE")
    if value is None:
        return default
    return float(value)


@pytest.fixture(scope="session")
def print_result():
    """Print a driver's formatted table underneath the benchmark output."""

    def _print(title: str, table: str) -> None:
        print()
        print(f"=== {title} ===")
        print(table)

    return _print
