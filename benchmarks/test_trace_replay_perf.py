"""Trace replay throughput (the `repro.trace` subsystem benchmark)."""

from conftest import bench_scale

from repro.bench import trace_replay


def test_trace_replay_throughput(benchmark, print_result):
    scale = bench_scale(0.05)
    result = benchmark.pedantic(
        lambda: trace_replay.run(scale=scale, num_ops=50_000, seed=42),
        iterations=1,
        rounds=1,
    )
    print_result("Trace replay performance", trace_replay.format_table(result))

    zipf = result["results"]["zipf_cold"]
    # Acceptance bar: >= 100k ops/sec replaying the 50k-op Zipf mix.
    assert zipf["ops_per_second"] >= 100_000
    # A warm cache must make the simulated replay cheaper.
    assert result["warm_speedup_simulated"] > 1.0
