"""Trace replay throughput (the `repro.trace` subsystem benchmark)."""

from conftest import bench_scale

from repro.bench import trace_replay

#: Acceptance bar for the 50k-op Zipf mix.  Raised from 100k to 250k ops/sec
#: by the extent-based layout engine (O(1) run counts and layout scoring in
#: the replay hot path instead of per-block re-scans).
ZIPF_OPS_PER_SECOND_BAR = 250_000

#: A telemetry-enabled replay may cost at most this fraction of cold
#: throughput (the obs hot path buffers latencies in plain lists and buckets
#: them once at the end).  Single-round timing is noisy, so the ratio bar
#: carries headroom beyond the documented 3% budget.
OBS_OVERHEAD_RATIO_BAR = 1.25


def test_trace_replay_throughput(benchmark, print_result, bench_json):
    scale = bench_scale(0.05)
    result = benchmark.pedantic(
        lambda: trace_replay.run(scale=scale, num_ops=50_000, seed=42),
        iterations=1,
        rounds=1,
    )
    print_result("Trace replay performance", trace_replay.format_table(result))
    bench_json(
        "trace_replay",
        {
            "scale": result["scale"],
            "num_ops": result["num_ops"],
            "image_files": result["image_files"],
            "ops_per_second": {
                name: entry["ops_per_second"] for name, entry in result["results"].items()
            },
            "wall_seconds": {
                name: entry["wall_seconds"] for name, entry in result["results"].items()
            },
            "simulated_ms": {
                name: entry["simulated_ms"] for name, entry in result["results"].items()
            },
            "warm_speedup_simulated": result["warm_speedup_simulated"],
            "obs_overhead_ratio": result["obs_overhead_ratio"],
            "ops_per_second_bar": ZIPF_OPS_PER_SECOND_BAR,
        },
    )

    zipf = result["results"]["zipf_cold"]
    assert zipf["ops_per_second"] >= ZIPF_OPS_PER_SECOND_BAR
    # A warm cache must make the simulated replay cheaper.
    assert result["warm_speedup_simulated"] > 1.0
    # Telemetry must not knock the instrumented replay below the same bar.
    obs = result["results"]["zipf_cold_obs"]
    assert obs["ops_per_second"] >= ZIPF_OPS_PER_SECOND_BAR
    assert result["obs_overhead_ratio"] <= OBS_OVERHEAD_RATIO_BAR
