"""Figure 6 — debunking application assumptions (content missed by cutoffs)."""

from conftest import bench_scale

from repro.bench import fig6_assumptions


def test_fig6_application_assumptions(benchmark, print_result):
    scale = bench_scale(0.25)
    result = benchmark.pedantic(
        lambda: fig6_assumptions.run(scale=scale, seed=42), iterations=1, rounds=1
    )
    print_result("Figure 6: content missed by application cutoffs", fig6_assumptions.format_table(result))

    by_parameter = {entry["parameter"]: entry for entry in result["assumptions"]}

    gdl_depth = next(v for k, v in by_parameter.items() if "deep" in k)
    # Paper: ~10% of files are deeper than GDL's 10-level cutoff.
    assert 0.0 <= gdl_depth["missed_file_fraction"] < 0.35

    gdl_text = next(
        v for k, v in by_parameter.items() if v["application"] == "GDL" and "Text" in k
    )
    # Paper: 13% of text files but ~90% of text bytes exceed 200 KB.
    assert 0.03 < gdl_text["missed_file_fraction"] < 0.35
    assert gdl_text["missed_byte_fraction"] > 0.5

    beagle_text = next(
        v for k, v in by_parameter.items() if v["application"] == "Beagle" and "Text" in k
    )
    # Paper: 0.13% of files, 71% of bytes above 5 MB — files small, bytes large.
    assert beagle_text["missed_file_fraction"] < 0.05
    assert beagle_text["missed_byte_fraction"] > beagle_text["missed_file_fraction"]
