"""Table 2 — parameters and default values in Impressions."""

from repro.bench.common import format_mapping
from repro.core.config import ImpressionsConfig


def test_table2_default_parameters(benchmark, print_result):
    table = benchmark(lambda: ImpressionsConfig().parameter_table())
    print_result("Table 2: default parameters", format_mapping(table))

    assert "Lognormal" in table["File size by count"] or "lognormal" in table["File size by count"]
    assert "pareto" in table["File size by count"].lower() or "xm" in table["File size by count"]
    assert "6.49" in table["File count w/ depth"]
    assert "2.36" in table["Directory size (files)"]
    assert "Layout score (1)" in table["Degree of Fragmentation"]
