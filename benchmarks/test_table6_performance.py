"""Table 6 — performance of Impressions (time to create images)."""

from conftest import bench_scale

from repro.bench import table6_performance


def test_table6_image_creation_performance(benchmark, print_result, bench_json):
    scale = bench_scale(0.05)
    result = benchmark.pedantic(
        lambda: table6_performance.run(scale=scale, seed=42, include_content_row=True),
        iterations=1,
        rounds=1,
    )
    print_result("Table 6: generation time breakdown", table6_performance.format_table(result))
    bench_json(
        "table6",
        {
            "scale": result["scale"],
            "image1_timings_s": result["image1"]["timings_s"],
            "image2_timings_s": result["image2"]["timings_s"],
            "extra": result["extra"],
        },
    )

    timings1 = result["image1"]["timings_s"]
    timings2 = result["image2"]["timings_s"]
    # Image2 (12 GB / 52k files) costs more than Image1 (4.55 GB / 20k files).
    assert timings2["total"] > timings1["total"]
    # The optional fragmentation row achieves the requested 0.98 score.
    assert abs(result["extra"]["image1_layout_098_score"] - 0.98) < 0.02
    # The content row measured a non-trivial amount of generated text.
    assert result["extra"]["image1_content_bytes"] > 0
