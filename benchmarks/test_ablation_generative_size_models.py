"""Ablation — generative file-size models as drop-in alternatives (Section 5).

The paper's related work points at Downey's multiplicative model and
Mitzenmacher's Recursive Forest File model as generative explanations of file
size distributions and suggests incorporating them.  This bench swaps each of
them in as the ``file_size_model`` of an otherwise default image and compares
the resulting files-by-size curve against the default hybrid model's curve.
"""

import numpy as np

from repro.bench.common import format_rows
from repro.metadata.filesizes import default_file_size_by_count_model
from repro.stats.goodness_of_fit import mdcc_from_fractions
from repro.stats.histograms import PowerOfTwoHistogram
from repro.stats.size_models import DowneyMultiplicativeModel, RecursiveForestFileModel


def _run(num_files: int = 20_000, seed: int = 42) -> dict:
    reference_model = default_file_size_by_count_model()
    reference = reference_model.sample(np.random.default_rng(seed), num_files)
    reference_hist = PowerOfTwoHistogram.from_values(reference, max_value=2**42)

    candidates = {
        "downey-multiplicative": DowneyMultiplicativeModel(
            initial_size=13_000.0, log_factor_mu=0.0, log_factor_sigma=1.0
        ),
        "recursive-forest": RecursiveForestFileModel(),
    }
    results = {}
    for label, model in candidates.items():
        sample = model.sample(np.random.default_rng(seed), num_files)
        hist = PowerOfTwoHistogram.from_values(sample, max_value=2**42)
        reference_aligned, aligned = reference_hist.aligned_with(hist)
        results[label] = {
            "files_by_size_mdcc_vs_default": mdcc_from_fractions(
                reference_aligned.count_fractions(), aligned.count_fractions()
            ),
            "median_size": float(np.median(sample)),
            "mean_size": float(np.mean(sample)),
            "p99_size": float(np.percentile(sample, 99)),
        }
    results["default-hybrid"] = {
        "files_by_size_mdcc_vs_default": 0.0,
        "median_size": float(np.median(reference)),
        "mean_size": float(np.mean(reference)),
        "p99_size": float(np.percentile(reference, 99)),
    }
    return results


def test_ablation_generative_size_models(benchmark, print_result):
    results = benchmark.pedantic(_run, iterations=1, rounds=1)
    rows = [
        [
            label,
            data["files_by_size_mdcc_vs_default"],
            data["median_size"],
            data["mean_size"],
            data["p99_size"],
        ]
        for label, data in results.items()
    ]
    print_result(
        "Ablation: generative size models vs the default hybrid",
        format_rows(
            ["size model", "MDCC vs default", "median", "mean", "p99"], rows
        ),
    )

    # Both generative models produce skewed, heavy-tailed sizes in the same
    # ballpark as the default (medians within one order of magnitude), without
    # being identical to it.
    default_median = results["default-hybrid"]["median_size"]
    for label in ("downey-multiplicative", "recursive-forest"):
        assert results[label]["mean_size"] > results[label]["median_size"]
        assert default_median / 20 < results[label]["median_size"] < default_median * 20
        assert results[label]["files_by_size_mdcc_vs_default"] < 0.6
