"""Figure 1 — impact of directory tree structure on ``find``."""

from repro.bench import fig1_find


def test_fig1_find_tree_structure(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig1_find.run(num_files=1_500, seed=42), iterations=1, rounds=1
    )
    print_result("Figure 1: relative find time", fig1_find.format_table(result))

    relative = result["relative_overhead"]
    assert relative["Cached"] < 0.1
    assert relative["Flat Tree"] < 1.0 < relative["Deep Tree"]
    assert relative["Fragmented"] > 1.05
    assert relative["Deep Tree"] / relative["Flat Tree"] > 2.0
