"""Parallel materialization speedup (the repro.materialize acceptance bar).

``DirectorySink(jobs=4)`` must materialize a content-bearing Image2
(scale 0.25 by default — ~13 000 files) at least 2× faster than the serial
writer.  Parallel writes are embarrassingly parallel by construction: every
file's bytes are a pure function of (content seed, file id), so worker
processes generate and write independent batches, and the combined content
digest is order-independent — asserted here against the serial run.

Requires ≥4 CPUs to be meaningful; the test skips itself elsewhere.
"""

from __future__ import annotations

import os
import shutil
import time

import pytest

from conftest import bench_scale

from repro.content.generators import ContentPolicy
from repro.core.config import GIB, ImpressionsConfig
from repro.core.impressions import Impressions
from repro.materialize import DirectorySink, materialize_image

#: Acceptance bar: 4 writer processes must at least halve the wall-clock.
PARALLEL_SPEEDUP_BAR = 2.0
JOBS = 4

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < JOBS,
    reason=f"parallel materialization bar needs >= {JOBS} CPUs",
)


def _image2_content_config(scale: float, seed: int = 42) -> ImpressionsConfig:
    return ImpressionsConfig(
        fs_size_bytes=max(int(12.0 * GIB * scale), 8 * 1024 * 1024),
        num_files=max(int(52_000 * scale), 100),
        num_directories=max(int(4_000 * scale), 20),
        seed=seed,
        generate_content=True,
        content=ContentPolicy(text_model="hybrid"),
    )


def test_directory_sink_parallel_speedup(tmp_path, print_result, bench_json):
    scale = bench_scale(0.25)
    image = Impressions(_image2_content_config(scale)).generate()

    serial_root = str(tmp_path / "serial")
    start = time.perf_counter()
    serial = materialize_image(image, DirectorySink(serial_root))
    serial_seconds = time.perf_counter() - start

    parallel_root = str(tmp_path / "parallel")
    start = time.perf_counter()
    parallel = materialize_image(image, DirectorySink(parallel_root, jobs=JOBS))
    parallel_seconds = time.perf_counter() - start
    shutil.rmtree(parallel_root, ignore_errors=True)
    shutil.rmtree(serial_root, ignore_errors=True)

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print_result(
        "Parallel materialization",
        "\n".join(
            [
                f"image: {image.file_count} files, {image.total_bytes / 1e6:.0f} MB "
                f"(Image2 scale {scale:g}, hybrid content)",
                f"serial:      {serial_seconds:8.2f} s",
                f"jobs={JOBS}:    {parallel_seconds:8.2f} s",
                f"speedup:     {speedup:8.2f}x (bar: {PARALLEL_SPEEDUP_BAR:.1f}x)",
            ]
        ),
    )
    bench_json(
        "materialize_parallel",
        {
            "scale": scale,
            "files": image.file_count,
            "total_bytes": image.total_bytes,
            "jobs": JOBS,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "speedup_bar": PARALLEL_SPEEDUP_BAR,
        },
    )

    # Parallelism must not change what lands on disk.
    assert parallel.content_digest == serial.content_digest
    assert parallel.files == serial.files == image.file_count
    assert speedup >= PARALLEL_SPEEDUP_BAR, (
        f"DirectorySink(jobs={JOBS}) only {speedup:.2f}x faster than serial "
        f"({serial_seconds:.2f}s -> {parallel_seconds:.2f}s)"
    )
