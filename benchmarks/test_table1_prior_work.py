"""Table 1 — choice of file-system parameters in prior research (motivation)."""

from repro.bench import table1_prior_work


def test_table1_prior_work(benchmark, print_result):
    result = benchmark(table1_prior_work.run)
    print_result("Table 1: prior-work file-system images", table1_prior_work.format_table(result))

    assert result["num_entries"] == 13
    papers = {entry["paper"] for entry in result["entries"]}
    assert {"HAC", "IRON", "LBFS", "PAST", "Pastiche", "WAFL backup", "yFS"}.issubset(papers)
    # Exactly one of the thirteen papers provided no description at all.
    assert result["num_entries"] - result["with_description"] == 1
