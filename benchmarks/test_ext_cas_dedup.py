"""Extension bench — content models and CAS deduplication (Section 3.6).

Not a numbered figure in the paper, but the quantitative version of its CAS
motivation: the same metadata with different content policies produces wildly
different deduplication, which is exactly why content realism matters.
"""

from repro.bench.common import format_rows
from repro.content.generators import ContentPolicy
from repro.content.similarity import SimilarityProfile
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.workloads.cas import CasSimulator


def _image(policy: ContentPolicy, seed: int = 42):
    config = ImpressionsConfig(
        fs_size_bytes=None,
        num_files=200,
        num_directories=40,
        seed=seed,
        generate_content=True,
        content=policy,
    )
    return Impressions(config).generate()


def _run() -> dict:
    policies = {
        "single-word": ContentPolicy(text_model="single-word", force_kind="text"),
        "word-model": ContentPolicy(text_model="hybrid", force_kind="text"),
        "random-binary": ContentPolicy(force_kind="binary", typed_headers=False),
        "similarity-0.4": ContentPolicy(
            force_kind="binary",
            typed_headers=False,
            similarity=SimilarityProfile(duplicate_fraction=0.4),
        ),
    }
    simulator = CasSimulator()
    results = {}
    for label, policy in policies.items():
        outcome = simulator.ingest(_image(policy))
        results[label] = {
            "dedup_ratio": outcome.dedup_ratio,
            "duplicate_byte_fraction": outcome.duplicate_byte_fraction,
            "unique_bytes": outcome.unique_bytes,
            "total_bytes": outcome.total_bytes,
        }
    return results


def test_ext_cas_dedup_by_content_model(benchmark, print_result):
    results = benchmark.pedantic(_run, iterations=1, rounds=1)
    rows = [
        [label, f"{data['dedup_ratio']:.2f}x", f"{data['duplicate_byte_fraction']:.1%}"]
        for label, data in results.items()
    ]
    print_result(
        "Extension: CAS deduplication by content model",
        format_rows(["content model", "dedup ratio", "duplicate bytes"], rows),
    )

    # Postmark-style identical content collapses almost entirely; realistic
    # word-model text and unique binary content barely deduplicate; the
    # similarity-controlled corpus lands near its configured 40%.
    assert results["single-word"]["duplicate_byte_fraction"] > 0.9
    assert results["random-binary"]["duplicate_byte_fraction"] < 0.05
    assert results["word-model"]["duplicate_byte_fraction"] < results["single-word"][
        "duplicate_byte_fraction"
    ]
    assert 0.2 < results["similarity-0.4"]["duplicate_byte_fraction"] < 0.6
