"""Static-analysis walkthrough: running detlint as a library.

Run with::

    PYTHONPATH=src python examples/analyze_repo.py

Demonstrates ``repro.analysis``: analyzing a deliberately buggy snippet,
reading the findings and their fix hints, silencing one with a pragma,
grandfathering the rest in a baseline, and running the self-hosted check the
CI gate uses — the repo's own ``src/repro`` tree against the committed
``analysis-baseline.json``.
"""

from __future__ import annotations

import os
import tempfile
import textwrap

from repro.analysis import Baseline, analyze, rule_descriptions, split_findings

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def banner(title: str) -> None:
    print(f"\n=== {title} ===")


BUGGY = """
    import os
    from repro.pipeline.stage import Stage

    class LeakyStage(Stage):
        name = "leaky"
        provides = ("tree",)
        config_knobs = ("num_directories",)

        def run(self, context):
            config = context.config
            # reads a knob its fingerprint ignores -> cache poisoning
            return config.num_directories * config.attachment_offset

    def crawl(root):
        names = []
        for current, dirs, files in os.walk(root):  # enumeration order leak
            names.extend(files)
        return names

    def cache_key(value):
        return hash(value)  # salted per process
"""


def demo_findings(workspace: str) -> list:
    banner("Findings carry precise spans and fix hints")
    path = os.path.join(workspace, "buggy.py")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(textwrap.dedent(BUGGY))
    result = analyze([path], root=workspace)
    for finding in result.findings:
        print(finding.render())
    return result.findings


def demo_pragma(workspace: str) -> None:
    banner("A pragma silences one finding, with the why on record")
    path = os.path.join(workspace, "buggy.py")
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    source = source.replace(
        "return hash(value)",
        "return hash(value)  # detlint: ignore[nondet-hash] demo only",
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(source)
    result = analyze([path], root=workspace)
    print(f"{len(result.findings)} findings, {len(result.suppressed)} suppressed")


def demo_baseline(workspace: str) -> None:
    banner("A baseline grandfathers existing debt; new findings still fail")
    path = os.path.join(workspace, "buggy.py")
    result = analyze([path], root=workspace)
    baseline = Baseline.from_findings(result.findings)
    baseline_path = os.path.join(workspace, "baseline.json")
    baseline.save(baseline_path)

    split = split_findings(result.findings, Baseline.load(baseline_path))
    print(f"against the fresh baseline: {len(split.new)} new, "
          f"{len(split.baselined)} baselined")

    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n\ndef fresh_bug(v):\n    return hash(v)\n")
    result = analyze([path], root=workspace)
    split = split_findings(result.findings, Baseline.load(baseline_path))
    print(f"after planting a new bug:  {len(split.new)} new, "
          f"{len(split.baselined)} baselined  -> the gate fails")


def demo_self_check() -> None:
    banner("Self-hosting: the repo's own tree, modulo the committed baseline")
    result = analyze(
        [os.path.join(REPO_ROOT, "src", "repro")],
        root=REPO_ROOT,
    )
    baseline = Baseline.load(os.path.join(REPO_ROOT, "analysis-baseline.json"))
    split = split_findings(result.findings, baseline)
    print(f"{result.files} files, {len(result.rules)} rules: "
          f"{len(split.new)} new, {len(split.baselined)} baselined, "
          f"{len(result.suppressed)} suppressed by pragma")
    assert not split.new, "the shipped tree must be clean modulo the baseline"


def main() -> None:
    print("rule families:",
          ", ".join(sorted({name.split("-")[0] for name in rule_descriptions()})))
    with tempfile.TemporaryDirectory(prefix="detlint-demo-") as workspace:
        demo_findings(workspace)
        demo_pragma(workspace)
        demo_baseline(workspace)
    demo_self_check()


if __name__ == "__main__":
    main()
