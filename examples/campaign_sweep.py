"""A campaign sweep end to end: declare, run, report, compare.

Declares a 12-scenario campaign (3 file counts x 2 layout scores x 2 seeds),
runs it on a process pool, shows that re-running skips every completed
scenario via fingerprints, renders the per-metric report across the sweep
axes, and demonstrates regression tracking by comparing the store against a
copy with one metric artificially inflated.

Run with::

    PYTHONPATH=src python examples/campaign_sweep.py
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.campaign import CampaignSpec, ResultStore, compare, render_report, run_campaign

SPEC = {
    "name": "layout-sweep",
    "description": "how fragmentation and scale shape find + replay cost",
    "base": {"num_directories": 24, "fs_size_bytes": 32 * 1024 * 1024},
    "sweep": {
        "num_files": [100, 200, 400],
        "layout_score": [1.0, 0.7],
        "seed": [1, 2],
    },
    "steps": [
        {"step": "summary"},
        {"step": "find"},
        {"step": "trace_replay", "kind": "zipf", "ops": 2_000},
    ],
}


def main() -> None:
    spec = CampaignSpec.from_dict(SPEC)
    print(f"campaign {spec.name}: {spec.num_scenarios} scenarios")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "results.jsonl")

        # 1. Run the whole grid on 4 workers.
        result = run_campaign(spec, store_path, workers=4)
        print(
            f"executed {len(result.executed)} scenario(s) "
            f"in {result.wall_seconds:.2f} s on 4 workers"
        )

        # 2. Re-running is free: every fingerprint is already in the store.
        rerun = run_campaign(spec, store_path, workers=4)
        print(
            f"re-run: {len(rerun.executed)} executed, "
            f"{len(rerun.skipped)} skipped via fingerprints"
        )

        # 3. Per-metric view across the sweep axes.
        store = ResultStore(store_path)
        rows = list(store.latest_rows().values())
        print()
        print(
            render_report(
                rows,
                metrics=["find.elapsed_ms", "trace_replay.simulated_ms"],
                title="find + replay cost across the sweep",
            )
        )

        # 4. Regression tracking: inflate one scenario's replay cost by 40%
        # and diff the stores the way CI would diff two revisions.
        regressed_path = os.path.join(tmp, "regressed.jsonl")
        regressed = ResultStore(regressed_path)
        for index, row in enumerate(store):
            if index == 0:
                row = json.loads(json.dumps(row))
                row["metrics"]["trace_replay.simulated_ms"] *= 1.4
            regressed.append(row)
        diff = compare(store.latest_rows(), regressed.latest_rows(), tolerance=0.1)
        print()
        print(diff.render_text())
        assert diff.has_regressions


if __name__ == "__main__":
    main()
