#!/usr/bin/env python3
"""What-if analysis with interpolation and extrapolation (Section 3.5).

The dataset only contains curves for certain file-system sizes; a user doing
"what if my users' disks were 75 GB / 125 GB?" analysis needs curves for sizes
that were never measured.  This example builds the 10/50/100 GB file-size
curves from the synthetic corpus, interpolates the 75 GB curve, extrapolates
the 125 GB curve, and checks both against held-out snapshots with a K-S test —
the paper's Figure 5 / Table 5 workflow.

Run with::

    python examples/interpolation_whatif.py
"""

from __future__ import annotations

from repro.bench import fig4_interpolation, fig5_interpolation


def main() -> None:
    print("Piecewise interpolation mechanism (Figure 4)")
    print("=" * 72)
    mechanism = fig4_interpolation.run(target_size_gib=75.0, max_files_per_snapshot=2_000)
    print(fig4_interpolation.format_table(mechanism))
    print()

    print("Accuracy of interpolation (75 GB) and extrapolation (125 GB)")
    print("=" * 72)
    accuracy = fig5_interpolation.run(max_files_per_snapshot=2_000)
    print(fig5_interpolation.format_table(accuracy))
    print()
    for view, targets in accuracy["results"].items():
        for target, stats in targets.items():
            verdict = "passed" if stats["ks_passed"] else "FAILED"
            print(
                f"  {view} at {target:g} GB ({stats['region']}): "
                f"K-S D = {stats['ks_statistic']:.3f} -> {verdict} at 0.05"
            )


if __name__ == "__main__":
    main()
