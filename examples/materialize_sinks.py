"""Materialization sinks walkthrough: directory, tar, manifest, null.

Run with::

    PYTHONPATH=src python examples/materialize_sinks.py

Generates one small content-bearing image and exports it through every
built-in sink, showing the order-independent content digest, disk-extent
write ordering, parallel directory writes, and round-trip verification
(materialize → re-import → KS / chi-square / MDCC distribution checks).
"""

from __future__ import annotations

import json
import os
import tarfile
import tempfile

from repro.content.generators import ContentPolicy
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.materialize import (
    DirectorySink,
    ManifestSink,
    NullSink,
    TarSink,
    materialize_image,
    ordered_files,
)

config = ImpressionsConfig(
    fs_size_bytes=16 * 1024 * 1024,
    num_files=400,
    num_directories=80,
    seed=7,
    layout_score=0.8,               # a fragmented layout, for extent ordering
    generate_content=True,
    content=ContentPolicy(text_model="hybrid"),
)
image = Impressions(config).generate()
print(f"image: {image.file_count} files, {image.directory_count} directories, "
      f"{image.total_bytes / 1e6:.1f} MB, layout score {image.achieved_layout_score():.3f}")

with tempfile.TemporaryDirectory() as workdir:
    # 1. Digest only — the cheapest determinism gate (CI runs exactly this).
    null_result = materialize_image(image, NullSink())
    print(f"\nnull sink:      digest {null_result.content_digest[:16]}… "
          f"in {null_result.seconds:.2f}s")

    # 2. Real directory tree with parallel writes; the digest must match the
    #    null sink's because it is combined in file_id order, not write order.
    tree_root = os.path.join(workdir, "image")
    dir_result = materialize_image(image, DirectorySink(tree_root, jobs=2))
    assert dir_result.content_digest == null_result.content_digest
    print(f"directory sink: {dir_result.files} files via {dir_result.extras['jobs']} jobs "
          f"-> {tree_root} (digest matches null sink)")

    # 3. Round-trip verification: re-import the tree, compare distributions.
    verification = dir_result.verify(config)
    print(verification.render_text())

    # 4. Deterministic tar archive, streamed in disk-extent order.
    archive = os.path.join(workdir, "image.tar.gz")
    tar_result = materialize_image(image, TarSink(archive), order="extent")
    with tarfile.open(archive) as tar:
        members = len(tar.getmembers())
    print(f"\ntar sink:       {members} entries, {tar_result.extras['archive_bytes']} bytes, "
          f"archive sha256 {tar_result.extras['archive_sha256'][:16]}…")
    first_files = [node.path() for node in ordered_files(image, "extent")[:3]]
    print(f"extent order starts with: {first_files}")

    # 5. JSONL manifest — never generates content, scales to huge images.
    manifest = os.path.join(workdir, "image.jsonl")
    manifest_result = materialize_image(image, ManifestSink(manifest))
    with open(manifest, "r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
    print(f"manifest sink:  {manifest_result.extras['lines']} lines "
          f"({manifest_result.extras['manifest_bytes']} bytes), "
          f"header layout score {header['layout_score']:.3f}")

    # 6. The facade is unchanged: image.materialize() == serial DirectorySink.
    facade_root = os.path.join(workdir, "facade")
    written = image.materialize(facade_root)
    print(f"facade:         image.materialize() wrote {written} files")
