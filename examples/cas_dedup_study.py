#!/usr/bin/env python3
"""Why file content matters: content-addressable storage (Section 3.6).

The paper's motivating example: Postmark fills every file with the same bytes,
so a CAS/deduplicating store collapses the whole benchmark to a single file's
worth of unique data and the measured "performance" is meaningless.  This
example ingests the same file-system image into a simulated CAS under four
content policies and compares the deduplication each one produces:

* single-word text (the Postmark anti-pattern),
* word-model text (the Impressions default),
* unique random binary, and
* similarity-controlled binary (the paper's suggested extension, with the
  duplicate fraction dialled explicitly).

Run with::

    python examples/cas_dedup_study.py
"""

from __future__ import annotations

from repro.content.generators import ContentPolicy
from repro.content.similarity import SimilarityProfile
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.workloads.cas import CasSimulator


def build_image(policy: ContentPolicy):
    config = ImpressionsConfig(
        fs_size_bytes=None,
        num_files=150,
        num_directories=30,
        seed=77,
        generate_content=True,
        content=policy,
    )
    return Impressions(config).generate()


def main() -> None:
    policies = {
        "single-word text (Postmark-style)": ContentPolicy(
            text_model="single-word", force_kind="text"
        ),
        "word-model text (Impressions default)": ContentPolicy(
            text_model="hybrid", force_kind="text"
        ),
        "unique random binary": ContentPolicy(force_kind="binary", typed_headers=False),
        "similarity-controlled binary (40% duplicate chunks)": ContentPolicy(
            force_kind="binary",
            typed_headers=False,
            similarity=SimilarityProfile(duplicate_fraction=0.4),
        ),
    }

    simulator = CasSimulator(chunk_size=4096)
    print(f"{'content policy':<52s} {'dedup ratio':>12s} {'duplicate bytes':>16s}")
    print("-" * 84)
    for label, policy in policies.items():
        image = build_image(policy)
        result = simulator.ingest(image)
        print(
            f"{label:<52s} {result.dedup_ratio:>11.2f}x "
            f"{result.duplicate_byte_fraction:>15.1%}"
        )
    print()
    print(
        "A CAS evaluation run against the single-word image would conclude the\n"
        "system is dramatically faster than it really is; the word-model and\n"
        "similarity-controlled images give it a realistic amount of unique data."
    )


if __name__ == "__main__":
    main()
