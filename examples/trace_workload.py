"""Trace workflows end to end: synthesize, replay, age.

Generates a small image, runs a Zipf read/write/stat mix against it cold and
warm, ages a second copy of the image to a lower layout score by replaying
churn, and shows that the aging trace is replayable on a fresh image.

Run with::

    PYTHONPATH=src python examples/trace_workload.py
"""

from __future__ import annotations

from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.trace import (
    OperationTrace,
    TraceReplayer,
    ZipfMixSpec,
    age_image_to_score,
    synthesize_zipf_mix,
)


def fresh_image() -> "Impressions":
    config = ImpressionsConfig(
        fs_size_bytes=48 * 1024 * 1024,
        num_files=500,
        num_directories=100,
        seed=7,
    )
    return Impressions(config).generate()


def main() -> None:
    image = fresh_image()
    print(f"image: {image.file_count} files, {image.total_bytes} bytes")

    # 1. A Zipf-popularity mix, replayed cold and warm.  Replay mutates the
    # image's disk, so the warm leg gets a regenerated identical image.
    trace = synthesize_zipf_mix(image, ZipfMixSpec(num_ops=20_000), seed=1)
    cold = TraceReplayer(image).replay(trace)
    warm_replayer = TraceReplayer(fresh_image())
    warm_replayer.warm_cache()
    warm = warm_replayer.replay(trace)
    print(
        f"zipf mix: cold {cold.simulated_ms:,.0f} simulated ms "
        f"(hit ratio {cold.cache_hit_ratio:.2f}), warm {warm.simulated_ms:,.0f} ms "
        f"(hit ratio {warm.cache_hit_ratio:.2f}); "
        f"engine ran at {cold.ops_per_second:,.0f} ops/sec"
    )

    # 2. Trace-driven aging toward a fragmented layout.
    aged = fresh_image()
    result = age_image_to_score(aged, target_score=0.7, seed=5)
    print(
        f"aging: layout score {result.initial_score:.3f} -> {result.achieved_score:.3f} "
        f"(target {result.target_score}) via {len(result.trace)} churn operations"
    )

    # 3. The aging trace is an artifact: replay it on a fresh identical image.
    replica = fresh_image()
    restored = OperationTrace.from_jsonl(result.trace.to_jsonl())
    TraceReplayer(replica).replay(restored)
    print(
        "replayed aging trace on a fresh image -> layout score "
        f"{replica.achieved_layout_score():.3f}"
    )


if __name__ == "__main__":
    main()
