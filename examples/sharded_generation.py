"""Sharded generation walkthrough: plan, fan out, merge, verify.

Run with::

    PYTHONPATH=src python examples/sharded_generation.py

Demonstrates ``repro.shard``: building a deterministic ``ShardPlan`` that
partitions the namespace at the top-level directory split, generating the
shards on a process pool, merging the per-shard trees and disk extents into
one ``FileSystemImage``, and proving the split changed nothing — the merged
``image_fingerprint`` and materialize content digest are bit-identical
across worker counts.  Finishes with the plan-as-artifact round trip and
the per-shard stage-cache slices.
"""

from __future__ import annotations

import json
import tempfile
import time

from repro import ImpressionsConfig
from repro.shard import ShardPlan, build_plan, generate_sharded

config = ImpressionsConfig(
    num_files=4_000, num_directories=800, seed=42, fs_size_bytes=256 * 1024 * 1024
)

# --- The plan: an exact, auditable partition ---------------------------------

plan = build_plan(config, num_shards=4)
print(f"plan {plan.fingerprint()[:12]} — {plan.num_shards} shards:")
for spec in plan.shards:
    print(
        f"  shard {spec.index}: seed={spec.seed:<11d} files={spec.num_files:<5d} "
        f"dirs={spec.num_directories:<4d} bytes={spec.fs_size_bytes}"
    )
assert sum(spec.num_files for spec in plan.shards) == config.num_files
assert sum(spec.fs_size_bytes for spec in plan.shards) == config.fs_size_bytes

# --- Serial vs parallel: same bits -------------------------------------------

start = time.perf_counter()
serial = generate_sharded(plan=plan, jobs=1)
serial_wall = time.perf_counter() - start

start = time.perf_counter()
parallel = generate_sharded(plan=plan, jobs=4)
parallel_wall = time.perf_counter() - start

print(f"\njobs=1: {serial_wall:.3f}s   jobs=4: {parallel_wall:.3f}s")
print(f"fingerprint    {serial.fingerprint[:16]}  == jobs=4: "
      f"{serial.fingerprint == parallel.fingerprint}")
print(f"content digest {serial.content_digest[:16]}  == jobs=4: "
      f"{serial.content_digest == parallel.content_digest}")
assert serial.fingerprint == parallel.fingerprint
assert serial.content_digest == parallel.content_digest

image = parallel.image
print(f"merged image: {image.file_count} files, {image.directory_count} dirs, "
      f"{image.total_bytes / (1 << 20):.1f} MiB")
for shard in parallel.shards:
    print(f"  shard {shard.index}: {shard.files} files in {shard.wall_seconds:.3f}s "
        f"({shard.fingerprint[:12]})")

# --- The plan is an artifact: save it, ship it, regenerate from it -----------

payload = plan.to_json()
restored = ShardPlan.from_json(payload)   # fingerprint-checked on load
again = generate_sharded(plan=restored, jobs=2)
assert again.fingerprint == serial.fingerprint
print(f"\nplan round-tripped through JSON ({len(payload)} bytes), "
      f"jobs=2 regeneration identical: OK")

# --- Per-shard stage-cache slices: reruns restore instead of regenerate ------

with tempfile.TemporaryDirectory() as cache_dir:
    generate_sharded(plan=plan, jobs=1, cache_dir=cache_dir)
    warm = generate_sharded(plan=plan, jobs=1, cache_dir=cache_dir)
    assert warm.fingerprint == serial.fingerprint
    print("warm rerun cache:",
          json.dumps({s.index: s.cache["hits"] for s in warm.shards}),
          "stage hits per shard")
