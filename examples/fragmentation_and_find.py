#!/usr/bin/env python3
"""Does file-system structure matter?  (Section 2.1, Figure 1.)

Generates one default image and then varies a single aspect of file-system
state at a time — cache contents, on-disk fragmentation, and the shape of the
directory tree — measuring a simulated ``find /`` run on each.  The same image
is also aged with a create/delete workload to show the alternate
workload-driven fragmentation mode of Section 3.7.

Run with::

    python examples/fragmentation_and_find.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import fig1_find
from repro.layout import AgingWorkload, SimulatedDisk, layout_score


def show_figure1() -> None:
    result = fig1_find.run(num_files=1_500, seed=9)
    print(fig1_find.format_table(result))
    print()
    relative = result["relative_overhead"]
    spread = relative["Deep Tree"] / relative["Flat Tree"]
    print(f"Flat-to-deep spread: {spread:.1f}x "
          "(the paper reports roughly a 3x gap between the flat and deep trees)")


def show_workload_driven_fragmentation() -> None:
    print()
    print("Workload-driven fragmentation (alternate mode of Section 3.7):")
    rng = np.random.default_rng(4)
    disk = SimulatedDisk(num_blocks=200_000)
    workload = AgingWorkload.random(num_operations=3_000, rng=rng, delete_fraction=0.45)
    score = workload.replay(disk)
    print(f"  operations replayed : {len(workload)}")
    print(f"  resulting layout score: {score:.3f}")
    print(f"  disk state          : {disk.summary()}")
    # A second, gentler workload on a fresh disk fragments less.
    fresh = SimulatedDisk(num_blocks=200_000)
    gentle = AgingWorkload.random(num_operations=3_000, rng=np.random.default_rng(4), delete_fraction=0.1)
    gentle_score = gentle.replay(fresh)
    print(f"  gentler workload (10% deletes) layout score: {gentle_score:.3f}")
    print(f"  verification: recomputed score matches -> {abs(layout_score(fresh) - gentle_score) < 1e-9}")


def main() -> None:
    show_figure1()
    show_workload_driven_fragmentation()


if __name__ == "__main__":
    main()
