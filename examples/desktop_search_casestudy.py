#!/usr/bin/env python3
"""Case study: evaluating desktop search with Impressions (Section 4).

Reproduces the three parts of the paper's case study on small images:

1. **Debunking application assumptions** (Figure 6) — how much of a
   representative file system the documented Beagle/GDL cutoffs fail to index.
2. **Impact of file content on index size** (Figure 7) — the same metadata
   with single-word text, word-model text, or binary content flips which
   engine has the larger index.
3. **Reproducible comparison of Beagle's indexing options** (Figure 8) —
   Original vs TextCache vs DisDir vs DisFilter across content types.

Run with::

    python examples/desktop_search_casestudy.py
"""

from __future__ import annotations

from repro.bench import fig6_assumptions, fig7_index_size, fig8_beagle_options


def main() -> None:
    print("Part 1 — application assumptions measured on a representative image")
    print("=" * 72)
    assumptions = fig6_assumptions.run(scale=0.08, seed=11)
    print(fig6_assumptions.format_table(assumptions))
    print()

    print("Part 2 — impact of file content on index size (Beagle vs GDL)")
    print("=" * 72)
    content = fig7_index_size.run(scale=0.05, seed=11)
    print(fig7_index_size.format_table(content))
    print()

    print("Part 3 — Beagle indexing options across content types")
    print("=" * 72)
    options = fig8_beagle_options.run(scale=0.05, seed=11)
    print(fig8_beagle_options.format_table(options))
    print()
    print(
        "Because every image above is fully described by its Impressions\n"
        "parameters and seed, any other developer can regenerate the exact\n"
        "same images and compare their numbers directly with these."
    )


if __name__ == "__main__":
    main()
