"""Staged pipeline walkthrough: stage graph, caching, and partial reuse.

Run with::

    PYTHONPATH=src python examples/pipeline_caching.py

Demonstrates the pipeline API behind ``Impressions``: inspecting the stage
graph with per-stage fingerprints, populating the content-addressed stage
cache, restoring an identical image from it, and sweeping ``layout_score``
so every pre-layout stage is reused instead of regenerated.
"""

from __future__ import annotations

import tempfile
import time

from repro import Impressions, ImpressionsConfig, StageCache, default_pipeline
from repro.pipeline import image_fingerprint

config = ImpressionsConfig(fs_size_bytes=None, num_files=2_000, num_directories=400, seed=7)
pipeline = default_pipeline()

print("stage graph:")
for row in pipeline.describe(config):
    print(f"  {row['name']:22s} {row['fingerprint'][:12]}  "
          f"{', '.join(row['requires']) or '-'} -> {', '.join(row['provides'])}")

with tempfile.TemporaryDirectory() as cache_dir:
    cache = StageCache(cache_dir)

    start = time.perf_counter()
    cold = pipeline.run(config, cache=cache)
    print(f"\ncold run:  {time.perf_counter() - start:.3f}s  {cold.cache_summary()}")

    start = time.perf_counter()
    warm = pipeline.run(config, cache=cache)
    print(f"warm run:  {time.perf_counter() - start:.3f}s  {warm.cache_summary()}")
    assert image_fingerprint(cold.image) == image_fingerprint(warm.image)

    # Sweeping a late knob reuses every stage before on_disk_creation.
    start = time.perf_counter()
    swept = pipeline.run(config.with_overrides(layout_score=0.7), cache=cache)
    print(f"layout .7: {time.perf_counter() - start:.3f}s  {swept.cache_summary()}")
    print("  cached stages:",
          [e.name for e in swept.generation_executions if e.cached])

    # The facade is the same engine: identical image, no pipeline knowledge.
    facade = Impressions(config).generate()
    assert image_fingerprint(facade) == image_fingerprint(cold.image)
    print("\nfacade image identical to pipeline image: OK")
