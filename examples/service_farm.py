"""Benchmark-farm walkthrough: queue, workers, HTTP clients, metrics.

Run with::

    PYTHONPATH=src python examples/service_farm.py

Demonstrates ``repro.service``: an in-process farm (sqlite job queue + HTTP
control plane), two concurrent clients submitting the *same* sweep — every
scenario executes exactly once and both campaigns complete from the shared
executions — a worker draining the queue while a client watches progress,
and the Prometheus ``/metrics`` endpoint.  Everything here also works across
processes and hosts sharing a filesystem: ``impressions service start`` runs
the same server, ``impressions service worker`` the same loop.
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request

from repro.service.api import FarmService, serve_forever
from repro.service.queue import JobQueue
from repro.service.worker import WorkerOptions, run_worker

SWEEP = {
    "name": "farm-demo",
    "base": {"num_directories": 20, "fs_size_bytes": 32 * 1024 * 1024},
    "sweep": {"num_files": [100, 200], "seed": [1]},
    "steps": [{"step": "summary"}, {"step": "find"}],
}


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


def get_text(base: str, path: str) -> str:
    with urllib.request.urlopen(f"{base}{path}", timeout=10.0) as response:
        return response.read().decode("utf-8")


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


with tempfile.TemporaryDirectory() as tmp:
    queue = JobQueue(f"{tmp}/farm.sqlite")
    service = FarmService(queue, f"{tmp}/results.jsonl")

    with serve_forever(service) as (host, port):
        base = f"http://{host}:{port}"
        print(f"farm listening on {base}")

        # --- Two clients race to submit the same sweep -----------------------
        # The queue's fingerprint-keyed dedupe makes the race safe: the two
        # scenarios are enqueued exactly once no matter who wins.

        barrier = threading.Barrier(2)
        submissions: list[dict] = []

        def client() -> None:
            barrier.wait()
            submissions.append(post(base, "/campaigns", SWEEP))

        threads = [threading.Thread(target=client) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for submitted in submissions:
            print(
                f"campaign {submitted['campaign']}: {submitted['enqueued']} enqueued, "
                f"{submitted['deduped']} deduped of {submitted['total']}"
            )
        assert sum(s["enqueued"] for s in submissions) == 2  # not 4
        assert sum(s["deduped"] for s in submissions) == 2

        # --- A worker drains the queue; a client watches progress ------------

        def drain() -> None:
            run_worker(
                WorkerOptions(
                    queue_path=f"{tmp}/farm.sqlite",
                    store_path=f"{tmp}/results.jsonl",
                    worker_id="demo-worker",
                    drain=True,
                    poll_interval=0.05,
                )
            )

        worker = threading.Thread(target=drain)
        worker.start()
        seen = -1
        while True:
            info = get(base, f"/campaigns/{submissions[0]['campaign']}")
            if info["done"] != seen:
                seen = info["done"]
                eta = info.get("eta_seconds")
                print(
                    f"  {info['campaign']}: {info['done']}/{info['total']} done"
                    + (f", eta {eta:.1f}s" if eta else "")
                )
            if info["state"] != "running":
                break
        worker.join()

        # Both campaigns completed from the same two executions.
        for submitted in submissions:
            info = get(base, f"/campaigns/{submitted['campaign']}")
            assert info["state"] == "complete", info
        with open(f"{tmp}/results.jsonl", encoding="utf-8") as handle:
            rows = [json.loads(line) for line in handle]
        print(f"store has {len(rows)} rows for {len(submissions)} campaigns")
        assert len(rows) == 2

        # --- Farm health: queue stats and Prometheus metrics -----------------

        stats = get(base, "/queue/stats")
        print(
            f"queue depth {stats['depth']}, done {stats['jobs']['done']}, "
            f"reclaims {stats['counters']['lease_reclaims']:.0f}"
        )
        metrics = get_text(base, "/metrics")
        wanted = ("service_queue_depth", "service_jobs_done_total",
                  "service_job_duration_seconds_count")
        for line in metrics.splitlines():
            if line.startswith(wanted):
                print(f"  {line}")

    queue.close()
    print("server stopped; the sqlite queue and JSONL store survive restarts")
