#!/usr/bin/env python3
"""User-specified mode: pinning several parameters at once (Section 3.4).

A user wants exactly 1 000 files drawn from a lognormal size distribution
*and* a total used space of 90 000 bytes — an over-constrained request, since
a random sample of 1 000 sizes will not hit the target sum.  Impressions
resolves the conflict by oversampling and solving a fixed-cardinality subset
sum problem, then verifies with a K-S test that the constrained sample still
follows the requested distribution.

The script shows the resolution machinery directly, then uses it end-to-end
through :class:`ImpressionsConfig(enforce_fs_size=True)`.

Run with::

    python examples/constrained_image.py
"""

from __future__ import annotations

import numpy as np

from repro import Impressions, ImpressionsConfig
from repro.constraints import ConstraintResolver, ConstraintSpec
from repro.stats.distributions import LognormalDistribution


def demonstrate_resolver() -> None:
    # The paper's Figure 3 example: 1000 files, heavy-tailed lognormal sizes,
    # a target sum 1.5x above the expected sum (µ rescaled so the expected sum
    # of 1000 samples is ~60000 in the units of the target; see
    # repro.bench.fig3_constraints for the unit reconciliation).
    distribution = LognormalDistribution(mu=1.07, sigma=2.46)
    spec = ConstraintSpec(
        num_values=1_000,
        target_sum=90_000.0,
        distribution=distribution,
        beta=0.05,
    )
    result = ConstraintResolver(spec, np.random.default_rng(7)).resolve()

    print("Constraint resolution (paper's Figure 3 example):")
    print(f"  requested          : 1000 files summing to 90000 bytes (beta <= 5%)")
    print(f"  initial sum error  : {result.initial_beta:.1%}")
    print(f"  final sum error    : {result.final_beta:.1%}")
    print(f"  oversampling alpha : {result.oversampling_factor:.1%}")
    print(f"  K-S D vs original  : {result.ks_statistic_vs_initial:.3f} "
          f"({'passed' if result.ks_passed else 'failed'})")
    print(f"  converged          : {result.converged}")
    print(f"  achieved sum       : {result.values.sum():.0f}")


def demonstrate_end_to_end() -> None:
    # 1500 files under the default size model occupy roughly 400 MB; pin the
    # total to 320 MB and let the resolver reconcile the sampled sizes.
    config = ImpressionsConfig(
        fs_size_bytes=320 * 1024 * 1024,
        num_files=1_500,
        num_directories=300,
        enforce_fs_size=True,
        beta=0.05,
        seed=21,
    )
    image = Impressions(config).generate()
    achieved = image.total_bytes
    target = config.fs_size_bytes or 0
    print()
    print("End-to-end constrained image:")
    print(f"  target size   : {target:,} bytes")
    print(f"  achieved size : {achieved:,} bytes "
          f"({abs(achieved - target) / target:.2%} relative error)")
    assert image.report is not None
    for key in ("constraint_final_beta", "constraint_oversampling", "constraint_converged"):
        print(f"  {key}: {image.report.derived.get(key)}")


def main() -> None:
    demonstrate_resolver()
    demonstrate_end_to_end()


if __name__ == "__main__":
    main()
