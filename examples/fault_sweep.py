"""Fault-injection walkthrough: plans, sealed writes, healing, chaos sweeps.

Run with::

    PYTHONPATH=src python examples/fault_sweep.py

Demonstrates ``repro.faults``: deriving a deterministic fault schedule from a
seed, watching the result store survive a torn append and a lying fsync,
watching the stage cache quarantine a bit-flipped entry and regenerate it,
and finally running a small seeded chaos sweep whose report proves that
every injected fault either self-healed to a fingerprint-identical result or
dead-lettered with a captured reason.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro import faults
from repro.campaign.store import ResultStore
from repro.faults.harness import run_sweep
from repro.pipeline.cache import StageCache


def banner(title: str) -> None:
    print(f"\n=== {title} ===")


def demo_plans() -> None:
    banner("Seeded fault plans are pure, reproducible data")
    plan = faults.FaultPlan.generate(seed=7, points=["store.append", "queue.lease"])
    again = faults.FaultPlan.generate(seed=7, points=["store.append", "queue.lease"])
    assert plan.fingerprint() == again.fingerprint()
    print(f"fingerprint {plan.fingerprint()[:16]} (same seed -> same schedule)")
    for spec in plan:
        print(f"  {spec.point}: {spec.kind} on arrival #{spec.occurrence}")


def demo_store_healing(workspace: str) -> None:
    banner("Result store: torn appends heal, lying fsyncs are reconciled")
    store = ResultStore(os.path.join(workspace, "results.jsonl"))
    store.append({"fingerprint": "fp-0", "metrics": {"n": 0}})

    # A process crash mid-append leaves a torn final line...
    torn = faults.FaultPlan(
        specs=(faults.FaultSpec(point="store.append", kind="torn_write", offset=11),)
    )
    try:
        with faults.use(torn):
            store.append({"fingerprint": "fp-1", "metrics": {"n": 1}})
    except faults.InjectedCrash:
        print("crashed mid-append (torn bytes are durable)")
    # ...which readers skip + quarantine, and the restarted writer re-appends.
    missing = {"fp-0", "fp-1"} - store.fingerprints()
    print(f"fingerprints missing after the crash: {sorted(missing)}")
    store.append({"fingerprint": "fp-1", "metrics": {"n": 1}})

    # An fsync that lied: append "succeeded" but the tail bytes never landed.
    lying = faults.FaultPlan(
        specs=(faults.FaultSpec(point="store.append", kind="fsync_loss", lost_bytes=9),)
    )
    with faults.use(lying):
        store.append({"fingerprint": "fp-2", "metrics": {"n": 2}})
    print(f"fp-2 persisted? {'fp-2' in store.fingerprints()} (the fsync lied)")
    store.append({"fingerprint": "fp-2", "metrics": {"n": 2}})  # reconcile
    print(f"rows after recovery: {sorted(store.fingerprints())}")


def demo_cache_healing(workspace: str) -> None:
    banner("Stage cache: corruption is detected, quarantined, regenerated")
    cache = StageCache(os.path.join(workspace, "stage-cache"))
    fingerprint = "fe" + "0" * 62
    cache.store(fingerprint, {"stage": "demo", "value": 42})

    path = cache._path(fingerprint)
    blob = bytearray(open(path, "rb").read())
    blob[3] ^= 0xFF  # one flipped bit on disk
    with open(path, "wb") as handle:
        handle.write(bytes(blob))

    print(f"load after bit-flip: {cache.load(fingerprint)} (a miss, not a crash)")
    cache.store(fingerprint, {"stage": "demo", "value": 42})  # the self-heal
    print(f"load after regeneration: {cache.load(fingerprint)}")
    print(f"stats: {cache.stats.as_dict()}")
    sidecar = faults.quarantine_dir(cache.root)
    print(f"quarantined artifacts: {sorted(os.listdir(sidecar))}")


def demo_sweep() -> None:
    banner("Chaos sweep: every fault heals or dead-letters, digests pinned")
    report = run_sweep(23, points=["store.append", "client.request"], log=print)
    document = report.as_dict()
    print(f"passed={document['passed']} verdicts={document['verdicts']}")
    print(f"counters: {json.dumps(document['counters'])}")


def main() -> None:
    demo_plans()
    with tempfile.TemporaryDirectory(prefix="fault-demo-") as workspace:
        demo_store_healing(workspace)
        demo_cache_healing(workspace)
    demo_sweep()
    print("\nFull sweep over every injection point: impressions faults sweep --seed 3")


if __name__ == "__main__":
    main()
