"""Observability tour: spans, metrics, exporters, and cross-process merge.

Run with::

    PYTHONPATH=src python examples/telemetry_tour.py

Walks the ``repro.obs`` surface end to end: binding a ``Telemetry`` object
over a pipeline run (every stage becomes a span, cache events become
counters), observing a trace replay (per-op-class latency histograms),
merging a worker-style snapshot into a parent, and writing/re-reading the
four artifact formats an ``--obs-dir`` run produces.
"""

from __future__ import annotations

import os
import tempfile

from repro import Impressions, ImpressionsConfig, obs
from repro.trace.replay import TraceReplayer
from repro.trace.synthesize import ZipfMixSpec, synthesize_zipf_mix

config = ImpressionsConfig(fs_size_bytes=None, num_files=2_000, num_directories=400, seed=7)

# 1. Observe a whole generation + replay run through the context binding.
#    Every instrumented subsystem on the call path picks the telemetry up via
#    obs.current() — no plumbing through intermediate APIs.
telemetry = obs.Telemetry(run_id="tour")
with obs.use(telemetry):
    image = Impressions(config).generate()
    trace = synthesize_zipf_mix(image, ZipfMixSpec(num_ops=20_000), seed=1)
    TraceReplayer(image).replay(trace)

print("== span/metric summary of the observed run ==")
print(obs.render_text(telemetry))

# 2. Custom spans and metrics compose with the built-in instrumentation.
with obs.use(telemetry):
    with telemetry.span("analysis", what="demo"):
        depth_hist = telemetry.histogram(
            "path_depth", "namespace depth per file", buckets=(2, 4, 8, 16), unit="levels"
        )
        depth_hist.labels().observe_many(
            [float(node.path().count("/")) for node in image.tree.iter_files()]
        )

# 3. Worker-style merge: snapshots are picklable dicts; counters and
#    histogram buckets add, gauges take the incoming value, spans keep the
#    recording pid.  This is exactly how `impressions campaign run --workers N
#    --obs-dir ...` folds per-scenario telemetry into one parent snapshot.
worker = obs.Telemetry(run_id="worker-demo")
with worker.span("scenario", scenario="demo[files=500]"):
    worker.counter("pipeline_stages_total", labels=("stage", "outcome")).inc(
        6, stage="all", outcome="run"
    )
telemetry.merge(worker.snapshot())
print(f"\nafter merge: {len(telemetry.spans)} spans from "
      f"{len({span.pid for span in telemetry.spans})} process(es)")

# 4. The four artifacts an --obs-dir run writes, re-read from disk.
with tempfile.TemporaryDirectory() as obs_dir:
    paths = obs.save(telemetry, obs_dir)
    print("\n== artifacts ==")
    for name, path in sorted(paths.items()):
        print(f"  {name:12s} {os.path.basename(path):14s} {os.path.getsize(path):8d} bytes")

    # The JSONL event log is canonical: everything else re-derives from it
    # (that is what `impressions obs export --format chrome|prom` does).
    rebuilt = obs.read_events_jsonl(obs_dir)
    assert rebuilt.to_events() == telemetry.to_events()
    print("\nevent log round-trips: rebuilt telemetry is event-identical")

    # Diff two runs' metric snapshots with the campaign tolerance machinery.
    from repro.campaign.report import compare

    result = compare(
        obs.compare_rows(telemetry), obs.compare_rows(rebuilt), tolerance=0.05
    )
    print(f"self-comparison: {result.compared_scenarios} series compared, "
          f"{len(result.regressions)} regressions")
