#!/usr/bin/env python3
"""Quickstart: generate a small representative file-system image.

Runs Impressions in its *automated mode* (Section 3.1): you only say how big
the image should be; every distribution keeps its Table 2 default.  The script
prints the image summary, the distributions that shaped it, and the full
reproducibility report that lets anyone regenerate the identical image.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Impressions, ImpressionsConfig
from repro.dataset import analyze_image


def main() -> None:
    # A small image so the example runs in seconds: ~100 MB, 2 000 files.
    config = ImpressionsConfig(
        fs_size_bytes=100 * 1024 * 1024,
        num_files=2_000,
        num_directories=400,
        seed=2009,
    )

    print("Generating a file-system image with Impressions defaults (Table 2)...")
    image = Impressions(config).generate()

    summary = image.summary()
    print()
    print(f"  files        : {summary['files']}")
    print(f"  directories  : {summary['directories']}")
    print(f"  total bytes  : {summary['total_bytes']:,}")
    print(f"  max depth    : {summary['max_depth']}")
    print(f"  mean size    : {summary['mean_file_size']:,.0f} bytes")
    print(f"  layout score : {summary['layout_score']:.3f}")

    # The distributions an evaluator would report alongside their results.
    print()
    print("Distributions used (report these for reproducible benchmarking):")
    for name, value in config.parameter_table().items():
        print(f"  {name}: {value}")

    # A quick look at the generated statistics, the way Figure 2 plots them.
    distributions = analyze_image(image)
    print()
    print("Files by namespace depth (% of files):")
    fractions = distributions.files_by_depth_fractions()
    for depth, fraction in enumerate(fractions):
        if fraction > 0:
            bar = "#" * int(fraction * 200)
            print(f"  depth {depth:2d}: {fraction:6.2%} {bar}")

    print()
    print("Top extensions by count:")
    shares = sorted(distributions.extension_shares.items(), key=lambda kv: -kv[1])
    for extension, share in shares[:10]:
        if share > 0:
            print(f"  .{extension:<6s} {share:6.2%}")

    # Full reproducibility report (Section 4.2): seed + every parameter.
    assert image.report is not None
    print()
    print(image.report.render_text())


if __name__ == "__main__":
    main()
