"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.core.cli import build_parser, config_from_args, main


class TestArgumentParsing:
    def test_defaults(self):
        args = build_parser().parse_args([])
        config = config_from_args(args)
        # Automated mode with no input falls back to the paper default size.
        assert config.fs_size_bytes is not None
        assert config.seed == 42
        assert config.generate_content is False

    def test_size_gb_conversion(self):
        args = build_parser().parse_args(["--size-gb", "2.0", "--files", "100"])
        config = config_from_args(args)
        assert config.fs_size_bytes == 2 * 1024**3
        assert config.num_files == 100

    def test_size_bytes_wins_over_gb(self):
        args = build_parser().parse_args(["--size-bytes", "1000", "--size-gb", "5"])
        assert config_from_args(args).fs_size_bytes == 1000

    def test_content_option(self):
        args = build_parser().parse_args(["--files", "10", "--content", "single-word"])
        config = config_from_args(args)
        assert config.generate_content is True
        assert config.content.text_model == "single-word"

    def test_flags(self):
        args = build_parser().parse_args(
            ["--files", "10", "--enforce-size", "--simple-size-model", "--no-special-dirs",
             "--layout-score", "0.9", "--seed", "7"]
        )
        config = config_from_args(args)
        assert config.enforce_fs_size is True
        assert config.use_simple_size_model is True
        assert config.special_directories == ()
        assert config.layout_score == 0.9
        assert config.seed == 7

    def test_invalid_layout_score_reports_error(self):
        args = build_parser().parse_args(["--files", "10", "--layout-score", "2.0"])
        with pytest.raises(SystemExit):
            config_from_args_or_exit(args)


def config_from_args_or_exit(args):
    """Mirror main()'s error path: ValueError becomes a parser error (SystemExit)."""
    try:
        return config_from_args(args)
    except ValueError as error:
        build_parser().error(str(error))


class TestMain:
    def test_main_generates_and_prints_summary(self, capsys):
        exit_code = main(["--files", "80", "--dirs", "20", "--seed", "3", "--quiet"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "generated image" in output
        assert "80 files" in output

    def test_main_full_report_output(self, capsys):
        main(["--files", "50", "--dirs", "10", "--seed", "3"])
        output = capsys.readouterr().out
        assert "Impressions reproducibility report" in output
        assert "File size by count" in output

    def test_main_writes_report_file(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        main(["--files", "50", "--dirs", "10", "--quiet", "--report", str(report_path)])
        data = json.loads(report_path.read_text())
        assert data["derived"]["file_count"] == 50
        assert "reproducibility report written" in capsys.readouterr().out

    def test_main_materializes_image(self, tmp_path, capsys):
        target = tmp_path / "image"
        main(["--files", "30", "--dirs", "8", "--quiet", "--materialize", str(target)])
        assert target.is_dir()
        assert "materialized 30 files" in capsys.readouterr().out

    def test_main_with_content(self, capsys):
        exit_code = main(["--files", "25", "--dirs", "6", "--quiet", "--content", "hybrid"])
        assert exit_code == 0

    def test_main_json_output_is_machine_readable(self, capsys):
        exit_code = main(["--files", "40", "--dirs", "10", "--seed", "5", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["files"] == 40
        assert payload["knobs"]["num_files"] == 40
        assert payload["knobs"]["seed"] == 5
        assert len(payload["config_fingerprint"]) == 64
        assert payload["report"]["seed"] == 5

    def test_main_json_with_materialize_and_report(self, tmp_path, capsys):
        target = tmp_path / "image"
        report_path = tmp_path / "report.json"
        exit_code = main(
            ["--files", "30", "--dirs", "8", "--json",
             "--materialize", str(target), "--report", str(report_path)]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["materialized"]["files"] == 30
        assert json.loads(report_path.read_text())["seed"] == 42

    def test_json_fingerprint_is_seed_stable(self, capsys):
        main(["--files", "30", "--dirs", "8", "--seed", "9", "--json"])
        first = json.loads(capsys.readouterr().out)
        main(["--files", "30", "--dirs", "8", "--seed", "9", "--json"])
        second = json.loads(capsys.readouterr().out)
        assert first["config_fingerprint"] == second["config_fingerprint"]

    def test_help_lists_key_options(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        help_text = capsys.readouterr().out
        for option in ("--size-gb", "--files", "--layout-score", "--content", "--seed"):
            assert option in help_text


class TestTraceSubcommand:
    def test_synth_churn_to_file(self, tmp_path, capsys):
        from repro.trace.ops import OperationTrace

        out = tmp_path / "trace.jsonl"
        exit_code = main(["trace", "synth", "--kind", "churn", "--ops", "500",
                          "--seed", "3", "--out", str(out)])
        assert exit_code == 0
        trace = OperationTrace.load(str(out))
        assert len(trace) == 500
        assert trace.metadata["synthesizer"] == "churn"

    def test_synth_to_stdout_then_replay_roundtrip(self, tmp_path, capsys, monkeypatch):
        """The synth | replay pipe: stdout of synth is valid stdin for replay."""
        import io

        main(["trace", "synth", "--kind", "zipf", "--ops", "400",
              "--seed", "3", "--files", "80", "--dirs", "20"])
        piped = capsys.readouterr().out
        assert piped.startswith('{"impressions_trace"')

        monkeypatch.setattr("sys.stdin", io.StringIO(piped))
        exit_code = main(["trace", "replay", "--files", "80", "--dirs", "20"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "replayed 400 ops" in output
        assert "Replay statistics by operation class" in output

    def test_replay_writes_stats_json(self, tmp_path, capsys):
        import json as json_module

        trace_path = tmp_path / "t.jsonl"
        stats_path = tmp_path / "stats.json"
        main(["trace", "synth", "--kind", "storm", "--ops", "400",
              "--out", str(trace_path)])
        capsys.readouterr()
        main(["trace", "replay", "--trace", str(trace_path), "--quiet",
              "--stats", str(stats_path)])
        stats = json_module.loads(stats_path.read_text())
        assert stats["executed"] > 0
        assert "per_kind" in stats and "ops_per_second" in stats

    def test_replay_determinism_across_processes(self, tmp_path, capsys):
        """Same seed + config => identical stats JSON (modulo wall-clock keys)."""
        import json as json_module

        trace_path = tmp_path / "t.jsonl"
        main(["trace", "synth", "--kind", "zipf", "--ops", "300", "--seed", "9",
              "--files", "60", "--dirs", "15", "--out", str(trace_path)])
        payloads = []
        for name in ("a.json", "b.json"):
            stats_path = tmp_path / name
            main(["trace", "replay", "--trace", str(trace_path), "--quiet",
                  "--files", "60", "--dirs", "15", "--stats", str(stats_path)])
            payload = json_module.loads(stats_path.read_text())
            payload.pop("wall_seconds")
            payload.pop("ops_per_second")
            payloads.append(payload)
        capsys.readouterr()
        assert payloads[0] == payloads[1]

    def test_age_subcommand(self, tmp_path, capsys):
        out = tmp_path / "aging.jsonl"
        exit_code = main(["trace", "age", "--layout-score", "0.85", "--files", "120",
                          "--dirs", "25", "--out", str(out)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "aged image" in output
        assert out.exists()

    def test_age_requires_image(self):
        with pytest.raises(SystemExit):
            main(["trace", "age", "--layout-score", "0.8"])

    def test_plain_cli_still_works_after_trace_wiring(self, capsys):
        exit_code = main(["--files", "40", "--dirs", "10", "--seed", "3", "--quiet"])
        assert exit_code == 0
        assert "generated image" in capsys.readouterr().out
