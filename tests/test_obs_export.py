"""Telemetry emitters: JSONL round trip, Chrome trace schema, Prometheus text."""

from __future__ import annotations

import io
import json
import math

import pytest

from repro.core.config import ImpressionsConfig
from repro.obs.core import Telemetry, TelemetryError, use
from repro.obs.export import (
    chrome_trace,
    compare_rows,
    prometheus_text,
    read_events_jsonl,
    render_text,
    resolve_events_path,
    save,
    summary_dict,
    write_events_jsonl,
)
from repro.pipeline import default_pipeline


def sample_telemetry() -> Telemetry:
    tele = Telemetry(run_id="sample")
    with tele.span("pipeline", stages="2"):
        with tele.span("stage", stage="a", cached="false"):
            pass
    tele.counter("ops_total", "ops by kind", labels=("kind",)).inc(7, kind="read")
    tele.gauge("files", "file count").set(1234)
    hist = tele.histogram("lat_ms", "latency", buckets=(1.0, 10.0, 100.0), unit="ms")
    hist.labels().observe_many([0.5, 0.5, 5.0, 50.0, 5000.0])
    return tele


SMALL_CONFIG = ImpressionsConfig(
    num_files=60, num_directories=12, fs_size_bytes=32 * 1024 * 1024, seed=3
)


@pytest.fixture(scope="module")
def pipeline_telemetry() -> Telemetry:
    """Telemetry of one real pipeline run (the Chrome-trace schema subject)."""
    tele = Telemetry(run_id="pipeline-test")
    with use(tele):
        default_pipeline().run(SMALL_CONFIG)
    return tele


class TestJsonlRoundTrip:
    def test_stream_round_trip(self):
        tele = sample_telemetry()
        buffer = io.StringIO()
        count = write_events_jsonl(tele, buffer)
        assert count == buffer.getvalue().count("\n")
        buffer.seek(0)
        rebuilt = read_events_jsonl(buffer)
        assert rebuilt.to_events() == tele.to_events()

    def test_file_round_trip_via_dir(self, tmp_path):
        tele = sample_telemetry()
        paths = save(tele, str(tmp_path / "obs"))
        assert resolve_events_path(str(tmp_path / "obs")) == paths["events"]
        rebuilt = read_events_jsonl(str(tmp_path / "obs"))
        assert rebuilt.to_events() == tele.to_events()

    def test_every_line_is_json(self, tmp_path):
        paths = save(sample_telemetry(), str(tmp_path / "obs"))
        with open(paths["events"], encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert lines
        for line in lines:
            event = json.loads(line)
            assert event["type"] in {"meta", "span", "metric"}

    def test_malformed_line_rejected(self):
        with pytest.raises(TelemetryError):
            read_events_jsonl(io.StringIO('{"type": "meta", "format": 1}\nnot json\n'))

    def test_save_writes_all_four_artifacts(self, tmp_path):
        paths = save(sample_telemetry(), str(tmp_path / "obs"))
        assert set(paths) == {"events", "chrome_trace", "prometheus", "summary"}
        import os

        for path in paths.values():
            assert os.path.getsize(path) > 0


class TestChromeTrace:
    def test_schema_of_pipeline_run(self, pipeline_telemetry):
        document = chrome_trace(pipeline_telemetry)
        # Loadable trace_event JSON object format.
        assert json.loads(json.dumps(document)) == document
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        for event in events:
            assert event["ph"] in {"M", "X", "C"}
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert isinstance(event["ts"], float)
                assert isinstance(event["dur"], float)
                assert event["dur"] >= 0.0
                assert isinstance(event["args"], dict)

    def test_one_complete_event_per_pipeline_stage(self, pipeline_telemetry):
        spans = [e for e in chrome_trace(pipeline_telemetry)["traceEvents"] if e["ph"] == "X"]
        names = [event["name"] for event in spans]
        assert "pipeline" in names
        for stage in default_pipeline().stages:
            stage_events = [e for e in spans if e["name"] == stage.name]
            assert len(stage_events) == 1
            assert stage_events[0]["args"]["cached"] == "false"

    def test_counter_samples_present(self, pipeline_telemetry):
        counters = [
            e for e in chrome_trace(pipeline_telemetry)["traceEvents"] if e["ph"] == "C"
        ]
        names = {event["name"] for event in counters}
        assert any(name.startswith("pipeline_stages_total") for name in names)
        assert any(name.startswith("image_files") for name in names)

    def test_error_span_marked(self):
        tele = Telemetry(run_id="err")
        with pytest.raises(ValueError):
            with tele.span("doomed"):
                raise ValueError("nope")
        spans = [e for e in chrome_trace(tele)["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["args"]["error"] == "ValueError"


class TestPrometheusText:
    def test_type_and_help_lines(self):
        text = prometheus_text(sample_telemetry())
        assert "# TYPE ops_total counter" in text
        assert "# TYPE files gauge" in text
        assert "# TYPE lat_ms histogram" in text
        assert "# HELP ops_total ops by kind" in text
        assert 'ops_total{kind="read"} 7' in text
        assert "files 1234" in text

    def test_histogram_buckets_cumulative(self):
        text = prometheus_text(sample_telemetry())
        buckets = {}
        for line in text.splitlines():
            if line.startswith("lat_ms_bucket"):
                label, value = line.rsplit(" ", 1)
                le = label.split('le="')[1].rstrip('"}')
                buckets[le] = int(value)
        assert buckets == {"1": 2, "10": 3, "100": 4, "+Inf": 5}
        assert "lat_ms_count 5" in text
        # Integral values print as integers in the exposition format.
        assert "lat_ms_sum 5056" in text

    def test_label_escaping(self):
        tele = Telemetry()
        tele.counter("c", labels=("path",)).inc(1, path='a"b\\c')
        text = prometheus_text(tele)
        assert 'c{path="a\\"b\\\\c"} 1' in text

    def test_parse_every_sample_line(self, pipeline_telemetry):
        """Every non-comment line is `name{labels} value` with a float value."""
        for line in prometheus_text(pipeline_telemetry).splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            parsed = float(value.replace("+Inf", "inf"))
            assert not math.isnan(parsed)


class TestSummary:
    def test_summary_dict_shape(self):
        summary = summary_dict(sample_telemetry())
        assert summary["run_id"] == "sample"
        assert summary["spans"]["pipeline"]["count"] == 1
        assert summary["spans"]["stage"]["errors"] == 0
        lat = summary["metrics"]["lat_ms"]
        assert lat["kind"] == "histogram"
        assert lat["unit"] == "ms"
        assert lat["series"]["{}"]["count"] == 5
        assert summary["metrics"]["files"]["series"]["{}"] == 1234

    def test_render_text_contains_tree_and_metrics(self):
        text = render_text(sample_telemetry())
        assert "telemetry summary (run sample" in text
        assert 'stage{cached="false",stage="a"}' in text
        assert "counter ops_total" in text
        assert "count=5" in text


class TestCompareRows:
    def test_rows_shape_and_histogram_expansion(self):
        rows = compare_rows(sample_telemetry())
        assert rows['ops_total{kind="read"}']["metrics"] == {"ops_total": 7.0}
        lat = rows["lat_ms"]["metrics"]
        assert lat["lat_ms.count"] == 5
        assert lat["lat_ms.mean_ms"] == pytest.approx(5056.0 / 5)
        assert "lat_ms.p95_ms" in lat

    def test_rows_feed_campaign_compare(self):
        from repro.campaign.report import compare

        baseline = compare_rows(sample_telemetry())
        slower = sample_telemetry()
        slower.histogram(
            "lat_ms", "latency", buckets=(1.0, 10.0, 100.0), unit="ms"
        ).labels().observe_many([5000.0] * 20)
        result = compare(baseline, compare_rows(slower), tolerance=0.05)
        # mean latency rose well past tolerance: the _ms suffix marks it a
        # regression via the campaign metric-direction rules.
        assert result.has_regressions
        regressed = {delta.metric for delta in result.regressions}
        assert "lat_ms.mean_ms" in regressed
