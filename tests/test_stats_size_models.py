"""Tests for the alternative generative file-size models (Downey, Mitzenmacher)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.stats.size_models import DowneyMultiplicativeModel, RecursiveForestFileModel


class TestDowneyMultiplicativeModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DowneyMultiplicativeModel(initial_size=0.0)
        with pytest.raises(ValueError):
            DowneyMultiplicativeModel(log_factor_sigma=0.0)
        with pytest.raises(ValueError):
            DowneyMultiplicativeModel(warmup=0)

    def test_samples_positive(self, rng):
        model = DowneyMultiplicativeModel()
        sample = model.sample(rng, 2_000)
        assert sample.shape == (2_000,)
        assert np.all(sample > 0)

    def test_log_sizes_are_roughly_symmetric_around_seed(self, rng):
        model = DowneyMultiplicativeModel(initial_size=4096.0, log_factor_mu=0.0)
        logs = np.log(model.sample(rng, 5_000))
        assert abs(np.median(logs) - np.log(4096.0)) < 2.5

    def test_positive_drift_grows_files(self):
        neutral = DowneyMultiplicativeModel(log_factor_mu=0.0)
        growing = DowneyMultiplicativeModel(log_factor_mu=0.5)
        neutral_sample = neutral.sample(np.random.default_rng(1), 3_000)
        growing_sample = growing.sample(np.random.default_rng(1), 3_000)
        assert np.median(growing_sample) > np.median(neutral_sample)

    def test_spread_grows_with_generations(self, rng):
        """The multiplicative process produces a wide, skewed distribution."""
        model = DowneyMultiplicativeModel()
        logs = np.log(model.sample(rng, 5_000))
        assert logs.std() > model.log_factor_sigma

    def test_cdf_and_mean_are_usable(self):
        model = DowneyMultiplicativeModel()
        xs = np.logspace(0, 9, 20)
        cdf = model.cdf(xs)
        assert np.all(np.diff(cdf) >= 0)
        assert model.mean() > 0

    def test_empty_sample(self, rng):
        assert DowneyMultiplicativeModel().sample(rng, 0).size == 0


class TestRecursiveForestFileModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecursiveForestFileModel(new_file_probability=0.0)
        with pytest.raises(ValueError):
            RecursiveForestFileModel(factor_sigma=0.0)

    def test_samples_positive_and_heavy_tailed(self, rng):
        model = RecursiveForestFileModel()
        sample = model.sample(rng, 8_000)
        assert np.all(sample > 0)
        # Heavy right tail: the mean greatly exceeds the median.
        assert sample.mean() > 3 * np.median(sample)

    def test_all_new_files_reduces_to_base_lognormal(self, rng):
        model = RecursiveForestFileModel(new_file_probability=1.0)
        sample = np.log(model.sample(rng, 5_000))
        assert sample.mean() == pytest.approx(model.base.mu, abs=0.15)
        assert sample.std() == pytest.approx(model.base.sigma, abs=0.15)

    def test_lower_new_probability_makes_larger_tail(self):
        shallow = RecursiveForestFileModel(new_file_probability=0.9)
        deep = RecursiveForestFileModel(new_file_probability=0.2)
        shallow_sample = shallow.sample(np.random.default_rng(3), 5_000)
        deep_sample = deep.sample(np.random.default_rng(3), 5_000)
        assert np.log(deep_sample).std() > np.log(shallow_sample).std()

    def test_params_roundtrip(self):
        model = RecursiveForestFileModel()
        params = model.params()
        assert params["new_file_probability"] == pytest.approx(0.35)
        assert "base_mu" in params and "factor_sigma" in params


class TestDropInReplacement:
    def test_generative_model_plugs_into_impressions(self):
        """The models work as file_size_model overrides, as §5 suggests."""
        config = ImpressionsConfig(
            fs_size_bytes=None,
            num_files=150,
            num_directories=30,
            seed=9,
            file_size_model=RecursiveForestFileModel(),
        )
        image = Impressions(config).generate()
        assert image.file_count == 150
        assert image.total_bytes > 0
        assert "base_mu" in image.report.distributions["file_size_by_count"]
