"""ResultStore.compact() and the ``impressions campaign gc`` verb."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign.store import ResultStore
from repro.core.cli import main


def _row(scenario: str, fingerprint: str, value: int) -> dict:
    return {
        "scenario": scenario,
        "fingerprint": fingerprint,
        "metrics": {"value": value},
        "wall": {"elapsed": 0.1 * value},
    }


@pytest.fixture()
def duplicated_store(tmp_path) -> ResultStore:
    """Three fingerprints, five rows: a and b superseded by later appends."""
    store = ResultStore(str(tmp_path / "results.jsonl"))
    store.append(_row("s[a]", "fp-a", 1))
    store.append(_row("s[b]", "fp-b", 2))
    store.append(_row("s[a]", "fp-a", 3))
    store.append(_row("s[c]", "fp-c", 4))
    store.append(_row("s[b]", "fp-b", 5))
    return store


class TestCompact:
    def test_keeps_only_newest_row_per_fingerprint(self, duplicated_store):
        report = duplicated_store.compact()
        assert report["rows_before"] == 5
        assert report["rows_after"] == 3
        assert report["rows_dropped"] == 2
        rows = duplicated_store.rows()
        assert [row["metrics"]["value"] for row in rows] == [3, 4, 5]

    def test_latest_rows_unchanged_by_compaction(self, duplicated_store):
        before = duplicated_store.latest_rows()
        duplicated_store.compact()
        assert duplicated_store.latest_rows() == before

    def test_reports_reclaimed_bytes(self, duplicated_store):
        size_before = os.path.getsize(duplicated_store.path)
        report = duplicated_store.compact()
        size_after = os.path.getsize(duplicated_store.path)
        assert report["bytes_before"] == size_before
        assert report["bytes_after"] == size_after
        assert report["bytes_reclaimed"] == size_before - size_after
        assert report["bytes_reclaimed"] > 0

    def test_dry_run_changes_nothing(self, duplicated_store):
        content = open(duplicated_store.path, encoding="utf-8").read()
        report = duplicated_store.compact(dry_run=True)
        assert report["dry_run"] is True
        assert report["rows_dropped"] == 2
        assert open(duplicated_store.path, encoding="utf-8").read() == content

    def test_compact_is_idempotent(self, duplicated_store):
        duplicated_store.compact()
        report = duplicated_store.compact()
        assert report["rows_dropped"] == 0
        assert report["bytes_reclaimed"] == 0

    def test_missing_store_reports_empty(self, tmp_path):
        report = ResultStore(str(tmp_path / "absent.jsonl")).compact()
        assert report["rows_before"] == 0
        assert report["bytes_reclaimed"] == 0

    def test_rows_without_fingerprint_keyed_by_scenario(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.append({"scenario": "s[x]", "metrics": {"value": 1}})
        store.append({"scenario": "s[x]", "metrics": {"value": 2}})
        store.append({"scenario": "s[y]", "metrics": {"value": 3}})
        store.compact()
        assert [row["metrics"]["value"] for row in store.rows()] == [2, 3]


class TestCampaignGcCli:
    def test_gc_compacts_and_reports(self, duplicated_store, capsys):
        code = main(["campaign", "gc", "--store", duplicated_store.path, "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["rows_dropped"] == 2
        assert report["bytes_reclaimed"] > 0
        assert len(duplicated_store.rows()) == 3

    def test_gc_dry_run_leaves_store_alone(self, duplicated_store, capsys):
        code = main(["campaign", "gc", "--store", duplicated_store.path, "--dry-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "would drop 2" in out
        assert len(duplicated_store.rows()) == 5

    def test_gc_missing_store_fails_clearly(self, tmp_path):
        with pytest.raises(SystemExit, match="no such store"):
            main(["campaign", "gc", "--store", str(tmp_path / "absent.jsonl")])
