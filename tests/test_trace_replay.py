"""Tests for the trace replay engine."""

from __future__ import annotations

import pytest

from repro.trace.ops import Operation, OperationTrace
from repro.trace.replay import ReplayCostModel, TraceReplayer
from repro.trace.synthesize import ChurnSpec, ZipfMixSpec, synthesize_churn, synthesize_zipf_mix
from repro.workloads.cache import BufferCache


def _trace(*ops: Operation) -> OperationTrace:
    return OperationTrace(ops)


class TestBasicSemantics:
    def test_create_read_delete_lifecycle(self):
        replayer = TraceReplayer(disk_blocks=1024)
        result = replayer.replay(
            _trace(
                Operation(kind="create", path="/f", size=8192),
                Operation(kind="read", path="/f", size=8192),
                Operation(kind="stat", path="/f"),
                Operation(kind="delete", path="/f"),
            )
        )
        assert result.executed == 4
        assert result.skipped == 0
        assert not replayer.disk.has_file("/f")
        assert result.per_kind["read"].bytes_moved == 8192

    def test_append_write_allocates_blocks(self):
        replayer = TraceReplayer(disk_blocks=1024)
        replayer.execute(Operation(kind="create", path="/f", size=4096))
        replayer.execute(Operation(kind="write", path="/f", size=8192, append=True))
        assert len(replayer.disk.blocks_of("/f")) == 3

    def test_inplace_write_does_not_grow_file(self):
        replayer = TraceReplayer(disk_blocks=1024)
        replayer.execute(Operation(kind="create", path="/f", size=16 * 4096))
        before = len(replayer.disk.blocks_of("/f"))
        replayer.execute(Operation(kind="write", path="/f", size=4096))
        assert len(replayer.disk.blocks_of("/f")) == before

    def test_inplace_write_past_eof_extends(self):
        replayer = TraceReplayer(disk_blocks=1024)
        replayer.execute(Operation(kind="create", path="/f", size=4096))
        replayer.execute(Operation(kind="write", path="/f", size=4 * 4096))
        assert len(replayer.disk.blocks_of("/f")) == 4

    def test_write_to_missing_file_creates_it(self):
        replayer = TraceReplayer(disk_blocks=1024)
        replayer.execute(Operation(kind="write", path="/new", size=4096, append=True))
        assert replayer.disk.has_file("/new")

    def test_rename_moves_allocation(self):
        replayer = TraceReplayer(disk_blocks=1024)
        replayer.execute(Operation(kind="create", path="/a", size=4096))
        blocks = replayer.disk.blocks_of("/a")
        replayer.execute(Operation(kind="rename", path="/a", dest="/b"))
        assert not replayer.disk.has_file("/a")
        assert replayer.disk.blocks_of("/b") == blocks

    def test_mkdir_then_delete_directory(self):
        replayer = TraceReplayer(disk_blocks=64)
        result = replayer.replay(
            _trace(
                Operation(kind="mkdir", path="/d"),
                Operation(kind="delete", path="/d"),
            )
        )
        assert result.executed == 2
        assert result.skipped == 0


class TestSkippingAndStrict:
    def test_inconsistent_ops_are_skipped(self):
        replayer = TraceReplayer(disk_blocks=64)
        result = replayer.replay(
            _trace(
                Operation(kind="delete", path="/missing"),
                Operation(kind="read", path="/missing"),
                Operation(kind="rename", path="/missing", dest="/other"),
                Operation(kind="mkdir", path="/d"),
                Operation(kind="mkdir", path="/d"),
            )
        )
        assert result.skipped == 4
        assert result.executed == 1

    def test_double_create_skipped(self):
        replayer = TraceReplayer(disk_blocks=64)
        replayer.execute(Operation(kind="create", path="/f", size=0))
        result = replayer.replay(_trace(Operation(kind="create", path="/f", size=0)))
        assert result.per_kind["create"].skipped == 1

    def test_strict_mode_raises(self):
        replayer = TraceReplayer(disk_blocks=64, strict=True)
        with pytest.raises(ValueError, match="strict replay"):
            replayer.execute(Operation(kind="delete", path="/missing"))

    def test_disk_full_create_skipped(self):
        replayer = TraceReplayer(disk_blocks=4)
        result = replayer.replay(_trace(Operation(kind="create", path="/big", size=64 * 4096)))
        assert result.per_kind["create"].skipped == 1


class TestCostsAndCache:
    def test_cached_read_is_cheaper(self):
        replayer = TraceReplayer(disk_blocks=1024)
        replayer.execute(Operation(kind="create", path="/f", size=32 * 4096))
        cold = replayer.execute(Operation(kind="read", path="/f", size=32 * 4096))
        warm = replayer.execute(Operation(kind="read", path="/f", size=32 * 4096))
        assert warm < cold

    def test_cached_stat_is_cheaper(self):
        replayer = TraceReplayer(disk_blocks=64)
        cold = replayer.execute(Operation(kind="stat", path="/f"))
        warm = replayer.execute(Operation(kind="stat", path="/f"))
        assert warm < cold
        assert warm == pytest.approx(ReplayCostModel().cached_metadata_cpu_ms)

    def test_warm_cache_over_image(self, small_image):
        # Write-free mix: small_image is session-shared and must not mutate.
        spec = ZipfMixSpec(num_ops=2000, write_fraction=0.0)
        trace = synthesize_zipf_mix(small_image, spec, seed=5)
        cold = TraceReplayer(small_image).replay(trace)
        warm_replayer = TraceReplayer(small_image)
        warm_replayer.warm_cache()
        warm = warm_replayer.replay(trace)
        assert warm.simulated_ms < cold.simulated_ms
        assert warm.cache_hit_ratio > cold.cache_hit_ratio

    def test_bounded_cache_can_be_injected(self):
        cache = BufferCache(capacity_bytes=8 * 4096)
        replayer = TraceReplayer(cache=cache, disk_blocks=1024)
        replayer.execute(Operation(kind="create", path="/f", size=64 * 4096))
        replayer.execute(Operation(kind="read", path="/f"))
        assert cache.used_bytes <= 8 * 4096

    def test_fragmented_read_costs_more(self):
        replayer = TraceReplayer(disk_blocks=1024)
        replayer.execute(Operation(kind="create", path="/a", size=4 * 4096))
        replayer.execute(Operation(kind="create", path="/gap", size=4096))
        replayer.execute(Operation(kind="create", path="/b", size=4 * 4096))
        replayer.execute(Operation(kind="delete", path="/gap"))
        replayer.execute(Operation(kind="create", path="/frag", size=8 * 4096))
        contiguous = replayer.disk.geometry.access_time_ms(1, 8)
        fragmented = replayer.execute(Operation(kind="read", path="/frag"))
        assert fragmented > contiguous


class TestResultShape:
    def test_replay_over_image_reports_layout_scores(self, small_image):
        spec = ZipfMixSpec(num_ops=200, write_fraction=0.0)
        trace = synthesize_zipf_mix(small_image, spec, seed=5)
        result = TraceReplayer(small_image).replay(trace)
        assert result.layout_score_before is not None
        assert result.layout_score_after is not None

    def test_as_dict_is_deterministic_and_complete(self):
        trace = synthesize_churn(ChurnSpec(num_ops=800), seed=11)
        a = TraceReplayer(disk_blocks=65_536).replay(trace)
        b = TraceReplayer(disk_blocks=65_536).replay(trace)
        assert a.as_dict() == b.as_dict()
        payload = a.as_dict()
        assert payload["operations"] == 800
        assert payload["batches"] == trace.num_batches()
        assert set(payload["per_kind"]) == set(trace.counts_by_kind())

    def test_wall_clock_excluded_from_dict(self):
        trace = synthesize_churn(ChurnSpec(num_ops=50), seed=11)
        result = TraceReplayer(disk_blocks=65_536).replay(trace)
        assert "wall_seconds" not in result.as_dict()
        assert result.wall_seconds > 0
        assert result.ops_per_second > 0

    def test_replay_records_timing_in_image_extras(self, small_config):
        from repro.core.impressions import Impressions

        image = Impressions(small_config).generate()
        trace = synthesize_zipf_mix(image, ZipfMixSpec(num_ops=100), seed=5)
        TraceReplayer(image).replay(trace)
        assert image.extras["timings"].extras["trace_replay"] > 0
        assert "trace_replay" in image.extras["timings"].as_dict()
