"""Unit tests for repro.stats.distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.stats.distributions import (
    CategoricalDistribution,
    EmpiricalDistribution,
    HybridLognormalPareto,
    InversePolynomialDistribution,
    LognormalDistribution,
    MixtureOfLognormals,
    ParetoDistribution,
    ShiftedPoissonDistribution,
)


class TestLognormal:
    def test_mean_matches_formula(self):
        dist = LognormalDistribution(mu=2.0, sigma=0.5)
        assert dist.mean() == pytest.approx(math.exp(2.0 + 0.125))

    def test_median_is_exp_mu(self):
        dist = LognormalDistribution(mu=3.0, sigma=1.0)
        assert dist.median() == pytest.approx(math.exp(3.0))

    def test_sample_statistics(self, rng):
        dist = LognormalDistribution(mu=5.0, sigma=0.4)
        sample = dist.sample(rng, 20_000)
        assert np.log(sample).mean() == pytest.approx(5.0, abs=0.02)
        assert np.log(sample).std() == pytest.approx(0.4, abs=0.02)

    def test_cdf_is_monotone_and_bounded(self):
        dist = LognormalDistribution(mu=0.0, sigma=1.0)
        xs = np.logspace(-3, 3, 50)
        cdf = dist.cdf(xs)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] >= 0.0 and cdf[-1] <= 1.0

    def test_cdf_zero_below_support(self):
        dist = LognormalDistribution(mu=0.0, sigma=1.0)
        assert dist.cdf(np.asarray([-1.0, 0.0]))[0] == 0.0

    def test_quantile_inverts_cdf(self):
        dist = LognormalDistribution(mu=1.5, sigma=0.7)
        qs = np.asarray([0.1, 0.5, 0.9])
        xs = dist.quantile(qs)
        assert dist.cdf(xs) == pytest.approx(qs, abs=1e-9)

    def test_quantile_rejects_out_of_range(self):
        dist = LognormalDistribution(mu=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            dist.quantile(np.asarray([1.5]))

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            LognormalDistribution(mu=0.0, sigma=0.0)

    def test_pdf_integrates_to_one(self):
        dist = LognormalDistribution(mu=1.0, sigma=0.5)
        xs = np.linspace(1e-6, 60, 200_000)
        integral = np.trapezoid(dist.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_params_roundtrip(self):
        dist = LognormalDistribution(mu=9.48, sigma=2.46)
        assert dist.params() == {"mu": 9.48, "sigma": 2.46}
        assert "lognormal" in dist.describe()


class TestPareto:
    def test_mean_finite_for_k_above_one(self):
        dist = ParetoDistribution(k=2.0, xm=10.0)
        assert dist.mean() == pytest.approx(20.0)

    def test_mean_infinite_for_small_k(self):
        dist = ParetoDistribution(k=0.91, xm=512.0)
        assert math.isinf(dist.mean())

    def test_samples_respect_scale(self, rng):
        dist = ParetoDistribution(k=1.5, xm=100.0)
        sample = dist.sample(rng, 5_000)
        assert np.all(sample >= 100.0)

    def test_cdf_at_scale_is_zero(self):
        dist = ParetoDistribution(k=1.0, xm=4.0)
        assert dist.cdf(np.asarray([4.0]))[0] == pytest.approx(0.0)

    def test_cdf_tail_behaviour(self):
        dist = ParetoDistribution(k=1.0, xm=1.0)
        assert dist.cdf(np.asarray([10.0]))[0] == pytest.approx(0.9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParetoDistribution(k=0.0, xm=1.0)
        with pytest.raises(ValueError):
            ParetoDistribution(k=1.0, xm=0.0)


class TestHybridLognormalPareto:
    @pytest.fixture
    def hybrid(self) -> HybridLognormalPareto:
        return HybridLognormalPareto(
            body=LognormalDistribution(mu=9.48, sigma=2.46),
            tail=ParetoDistribution(k=0.91, xm=512 * 1024 * 1024),
            body_fraction=0.99994,
        )

    def test_tail_fraction(self, hybrid):
        assert hybrid.tail_fraction == pytest.approx(1.0 - 0.99994)

    def test_body_samples_below_threshold(self, rng, hybrid):
        sample = hybrid.sample(rng, 20_000)
        below = sample < 512 * 1024 * 1024
        # Essentially all samples come from the body at this body fraction.
        assert below.mean() > 0.999

    def test_tail_samples_exist_when_tail_heavy(self, rng):
        heavy = HybridLognormalPareto(
            body=LognormalDistribution(mu=9.0, sigma=1.0),
            tail=ParetoDistribution(k=1.5, xm=1024.0),
            body_fraction=0.5,
        )
        sample = heavy.sample(rng, 4_000)
        assert (sample >= 1024.0).mean() == pytest.approx(0.5, abs=0.05)

    def test_cdf_monotone_across_threshold(self, hybrid):
        xs = np.asarray([1e3, 1e6, 5e8, 6e8, 1e10])
        cdf = hybrid.cdf(xs)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] <= 1.0

    def test_cdf_continuity_at_threshold(self, hybrid):
        threshold = hybrid.tail.xm
        just_below = hybrid.cdf(np.asarray([threshold * (1 - 1e-9)]))[0]
        at = hybrid.cdf(np.asarray([threshold]))[0]
        assert at == pytest.approx(just_below, abs=1e-3)

    def test_empty_sample(self, rng, hybrid):
        assert hybrid.sample(rng, 0).size == 0

    def test_invalid_body_fraction(self):
        with pytest.raises(ValueError):
            HybridLognormalPareto(
                body=LognormalDistribution(mu=1.0, sigma=1.0),
                tail=ParetoDistribution(k=1.0, xm=10.0),
                body_fraction=0.0,
            )

    def test_params_contains_all_components(self, hybrid):
        params = hybrid.params()
        assert set(params) == {"body_fraction", "mu", "sigma", "k", "xm"}


class TestMixtureOfLognormals:
    @pytest.fixture
    def mixture(self) -> MixtureOfLognormals:
        return MixtureOfLognormals.from_parameters(
            weights=(0.76, 0.24), mus=(14.83, 20.93), sigmas=(2.35, 1.48)
        )

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MixtureOfLognormals.from_parameters(weights=(0.5, 0.2), mus=(1, 2), sigmas=(1, 1))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MixtureOfLognormals.from_parameters(weights=(1.0,), mus=(1, 2), sigmas=(1, 1))

    def test_mean_is_weighted_sum(self, mixture):
        expected = 0.76 * math.exp(14.83 + 2.35**2 / 2) + 0.24 * math.exp(20.93 + 1.48**2 / 2)
        assert mixture.mean() == pytest.approx(expected)

    def test_sampling_matches_cdf_at_midpoint(self, rng, mixture):
        cut = math.exp((14.83 + 20.93) / 2)
        expected = float(mixture.cdf(np.asarray([cut]))[0])
        sample = mixture.sample(rng, 30_000)
        assert (sample < cut).mean() == pytest.approx(expected, abs=0.02)

    def test_cdf_bounded(self, mixture):
        xs = np.logspace(0, 12, 40)
        cdf = mixture.cdf(xs)
        assert np.all((cdf >= 0) & (cdf <= 1))
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_params_labels_components(self, mixture):
        params = mixture.params()
        assert params["alpha1"] == pytest.approx(0.76)
        assert params["mu2"] == pytest.approx(20.93)


class TestShiftedPoisson:
    def test_mean_with_offset(self):
        dist = ShiftedPoissonDistribution(lam=6.49, offset=1)
        assert dist.mean() == pytest.approx(7.49)

    def test_sample_mean(self, rng):
        dist = ShiftedPoissonDistribution(lam=6.49)
        sample = dist.sample(rng, 50_000)
        assert sample.mean() == pytest.approx(6.49, abs=0.05)

    def test_pmf_sums_to_one(self):
        dist = ShiftedPoissonDistribution(lam=3.0)
        ks = np.arange(0, 60)
        assert dist.pmf(ks).sum() == pytest.approx(1.0, abs=1e-9)

    def test_offset_shifts_support(self, rng):
        dist = ShiftedPoissonDistribution(lam=2.0, offset=3)
        sample = dist.sample(rng, 1_000)
        assert sample.min() >= 3

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            ShiftedPoissonDistribution(lam=0.0)


class TestInversePolynomial:
    def test_pmf_sums_to_one(self):
        dist = InversePolynomialDistribution(degree=2.0, offset=2.36, max_value=500)
        ks = np.arange(0, 501)
        assert dist.pmf(ks).sum() == pytest.approx(1.0, abs=1e-9)

    def test_mass_decreases_with_k(self):
        dist = InversePolynomialDistribution(degree=2.0, offset=2.36, max_value=100)
        pmf = dist.pmf(np.arange(0, 101))
        assert np.all(np.diff(pmf) <= 0)

    def test_samples_within_support(self, rng):
        dist = InversePolynomialDistribution(degree=2.0, offset=2.36, max_value=50)
        sample = dist.sample(rng, 2_000)
        assert sample.min() >= 0 and sample.max() <= 50

    def test_most_directories_are_small(self, rng):
        dist = InversePolynomialDistribution(degree=2.0, offset=2.36, max_value=4096)
        sample = dist.sample(rng, 5_000)
        assert np.median(sample) <= 2

    def test_cdf_reaches_one(self):
        dist = InversePolynomialDistribution(degree=2.0, offset=2.36, max_value=30)
        assert dist.cdf(np.asarray([30]))[0] == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            InversePolynomialDistribution(degree=0.0, offset=1.0)
        with pytest.raises(ValueError):
            InversePolynomialDistribution(degree=2.0, offset=-1.0)


class TestCategorical:
    def test_probabilities_normalised(self):
        dist = CategoricalDistribution(labels=["a", "b"], weights=[3.0, 1.0])
        assert dist.probability_of("a") == pytest.approx(0.75)
        assert dist.probability_of("missing") == 0.0

    def test_sample_labels_frequencies(self, rng):
        dist = CategoricalDistribution(labels=["x", "y", "z"], weights=[0.6, 0.3, 0.1])
        labels = dist.sample_labels(rng, 30_000)
        assert labels.count("x") / len(labels) == pytest.approx(0.6, abs=0.02)

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDistribution(labels=["a"], weights=[0.5, 0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDistribution(labels=["a", "b"], weights=[1.0, -0.1])

    def test_cdf_and_pdf_consistent(self):
        dist = CategoricalDistribution(labels=["a", "b", "c"], weights=[0.2, 0.3, 0.5])
        pdf = dist.pdf(np.asarray([0, 1, 2]))
        assert pdf.sum() == pytest.approx(1.0)
        assert dist.cdf(np.asarray([2]))[0] == pytest.approx(1.0)


class TestEmpirical:
    def test_cdf_matches_observations(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(np.asarray([2.0]))[0] == pytest.approx(0.5)
        assert dist.cdf(np.asarray([0.5]))[0] == 0.0
        assert dist.cdf(np.asarray([10.0]))[0] == 1.0

    def test_sampling_only_returns_observed_values(self, rng):
        observations = [5.0, 7.0, 11.0]
        dist = EmpiricalDistribution(observations)
        sample = dist.sample(rng, 500)
        assert set(np.unique(sample)).issubset(set(observations))

    def test_mean_and_params(self):
        dist = EmpiricalDistribution([2.0, 4.0, 6.0])
        assert dist.mean() == pytest.approx(4.0)
        assert dist.params()["n"] == 3

    def test_quantile(self):
        dist = EmpiricalDistribution(list(range(101)))
        assert dist.quantile(np.asarray([0.5]))[0] == pytest.approx(50.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([])


class TestCommonInterface:
    @pytest.mark.parametrize(
        "distribution",
        [
            LognormalDistribution(mu=1.0, sigma=1.0),
            ParetoDistribution(k=2.0, xm=1.0),
            ShiftedPoissonDistribution(lam=4.0),
            InversePolynomialDistribution(degree=2.0, offset=2.36, max_value=64),
        ],
        ids=["lognormal", "pareto", "poisson", "inverse-polynomial"],
    )
    def test_negative_sample_size_rejected(self, distribution, rng):
        with pytest.raises(ValueError):
            distribution.sample(rng, -1)

    @pytest.mark.parametrize(
        "distribution",
        [
            LognormalDistribution(mu=1.0, sigma=1.0),
            ParetoDistribution(k=2.0, xm=1.0),
            ShiftedPoissonDistribution(lam=4.0),
        ],
        ids=["lognormal", "pareto", "poisson"],
    )
    def test_sampling_is_reproducible_from_seed(self, distribution):
        a = distribution.sample(np.random.default_rng(99), 100)
        b = distribution.sample(np.random.default_rng(99), 100)
        assert np.array_equal(a, b)
