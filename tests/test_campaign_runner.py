"""Campaign execution: determinism, resume, parallel equivalence."""

from __future__ import annotations

import json

import pytest

from repro.campaign.report import compare
from repro.campaign.runner import run_campaign, run_scenario
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, deterministic_view

SPEC_DOC = {
    "name": "determinism",
    "base": {"num_directories": 12, "fs_size_bytes": 32 * 1024 * 1024},
    "sweep": {"num_files": [60, 80], "seed": [1, 2]},
    "steps": [
        {"step": "summary"},
        {"step": "find"},
        {"step": "trace_replay", "kind": "zipf", "ops": 300},
    ],
}


@pytest.fixture(scope="module")
def spec() -> CampaignSpec:
    return CampaignSpec.from_dict(SPEC_DOC)


@pytest.fixture(scope="module")
def first_store(spec, tmp_path_factory) -> ResultStore:
    path = tmp_path_factory.mktemp("campaign") / "first.jsonl"
    run_campaign(spec, str(path), workers=1)
    return ResultStore(str(path))


class TestRunScenario:
    def test_row_shape(self, spec):
        row = run_scenario(spec.expand()[0].payload())
        assert row["campaign"] == "determinism"
        assert row["fingerprint"] == spec.expand()[0].fingerprint
        assert row["metrics"]["summary.files"] == 60
        assert "find.elapsed_ms" in row["metrics"]
        assert "trace_replay.simulated_ms" in row["metrics"]
        # every wall-clock figure lives in the wall section
        assert set(row["wall"]) == {
            "generate_seconds",
            "summary_seconds",
            "find_seconds",
            "trace_replay_seconds",
        }

    def test_step_label_namespaces_metrics(self, spec):
        payload = spec.expand()[0].payload()
        payload["steps"] = [
            {"step": "trace_replay", "kind": "zipf", "ops": 100, "label": "hot"},
            {"step": "trace_replay", "kind": "churn", "ops": 100, "label": "cold"},
        ]
        row = run_scenario(payload)
        assert "hot.simulated_ms" in row["metrics"]
        assert "cold.simulated_ms" in row["metrics"]


class TestDeterminismAndResume:
    def test_same_spec_same_rows_modulo_wall(self, spec, first_store, tmp_path):
        second_path = tmp_path / "second.jsonl"
        run_campaign(spec, str(second_path), workers=1)
        first = [deterministic_view(row) for row in first_store]
        second = [deterministic_view(row) for row in ResultStore(str(second_path))]
        assert first == second
        # ... and the deterministic view is byte-identical once re-serialized
        # canonically (the store's own format).
        canon = lambda rows: [
            json.dumps(row, sort_keys=True, separators=(",", ":")) for row in rows
        ]
        assert canon(first) == canon(second)

    def test_rerun_skips_every_completed_scenario(self, spec, first_store):
        result = run_campaign(spec, first_store.path, workers=1)
        assert result.executed == []
        assert len(result.skipped) == spec.num_scenarios
        # the store did not grow
        assert len(first_store.rows()) == spec.num_scenarios

    def test_partial_store_resumes_only_pending(self, spec, first_store, tmp_path):
        partial_path = tmp_path / "partial.jsonl"
        rows = first_store.rows()
        store = ResultStore(str(partial_path))
        for row in rows[:2]:
            store.append(row)
        result = run_campaign(spec, str(partial_path), workers=1)
        assert len(result.skipped) == 2
        assert len(result.executed) == spec.num_scenarios - 2
        # resumed store converges to the full run, in scenario order
        full = [deterministic_view(row) for row in first_store]
        resumed = [deterministic_view(row) for row in store]
        assert resumed == full

    def test_force_appends_fresh_rows(self, spec, first_store, tmp_path):
        path = tmp_path / "forced.jsonl"
        run_campaign(spec, str(path), workers=1)
        result = run_campaign(spec, str(path), workers=1, force=True)
        assert len(result.executed) == spec.num_scenarios
        store = ResultStore(str(path))
        assert len(store.rows()) == 2 * spec.num_scenarios
        # latest_rows keeps one row per scenario
        assert len(store.latest_rows()) == spec.num_scenarios

    def test_parallel_run_matches_serial(self, spec, first_store, tmp_path):
        parallel_path = tmp_path / "parallel.jsonl"
        run_campaign(spec, str(parallel_path), workers=2)
        serial = [deterministic_view(row) for row in first_store]
        parallel = [deterministic_view(row) for row in ResultStore(str(parallel_path))]
        assert parallel == serial

    def test_compare_of_identical_runs_is_clean(self, spec, first_store, tmp_path):
        other_path = tmp_path / "other.jsonl"
        run_campaign(spec, str(other_path), workers=1)
        diff = compare(
            first_store.latest_rows(), ResultStore(str(other_path)).latest_rows()
        )
        assert not diff.has_regressions
        assert diff.identical_rows == spec.num_scenarios

    def test_workers_validation(self, spec, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(spec, str(tmp_path / "x.jsonl"), workers=0)

    def test_crash_preserves_completed_rows(self, spec, first_store, tmp_path, monkeypatch):
        """A failure partway through keeps finished scenarios in the store."""
        import repro.campaign.runner as runner_module

        calls = {"count": 0}
        real_run_scenario = run_scenario

        def flaky(payload):
            calls["count"] += 1
            if calls["count"] == 3:
                raise RuntimeError("worker died")
            return real_run_scenario(payload)

        monkeypatch.setattr(runner_module, "run_scenario", flaky)
        path = tmp_path / "crashed.jsonl"
        with pytest.raises(RuntimeError, match="worker died"):
            run_campaign(spec, str(path), workers=1)
        store = ResultStore(str(path))
        assert len(store.rows()) == 2  # the scenarios that finished before the crash
        monkeypatch.undo()
        # resume executes only what is missing and converges to the full run
        result = run_campaign(spec, str(path), workers=1)
        assert len(result.skipped) == 2
        assert len(result.executed) == spec.num_scenarios - 2
        assert [deterministic_view(row) for row in store] == [
            deterministic_view(row) for row in first_store
        ]
