"""Campaign spec parsing, expansion, and fingerprinting."""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import CampaignSpec, SpecError, scenario_fingerprint
from repro.core.config import ImpressionsConfig

SPEC_DOC = {
    "name": "sweep",
    "base": {"num_files": 100, "num_directories": 20, "fs_size_bytes": 32 * 1024 * 1024},
    "sweep": {"num_files": [60, 90], "layout_score": [1.0, 0.8], "seed": [1, 2]},
    "steps": [{"step": "summary"}, {"step": "find", "pattern": "x"}],
}


class TestParsing:
    def test_from_dict_round_trip(self):
        spec = CampaignSpec.from_dict(SPEC_DOC)
        assert spec.name == "sweep"
        assert spec.num_scenarios == 8
        assert spec.to_dict()["sweep"]["layout_score"] == [1.0, 0.8]

    def test_from_json(self):
        spec = CampaignSpec.from_json(json.dumps(SPEC_DOC))
        assert spec.num_scenarios == 8

    def test_load(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC_DOC))
        assert CampaignSpec.load(str(path)).name == "sweep"

    def test_rejects_unknown_knob(self):
        bad = dict(SPEC_DOC, base={"numfiles": 10})
        with pytest.raises(SpecError, match="numfiles"):
            CampaignSpec.from_dict(bad)

    def test_rejects_unknown_sweep_axis(self):
        bad = dict(SPEC_DOC, sweep={"not_a_knob": [1]})
        with pytest.raises(SpecError, match="not_a_knob"):
            CampaignSpec.from_dict(bad)

    def test_rejects_empty_axis(self):
        bad = dict(SPEC_DOC, sweep={"seed": []})
        with pytest.raises(SpecError, match="must not be empty"):
            CampaignSpec.from_dict(bad)

    def test_rejects_missing_steps(self):
        bad = dict(SPEC_DOC, steps=[])
        with pytest.raises(SpecError, match="at least one step"):
            CampaignSpec.from_dict(bad)

    def test_rejects_unregistered_step_at_parse_time(self):
        bad = dict(SPEC_DOC, steps=[{"step": "fnd"}])
        with pytest.raises(SpecError, match="unknown step 'fnd'"):
            CampaignSpec.from_dict(bad)

    def test_rejects_bad_knob_value_at_parse_time(self):
        bad = dict(SPEC_DOC, sweep={"layout_score": [2.0]})
        with pytest.raises(SpecError, match="layout_score"):
            CampaignSpec.from_dict(bad)

    def test_rejects_unknown_document_key(self):
        with pytest.raises(SpecError, match="swep"):
            CampaignSpec.from_dict(dict(SPEC_DOC, swep={}))

    def test_rejects_invalid_json(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            CampaignSpec.from_json("{nope")


class TestExpansion:
    def test_cross_product_order_is_declaration_order_last_axis_fastest(self):
        spec = CampaignSpec.from_dict(SPEC_DOC)
        scenarios = spec.expand()
        assert len(scenarios) == 8
        assert [s.params for s in scenarios[:3]] == [
            {"num_files": 60, "layout_score": 1.0, "seed": 1},
            {"num_files": 60, "layout_score": 1.0, "seed": 2},
            {"num_files": 60, "layout_score": 0.8, "seed": 1},
        ]

    def test_scenario_ids_are_readable_and_unique(self):
        scenarios = CampaignSpec.from_dict(SPEC_DOC).expand()
        ids = [s.scenario_id for s in scenarios]
        assert ids[0] == "sweep[num_files=60,layout_score=1,seed=1]"
        assert len(set(ids)) == len(ids)

    def test_sweep_overrides_base(self):
        scenarios = CampaignSpec.from_dict(SPEC_DOC).expand()
        assert scenarios[0].knobs["num_files"] == 60  # not the base 100

    def test_scenario_config_builds(self):
        scenario = CampaignSpec.from_dict(SPEC_DOC).expand()[0]
        config = scenario.config()
        assert config.num_files == 60
        assert config.seed == 1

    def test_payload_is_json_serializable(self):
        scenario = CampaignSpec.from_dict(SPEC_DOC).expand()[0]
        round_tripped = json.loads(json.dumps(scenario.payload()))
        assert round_tripped["fingerprint"] == scenario.fingerprint


class TestFingerprints:
    def test_identical_specs_have_identical_fingerprints(self):
        first = CampaignSpec.from_dict(SPEC_DOC).expand()
        second = CampaignSpec.from_dict(json.loads(json.dumps(SPEC_DOC))).expand()
        assert [s.fingerprint for s in first] == [s.fingerprint for s in second]

    def test_fingerprint_changes_with_knob_value(self):
        scenarios = CampaignSpec.from_dict(SPEC_DOC).expand()
        assert len({s.fingerprint for s in scenarios}) == len(scenarios)

    def test_fingerprint_changes_with_steps(self):
        knobs = {"num_files": 60, "seed": 1}
        with_find = scenario_fingerprint(knobs, [{"step": "find"}])
        with_grep = scenario_fingerprint(knobs, [{"step": "grep"}])
        assert with_find != with_grep

    def test_fingerprint_normalizes_knob_spelling(self):
        # A default spelled out explicitly is the same scenario as one
        # relying on the default.
        explicit = scenario_fingerprint(
            {"num_files": 60, "block_size": 4096}, [{"step": "summary"}]
        )
        implicit = scenario_fingerprint({"num_files": 60}, [{"step": "summary"}])
        assert explicit == implicit


class TestConfigKnobs:
    def test_to_knobs_from_knobs_round_trip(self):
        config = ImpressionsConfig(
            num_files=123, num_directories=45, layout_score=0.7, seed=9
        )
        rebuilt = ImpressionsConfig.from_knobs(config.to_knobs())
        assert rebuilt.to_knobs() == config.to_knobs()
        assert rebuilt.fingerprint() == config.fingerprint()

    def test_from_knobs_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown config knobs"):
            ImpressionsConfig.from_knobs({"num_fils": 10})

    def test_content_model_knob(self):
        config = ImpressionsConfig.from_knobs({"num_files": 10, "content_model": "hybrid"})
        assert config.generate_content is True
        assert config.content.text_model == "hybrid"
        assert config.to_knobs()["content_model"] == "hybrid"
        metadata_only = ImpressionsConfig.from_knobs({"num_files": 10})
        assert metadata_only.generate_content is False
        assert metadata_only.to_knobs()["content_model"] == "none"

    def test_special_directories_knob(self):
        disabled = ImpressionsConfig.from_knobs(
            {"num_files": 10, "special_directories": False}
        )
        assert disabled.special_directories == ()
        assert disabled.to_knobs()["special_directories"] is False

    def test_fingerprint_is_seed_sensitive(self):
        one = ImpressionsConfig(num_files=10, seed=1).fingerprint()
        two = ImpressionsConfig(num_files=10, seed=2).fingerprint()
        assert one != two
