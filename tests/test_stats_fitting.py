"""Unit tests for repro.stats.fitting (automatic curve fitting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.distributions import LognormalDistribution, MixtureOfLognormals, ParetoDistribution
from repro.stats.fitting import (
    fit_best_model,
    fit_hybrid_lognormal_pareto,
    fit_inverse_polynomial,
    fit_lognormal,
    fit_mixture_of_lognormals,
    fit_pareto,
    fit_poisson,
)


class TestFitLognormal:
    def test_recovers_parameters(self, rng):
        truth = LognormalDistribution(mu=9.48, sigma=2.46)
        sample = truth.sample(rng, 20_000)
        fitted = fit_lognormal(sample)
        assert fitted.mu == pytest.approx(9.48, abs=0.05)
        assert fitted.sigma == pytest.approx(2.46, abs=0.05)

    def test_ignores_non_positive_values(self):
        fitted = fit_lognormal([0.0, -5.0, np.e, np.e])
        assert fitted.mu == pytest.approx(1.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_lognormal([])

    def test_all_non_positive_rejected(self):
        with pytest.raises(ValueError):
            fit_lognormal([0.0, -1.0])


class TestFitPareto:
    def test_recovers_shape(self, rng):
        truth = ParetoDistribution(k=1.8, xm=100.0)
        sample = truth.sample(rng, 20_000)
        fitted = fit_pareto(sample, xm=100.0)
        assert fitted.k == pytest.approx(1.8, abs=0.1)
        assert fitted.xm == 100.0

    def test_xm_defaults_to_minimum(self, rng):
        truth = ParetoDistribution(k=2.0, xm=50.0)
        sample = truth.sample(rng, 5_000)
        fitted = fit_pareto(sample)
        assert fitted.xm == pytest.approx(sample.min())

    def test_rejects_xm_above_all_data(self):
        with pytest.raises(ValueError):
            fit_pareto([1.0, 2.0, 3.0], xm=10.0)


class TestFitHybrid:
    def test_splits_body_and_tail(self, rng):
        body = LognormalDistribution(mu=8.0, sigma=1.0).sample(rng, 9_000)
        tail = ParetoDistribution(k=1.2, xm=1e6).sample(rng, 1_000)
        sample = np.concatenate([body, tail])
        fitted = fit_hybrid_lognormal_pareto(sample, tail_threshold=1e6)
        assert fitted.body_fraction == pytest.approx(0.9, abs=0.02)
        assert fitted.body.mu == pytest.approx(8.0, abs=0.1)
        assert fitted.tail.k == pytest.approx(1.2, abs=0.15)

    def test_no_tail_observations_gets_default_tail(self, rng):
        sample = LognormalDistribution(mu=5.0, sigma=0.5).sample(rng, 2_000)
        fitted = fit_hybrid_lognormal_pareto(sample, tail_threshold=1e9)
        assert fitted.tail.xm == 1e9

    def test_all_tail_rejected(self):
        with pytest.raises(ValueError):
            fit_hybrid_lognormal_pareto([10.0, 20.0], tail_threshold=1.0)


class TestFitMixture:
    def test_recovers_bimodal_components(self, rng):
        truth = MixtureOfLognormals.from_parameters(
            weights=(0.7, 0.3), mus=(5.0, 12.0), sigmas=(0.8, 0.6)
        )
        sample = truth.sample(rng, 15_000)
        fitted = fit_mixture_of_lognormals(sample, n_components=2)
        mus = sorted(component.mu for component in fitted.components)
        assert mus[0] == pytest.approx(5.0, abs=0.3)
        assert mus[1] == pytest.approx(12.0, abs=0.3)
        assert sorted(fitted.weights)[1] == pytest.approx(0.7, abs=0.05)

    def test_single_component_reduces_to_lognormal(self, rng):
        sample = LognormalDistribution(mu=3.0, sigma=0.5).sample(rng, 5_000)
        fitted = fit_mixture_of_lognormals(sample, n_components=1)
        assert fitted.components[0].mu == pytest.approx(3.0, abs=0.1)

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            fit_mixture_of_lognormals([1.0], n_components=2)


class TestFitPoissonAndInversePolynomial:
    def test_poisson_mle_is_sample_mean(self, rng):
        sample = rng.poisson(6.49, size=30_000)
        fitted = fit_poisson(sample)
        assert fitted.lam == pytest.approx(6.49, abs=0.05)

    def test_poisson_offset_respected(self):
        fitted = fit_poisson([3, 4, 5], offset=3)
        assert fitted.offset == 3
        assert fitted.lam == pytest.approx(1.0)

    def test_poisson_offset_violation_rejected(self):
        with pytest.raises(ValueError):
            fit_poisson([0, 1, 2], offset=3)

    def test_inverse_polynomial_offset_recovery(self, rng):
        from repro.stats.distributions import InversePolynomialDistribution

        truth = InversePolynomialDistribution(degree=2.0, offset=2.36, max_value=256)
        sample = truth.sample(rng, 8_000)
        fitted = fit_inverse_polynomial(sample, degree=2.0, max_value=256)
        assert fitted.offset == pytest.approx(2.36, abs=0.6)

    def test_inverse_polynomial_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_inverse_polynomial([])


class TestModelSelection:
    def test_selects_lognormal_for_lognormal_data(self, rng):
        sample = LognormalDistribution(mu=4.0, sigma=0.8).sample(rng, 4_000)
        best = fit_best_model(sample, candidates=("lognormal", "pareto"))
        assert best.distribution.name == "lognormal"
        assert best.ks_statistic < 0.05

    def test_selects_pareto_for_pareto_data(self, rng):
        sample = ParetoDistribution(k=1.1, xm=10.0).sample(rng, 4_000)
        best = fit_best_model(sample, candidates=("lognormal", "pareto"))
        assert best.distribution.name == "pareto"

    def test_unknown_candidate_rejected(self, rng):
        sample = LognormalDistribution(mu=1.0, sigma=1.0).sample(rng, 100)
        with pytest.raises(ValueError):
            fit_best_model(sample, candidates=("nonsense",))

    def test_hybrid_requires_threshold(self, rng):
        sample = LognormalDistribution(mu=1.0, sigma=1.0).sample(rng, 200)
        with pytest.raises(ValueError):
            fit_best_model(sample, candidates=("hybrid",))

    def test_describe_mentions_statistic(self, rng):
        sample = LognormalDistribution(mu=2.0, sigma=0.5).sample(rng, 500)
        best = fit_best_model(sample, candidates=("lognormal",))
        assert "K-S" in best.describe()
