"""Sink crash consistency: ENOSPC/EIO mid-run leaves no partial artifact."""

from __future__ import annotations

import os

import pytest

from repro.faults import FaultPlan, FaultSpec, InjectedCrash, use
from repro.materialize import (
    DirectorySink,
    SinkWriteError,
    SparseTarSink,
    TarSink,
    materialize_image,
)


def enospc_at(point: str, occurrence: int = 1) -> FaultPlan:
    return FaultPlan(specs=(FaultSpec(point=point, kind="enospc", occurrence=occurrence),))


class TestFinalizeEnospc:
    """Satellite: disk-full during finalize must abort clean, typed, total."""

    def test_tar_sink_removes_partial_archive(self, small_image, tmp_path):
        archive = str(tmp_path / "image.tar")
        with use(enospc_at("sink.finalize")):
            with pytest.raises(SinkWriteError) as excinfo:
                materialize_image(small_image, TarSink(archive))
        assert excinfo.value.sink == "tar"
        assert excinfo.value.phase == "finalize"
        assert isinstance(excinfo.value.__cause__, OSError)
        assert not os.path.exists(archive)

    def test_sparse_tar_sink_removes_partial_archive(self, small_image, tmp_path):
        archive = str(tmp_path / "image.sparse.tar")
        with use(enospc_at("sink.finalize")):
            with pytest.raises(SinkWriteError) as excinfo:
                materialize_image(small_image, SparseTarSink(archive))
        assert excinfo.value.sink == "sparse-tar"
        assert not os.path.exists(archive)

    def test_directory_sink_removes_owned_partial_tree(self, small_image, tmp_path):
        root = str(tmp_path / "img")
        with use(enospc_at("sink.finalize")):
            with pytest.raises(SinkWriteError) as excinfo:
                materialize_image(small_image, DirectorySink(root))
        assert excinfo.value.sink == "dir"
        assert not os.path.exists(root)

    def test_directory_sink_preserves_preexisting_root(self, small_image, tmp_path):
        """Abort may only delete a tree this run created or found empty."""
        root = tmp_path / "existing"
        root.mkdir()
        sentinel = root / "keep-me.txt"
        sentinel.write_text("precious user data")
        with use(enospc_at("sink.finalize")):
            with pytest.raises(SinkWriteError):
                materialize_image(small_image, DirectorySink(str(root)))
        assert sentinel.read_text() == "precious user data"

    def test_recovery_after_fault_is_digest_identical(self, small_image, tmp_path):
        baseline = materialize_image(small_image, TarSink(str(tmp_path / "clean.tar")))
        archive = str(tmp_path / "faulted.tar")
        with use(enospc_at("sink.finalize")):
            with pytest.raises(SinkWriteError):
                materialize_image(small_image, TarSink(archive))
            # Same workspace, fresh run: the fault fired once; retry succeeds.
            result = materialize_image(small_image, TarSink(archive))
        assert result.content_digest == baseline.content_digest


class TestStreamingFaults:
    def test_eio_during_files_phase_is_typed_and_clean(self, small_image, tmp_path):
        archive = str(tmp_path / "image.tar")
        plan = FaultPlan(specs=(FaultSpec(point="sink.add_file", kind="eio", occurrence=3),))
        with use(plan):
            with pytest.raises(SinkWriteError) as excinfo:
                materialize_image(small_image, TarSink(archive))
        assert excinfo.value.phase == "files"
        assert not os.path.exists(archive)

    def test_injected_crash_propagates_without_abort(self, small_image, tmp_path):
        """A dead process cleans nothing up — the torn artifact must persist."""
        archive = str(tmp_path / "image.tar")
        plan = FaultPlan(specs=(FaultSpec(point="sink.add_file", kind="crash", occurrence=2),))
        with use(plan):
            with pytest.raises(InjectedCrash):
                materialize_image(small_image, TarSink(archive))
        assert os.path.exists(archive)  # torn state survives, as after a real crash
