"""Tests for the trace operation model and JSONL serialization."""

from __future__ import annotations

import pytest

from repro.trace.ops import (
    DATA_OP_KINDS,
    METADATA_OP_KINDS,
    OP_KINDS,
    Operation,
    OperationTrace,
    TraceFormatError,
)


class TestOperation:
    def test_kinds_partition(self):
        assert DATA_OP_KINDS | METADATA_OP_KINDS == frozenset(OP_KINDS)
        assert not DATA_OP_KINDS & METADATA_OP_KINDS

    def test_valid_operation(self):
        op = Operation(kind="write", path="/a", size=4096, append=True)
        assert op.is_data
        assert Operation(kind="stat", path="/a").is_data is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "chmod", "path": "/a"},
            {"kind": "read", "path": ""},
            {"kind": "read", "path": "/a", "size": -1},
            {"kind": "read", "path": "/a", "batch": -1},
            {"kind": "rename", "path": "/a"},
            {"kind": "read", "path": "/a", "dest": "/b"},
            {"kind": "read", "path": "/a", "append": True},
        ],
    )
    def test_invalid_operations_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Operation(**kwargs)

    def test_json_line_roundtrip(self):
        ops = [
            Operation(kind="create", path="/x", size=100),
            Operation(kind="rename", path="/x", dest="/y", batch=3),
            Operation(kind="write", path="/y", size=10, append=True),
            Operation(kind="stat", path="/y"),
        ]
        for op in ops:
            assert Operation.from_json_line(op.to_json_line()) == op

    def test_json_line_omits_defaults(self):
        line = Operation(kind="stat", path="/a").to_json_line()
        assert "size" not in line and "dest" not in line and "batch" not in line

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1,2]",
            '{"path": "/a"}',
            '{"op": "stat", "path": 5}',
            '{"op": 1, "path": "/a"}',
            '{"op": "rename", "path": "/a", "dest": 2}',
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(TraceFormatError):
            Operation.from_json_line(line)


class TestOperationTrace:
    def _sample(self) -> OperationTrace:
        trace = OperationTrace(metadata={"synthesizer": "test", "seed": 1})
        trace.add("mkdir", "/d")
        trace.add("create", "/d/a", size=8192)
        trace.add("read", "/d/a", size=8192, batch=1)
        trace.add("write", "/d/a", size=100, append=True, batch=1)
        trace.add("delete", "/d/a", batch=2)
        return trace

    def test_append_and_counts(self):
        trace = self._sample()
        assert len(trace) == 5
        assert trace.counts_by_kind() == {
            "mkdir": 1,
            "create": 1,
            "read": 1,
            "write": 1,
            "delete": 1,
        }
        assert trace.bytes_by_kind() == {"read": 8192, "write": 100}
        assert trace.num_batches() == 3

    def test_jsonl_roundtrip_preserves_everything(self):
        trace = self._sample()
        restored = OperationTrace.from_jsonl(trace.to_jsonl())
        assert restored == trace
        assert restored.metadata == {"synthesizer": "test", "seed": 1}

    def test_jsonl_is_canonical(self):
        trace = self._sample()
        assert trace.to_jsonl() == OperationTrace.from_jsonl(trace.to_jsonl()).to_jsonl()

    def test_headerless_jsonl_accepted(self):
        body = '{"op":"stat","path":"/a"}\n{"op":"delete","path":"/a"}\n'
        trace = OperationTrace.from_jsonl(body)
        assert len(trace) == 2
        assert trace.metadata == {}

    def test_unsupported_version_rejected(self):
        with pytest.raises(TraceFormatError):
            OperationTrace.from_jsonl('{"impressions_trace":99,"metadata":{}}\n')

    def test_save_and_load(self, tmp_path):
        trace = self._sample()
        path = tmp_path / "trace.jsonl"
        trace.save(str(path))
        assert OperationTrace.load(str(path)) == trace

    def test_summary_shape(self):
        summary = self._sample().summary()
        assert summary["operations"] == 5
        assert summary["batches"] == 3
