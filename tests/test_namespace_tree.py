"""Unit tests for the in-memory file-system tree."""

from __future__ import annotations

import pytest

from repro.namespace.tree import FileSystemTree


@pytest.fixture
def sample_tree() -> FileSystemTree:
    r"""Small fixed tree::

        /
        ├── a/          (2 files)
        │   └── c/      (1 file)
        └── b/          (0 files)
    """
    tree = FileSystemTree()
    a = tree.create_directory(tree.root, name="a")
    b = tree.create_directory(tree.root, name="b")
    c = tree.create_directory(a, name="c")
    tree.create_file(a, size=100, extension="txt")
    tree.create_file(a, size=200, extension="jpg")
    tree.create_file(c, size=4000, extension="txt")
    assert b.file_count == 0
    return tree


class TestConstruction:
    def test_root_properties(self):
        tree = FileSystemTree()
        assert tree.root.depth == 0
        assert tree.root.parent is None
        assert tree.directory_count == 1
        assert tree.file_count == 0

    def test_create_directory_assigns_depth_and_parent(self, sample_tree):
        depths = {d.name: d.depth for d in sample_tree.directories}
        assert depths["a"] == 1
        assert depths["c"] == 2

    def test_create_file_assigns_ids_and_depth(self, sample_tree):
        files = sample_tree.files
        assert [f.file_id for f in files] == [0, 1, 2]
        assert files[2].depth == 3  # file inside /a/c

    def test_default_names_are_unique(self):
        tree = FileSystemTree()
        d = tree.create_directory(tree.root)
        names = {tree.create_file(d, size=1, extension="x").name for _ in range(50)}
        assert len(names) == 50

    def test_negative_file_size_rejected(self, sample_tree):
        with pytest.raises(ValueError):
            sample_tree.create_file(sample_tree.root, size=-1, extension="txt")

    def test_paths(self, sample_tree):
        paths = {f.extension: f.path() for f in sample_tree.files}
        assert paths["jpg"].startswith("/a/")
        directory_paths = {d.name: d.path() for d in sample_tree.directories if d.name}
        assert directory_paths["c"] == "/a/c"


class TestStatistics:
    def test_totals(self, sample_tree):
        assert sample_tree.file_count == 3
        assert sample_tree.directory_count == 4
        assert sample_tree.total_bytes == 4300
        assert sample_tree.max_depth() == 2

    def test_directories_by_depth(self, sample_tree):
        assert sample_tree.directories_by_depth() == {0: 1, 1: 2, 2: 1}

    def test_subdir_and_file_counts(self, sample_tree):
        assert sorted(sample_tree.directory_subdir_counts()) == [0, 0, 1, 2]
        assert sorted(sample_tree.directory_file_counts()) == [0, 0, 1, 2]

    def test_files_by_depth(self, sample_tree):
        assert sample_tree.files_by_depth() == {2: 2, 3: 1}

    def test_bytes_by_depth(self, sample_tree):
        assert sample_tree.bytes_by_depth() == {2: 300, 3: 4000}

    def test_mean_bytes_per_file_by_depth(self, sample_tree):
        means = sample_tree.mean_bytes_per_file_by_depth()
        assert means[2] == pytest.approx(150.0)
        assert means[3] == pytest.approx(4000.0)

    def test_extension_counts_and_bytes(self, sample_tree):
        assert sample_tree.extension_counts() == {"txt": 2, "jpg": 1}
        assert sample_tree.extension_bytes()["txt"] == 4100

    def test_extensionless_files_counted_as_null(self):
        tree = FileSystemTree()
        tree.create_file(tree.root, size=10, extension="")
        assert tree.extension_counts() == {"null": 1}

    def test_summary(self, sample_tree):
        summary = sample_tree.summary()
        assert summary["files"] == 3
        assert summary["mean_file_size"] == pytest.approx(4300 / 3)

    def test_directories_at_depth(self, sample_tree):
        assert {d.name for d in sample_tree.directories_at_depth(1)} == {"a", "b"}
        assert sample_tree.directories_at_depth(5) == []


class TestTraversal:
    def test_depth_first_preorder(self, sample_tree):
        names = [d.name for d in sample_tree.walk_depth_first()]
        assert names[0] == ""  # root first
        assert names.index("a") < names.index("c")  # parent before child

    def test_breadth_first_levels(self, sample_tree):
        names = [d.name for d in sample_tree.walk_breadth_first()]
        assert names.index("b") < names.index("c")

    def test_walk_visits_every_directory_once(self, sample_tree):
        visited = list(sample_tree.walk_depth_first())
        assert len(visited) == sample_tree.directory_count
        assert len(set(id(d) for d in visited)) == sample_tree.directory_count

    def test_iter_files_covers_all(self, sample_tree):
        assert len(list(sample_tree.iter_files())) == 3

    def test_find_files_predicate(self, sample_tree):
        big = sample_tree.find_files(lambda f: f.size > 1000)
        assert len(big) == 1
        assert big[0].extension == "txt"
