"""Stage-cache hardening: corruption quarantine and the circuit breaker."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.faults import FaultPlan, FaultSpec, quarantine_dir, seal, use
from repro.pipeline.cache import CacheCircuitBreaker, StageCache

FP = "ab" + "0" * 62  # a plausible 64-hex fingerprint


@pytest.fixture
def cache(tmp_path) -> StageCache:
    return StageCache(str(tmp_path / "stage-cache"))


class TestCorruptionHealing:
    def test_round_trip(self, cache):
        cache.store(FP, {"value": 7})
        assert cache.load(FP) == {"value": 7}
        assert cache.stats.as_dict()["evicted_corrupt"] == 0

    def test_bit_flip_quarantined_and_treated_as_miss(self, cache):
        cache.store(FP, {"value": 7})
        path = cache._path(FP)
        blob = bytearray(open(path, "rb").read())
        blob[4] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        assert cache.load(FP) is None
        assert cache.stats.evicted_corrupt == 1
        assert not os.path.exists(path)  # evicted...
        sidecar = quarantine_dir(cache.root)
        assert any(name.endswith(".bin") for name in os.listdir(sidecar))  # ...and kept
        # Self-heal: regeneration re-stores and the next load hits.
        cache.store(FP, {"value": 7})
        assert cache.load(FP) == {"value": 7}

    def test_truncated_entry_is_a_miss(self, cache):
        cache.store(FP, {"value": 7})
        path = cache._path(FP)
        with open(path, "wb") as handle:
            handle.write(b"\x80short")
        assert cache.load(FP) is None
        assert cache.stats.evicted_corrupt == 1

    def test_sealed_but_unpicklable_entry_quarantined(self, cache):
        path = cache._path(FP)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(seal(b"not a pickle"))
        assert cache.load(FP) is None
        assert cache.stats.evicted_corrupt == 1

    def test_sealed_wrong_object_quarantined(self, cache):
        path = cache._path(FP)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(seal(pickle.dumps(["not", "a", "dict"])))
        assert cache.load(FP) is None
        assert cache.stats.evicted_corrupt == 1

    def test_corruption_does_not_trip_the_breaker(self, cache):
        for index in range(5):
            fingerprint = f"{index:02x}" + "0" * 62
            cache.store(fingerprint, {"value": index})
            path = cache._path(fingerprint)
            with open(path, "wb") as handle:
                handle.write(b"garbage")
            assert cache.load(fingerprint) is None
        assert not cache.breaker.is_open()
        assert cache.stats.bypassed == 0


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CacheCircuitBreaker(failure_threshold=3, cooldown_seconds=60.0)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.is_open()
        assert breaker.times_opened == 1

    def test_success_resets_the_streak(self):
        breaker = CacheCircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False
        assert not breaker.is_open()

    def test_cooldown_closes_it(self):
        breaker = CacheCircuitBreaker(failure_threshold=1, cooldown_seconds=0.0)
        breaker.record_failure()
        assert not breaker.is_open()  # zero cooldown: already elapsed
        assert breaker.consecutive_failures == 0

    def test_store_io_errors_open_breaker_and_bypass(self, cache):
        cache.breaker.failure_threshold = 2
        plan = FaultPlan(
            specs=tuple(
                FaultSpec(point="cache.entry.write", kind="enospc", occurrence=n)
                for n in (1, 2)
            )
        )
        with use(plan):
            cache.store(FP, {"value": 1})  # ENOSPC, swallowed
            cache.store(FP, {"value": 1})  # ENOSPC -> breaker opens
        assert cache.stats.io_errors == 2
        assert cache.breaker.is_open()
        cache.store(FP, {"value": 1})
        assert cache.load(FP) is None
        assert cache.stats.bypassed == 2  # one skipped store, one bypass miss

    def test_read_io_errors_count_without_failing_the_run(self, cache):
        cache.store(FP, {"value": 1})
        plan = FaultPlan(specs=(FaultSpec(point="cache.entry.read", kind="eio"),))
        with use(plan):
            assert cache.load(FP) is None  # EIO -> miss, not an exception
        assert cache.stats.io_errors == 1
        assert cache.load(FP) == {"value": 1}  # disk recovered: entry intact
