"""The ``impressions materialize`` subcommand."""

from __future__ import annotations

import json
import os
import tarfile

import pytest

from repro.core.cli import main


BASE = ["--files", "40", "--dirs", "10", "--seed", "13", "--size-bytes", str(2 << 20)]


class TestMaterializeCli:
    def test_dir_sink(self, tmp_path, capsys):
        target = str(tmp_path / "img")
        code = main(["materialize", *BASE, "--sink", "dir", "--out", target, "--quiet"])
        assert code == 0
        assert os.path.isdir(target)
        out = capsys.readouterr().out
        assert "materialized 40 files" in out
        assert "via dir sink" in out

    def test_null_sink_with_verify(self, capsys):
        code = main(["materialize", *BASE, "--sink", "null", "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "round-trip verification (image): PASSED" in out
        assert "content digest:" in out

    def test_dir_sink_verify_imported(self, tmp_path, capsys):
        target = str(tmp_path / "img")
        code = main(
            ["materialize", *BASE, "--sink", "dir", "--out", target, "--verify", "--quiet"]
        )
        assert code == 0
        assert "round-trip verification (imported): PASSED" in capsys.readouterr().out

    def test_tar_sink_json(self, tmp_path, capsys):
        archive = str(tmp_path / "img.tar.gz")
        code = main(
            ["materialize", *BASE, "--sink", "tar", "--out", archive, "--order", "extent", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["sink"] == "tar"
        assert payload["result"]["order"] == "extent"
        assert payload["result"]["files"] == 40
        assert payload["result"]["extras"]["archive_sha256"]
        with tarfile.open(archive) as tar:
            assert len([m for m in tar.getmembers() if m.isfile()]) == 40

    def test_manifest_sink(self, tmp_path):
        manifest = str(tmp_path / "img.jsonl")
        assert main(["materialize", *BASE, "--sink", "manifest", "--out", manifest, "--quiet"]) == 0
        with open(manifest, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["kind"] == "impressions-manifest"
        assert header["files"] == 40

    def test_out_required_for_non_null(self, capsys):
        with pytest.raises(SystemExit):
            main(["materialize", *BASE, "--sink", "tar"])

    def test_jobs_and_content(self, tmp_path, capsys):
        target = str(tmp_path / "img")
        code = main(
            ["materialize", *BASE, "--content", "hybrid", "--sink", "dir",
             "--out", target, "--jobs", "2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["write_content"] is True
        assert payload["result"]["extras"]["jobs"] == 2

    def test_no_content_flag(self, tmp_path, capsys):
        code = main(
            ["materialize", *BASE, "--content", "hybrid", "--sink", "null",
             "--no-content", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["write_content"] is False

    def test_digest_deterministic_across_runs(self, capsys):
        digests = []
        for _ in range(2):
            assert main(["materialize", *BASE, "--sink", "null", "--json"]) == 0
            digests.append(json.loads(capsys.readouterr().out)["result"]["content_digest"])
        assert digests[0] == digests[1]
