"""Observability wired through the CLIs: --obs-dir, obs verbs, heartbeats."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign.runner import HeartbeatEvent, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.core.cli import main as impressions_main
from repro.obs.cli import main as obs_main
from repro.obs.export import read_events_jsonl
from repro.pipeline.cli import main as pipeline_main

GENERATE_ARGS = ["--files", "80", "--dirs", "12", "--seed", "3"]


@pytest.fixture(scope="module")
def generate_run(tmp_path_factory):
    """One generate run with --obs-dir --json; returns (obs_dir, payload)."""
    tmp = tmp_path_factory.mktemp("obs-cli")
    obs_dir = str(tmp / "obs")
    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = impressions_main(GENERATE_ARGS + ["--json", "--obs-dir", obs_dir])
    assert code == 0
    return obs_dir, json.loads(stdout.getvalue())


class TestGenerateObsDir:
    def test_artifacts_written(self, generate_run):
        obs_dir, payload = generate_run
        artifacts = payload["obs"]["artifacts"]
        assert set(artifacts) == {"events", "chrome_trace", "prometheus", "summary"}
        for path in artifacts.values():
            assert os.path.getsize(path) > 0

    def test_chrome_trace_loads_with_stage_spans(self, generate_run):
        obs_dir, _ = generate_run
        with open(os.path.join(obs_dir, "trace.json"), encoding="utf-8") as handle:
            document = json.load(handle)
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert "pipeline" in names
        assert "directory_structure" in names

    def test_prometheus_gauges_match_report(self, generate_run):
        obs_dir, payload = generate_run
        summary = payload["summary"]
        with open(os.path.join(obs_dir, "metrics.prom"), encoding="utf-8") as handle:
            prom = {
                line.rsplit(" ", 1)[0]: float(line.rsplit(" ", 1)[1])
                for line in handle
                if line.strip() and not line.startswith("#") and "+Inf" not in line
            }
        assert prom["image_files"] == summary["files"]
        assert prom["image_directories"] == summary["directories"]
        assert prom["image_bytes"] == summary["total_bytes"]
        assert prom["image_layout_score"] == pytest.approx(summary["layout_score"])

    def test_report_carries_telemetry_section(self, generate_run):
        _, payload = generate_run
        telemetry = payload["report"]["telemetry"]
        assert telemetry["spans"]["pipeline"]["count"] == 1
        assert "image_files" in telemetry["metrics"]


class TestObsVerbs:
    def test_summarize_json(self, generate_run, capsys):
        obs_dir, _ = generate_run
        assert obs_main(["summarize", obs_dir, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["spans"]["pipeline"]["count"] == 1

    def test_summarize_text(self, generate_run, capsys):
        obs_dir, _ = generate_run
        assert obs_main(["summarize", obs_dir]) == 0
        assert "telemetry summary" in capsys.readouterr().out

    def test_export_chrome(self, generate_run, capsys, tmp_path):
        obs_dir, _ = generate_run
        out = str(tmp_path / "re-exported.json")
        assert obs_main(["export", obs_dir, "--format", "chrome", "--out", out]) == 0
        with open(out, encoding="utf-8") as handle:
            assert "traceEvents" in json.load(handle)

    def test_export_prom_to_stdout(self, generate_run, capsys):
        obs_dir, _ = generate_run
        assert obs_main(["export", obs_dir, "--format", "prom"]) == 0
        assert "# TYPE pipeline_stages_total counter" in capsys.readouterr().out

    def test_export_jsonl_round_trips(self, generate_run, tmp_path):
        obs_dir, _ = generate_run
        out = str(tmp_path / "events-copy.jsonl")
        assert obs_main(["export", obs_dir, "--out", out]) == 0
        original = read_events_jsonl(obs_dir)
        assert read_events_jsonl(out).to_events() == original.to_events()

    def test_compare_identical_runs_passes(self, generate_run, capsys):
        obs_dir, _ = generate_run
        assert obs_main(["compare", obs_dir, obs_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["regressions"] == []

    def test_missing_path_exits_2(self, capsys, tmp_path):
        assert obs_main(["summarize", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestPipelineInspectCache:
    def test_cache_section_cold_and_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = GENERATE_ARGS + ["--cache-dir", cache_dir]

        assert pipeline_main(["inspect"] + args + ["--json"]) == 0
        cold = json.loads(capsys.readouterr().out)["cache"]
        assert cold["entries"] == 0
        assert cold["resume_from"] is None
        assert cold["stages_restored_on_run"] == 0
        assert cold["predicted_stats"]["hits"] == 0
        assert cold["predicted_stats"]["stores"] == cold["stages_executed_on_run"]

        assert impressions_main(args + ["--quiet"]) == 0
        capsys.readouterr()

        assert pipeline_main(["inspect"] + args + ["--json"]) == 0
        warm = json.loads(capsys.readouterr().out)["cache"]
        assert warm["entries"] > 0
        assert warm["resume_from"] == warm["cached_stages"][-1]
        assert warm["stages_executed_on_run"] == 0
        assert warm["predicted_stats"] == {
            "hits": 1,
            "misses": 0,
            "restored_stages": warm["stages_restored_on_run"],
            "stores": 0,
        }

    def test_no_cache_dir_no_section(self, capsys):
        assert pipeline_main(["inspect"] + GENERATE_ARGS + ["--json"]) == 0
        assert "cache" not in json.loads(capsys.readouterr().out)


CAMPAIGN_DOC = {
    "name": "obs-cli",
    "base": {"num_directories": 10, "fs_size_bytes": 24 * 1024 * 1024},
    "sweep": {"num_files": [40, 60]},
    "steps": [{"step": "summary"}, {"step": "trace_replay", "kind": "zipf", "ops": 200}],
}


class TestCampaignObservability:
    def test_heartbeat_events_and_telemetry_merge(self, tmp_path):
        from repro.obs.core import Telemetry

        spec = CampaignSpec.from_dict(CAMPAIGN_DOC)
        beats: list[HeartbeatEvent] = []
        tele = Telemetry(run_id="campaign-test")
        result = run_campaign(
            spec,
            str(tmp_path / "store.jsonl"),
            workers=1,
            telemetry=tele,
            heartbeat=beats.append,
            heartbeat_interval=0.05,
        )
        assert len(result.executed) == 2
        assert beats
        final = beats[-1]
        assert (final.done, final.total) == (2, 2)
        assert final.rate_per_second > 0
        assert "2/2 scenarios (100%)" in final.render()
        # Worker telemetry merged: one scenario span each, replay histograms.
        scenario_spans = [s for s in tele.spans if s.name == "scenario"]
        assert len(scenario_spans) == 2
        hist = tele.snapshot()["metrics"]["replay_op_latency_ms"]
        assert sum(series["count"] for series in hist["series"]) > 0

    def test_store_rows_free_of_telemetry_key(self, tmp_path):
        from repro.campaign.runner import TELEMETRY_KEY
        from repro.campaign.store import ResultStore
        from repro.obs.core import Telemetry

        spec = CampaignSpec.from_dict(CAMPAIGN_DOC)
        store_path = str(tmp_path / "store.jsonl")
        run_campaign(spec, store_path, workers=1, telemetry=Telemetry(run_id="x"))
        for row in ResultStore(store_path).latest_rows().values():
            assert TELEMETRY_KEY not in row

    def test_cli_json_mode_heartbeats_on_stderr(self, tmp_path, capsys):
        from repro.campaign.cli import main as campaign_main

        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(CAMPAIGN_DOC, handle)
        obs_dir = str(tmp_path / "obs")
        code = campaign_main(
            [
                "run",
                spec_path,
                "--store",
                str(tmp_path / "store.jsonl"),
                "--json",
                "--obs-dir",
                obs_dir,
                "--heartbeat-interval",
                "0.05",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        # stdout is exactly one machine-readable JSON document...
        payload = json.loads(captured.out)
        assert payload["obs"]["dir"] == obs_dir
        # ...and live progress went to stderr.
        assert "[obs-cli]" in captured.err
        assert "2/2 scenarios (100%)" in captured.err
        assert os.path.getsize(os.path.join(obs_dir, "events.jsonl")) > 0

    def test_cli_compare_obs(self, tmp_path, capsys):
        from repro.campaign.cli import main as campaign_main

        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(CAMPAIGN_DOC, handle)
        obs_dir = str(tmp_path / "obs")
        campaign_main(
            ["run", spec_path, "--store", str(tmp_path / "s.jsonl"),
             "--quiet", "--obs-dir", obs_dir]
        )
        capsys.readouterr()
        code = campaign_main(
            ["compare", obs_dir, obs_dir, "--obs", "--tolerance", "0.5", "--json"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert json.loads(captured.out)["failed"] is False


class TestTraceAndMaterializeObsDir:
    def test_trace_replay_obs_dir(self, tmp_path, capsys):
        from repro.trace.cli import main as trace_main
        from repro.trace.synthesize import ZipfMixSpec, synthesize_zipf_mix
        from repro.core.config import ImpressionsConfig
        from repro.core.impressions import Impressions

        config = ImpressionsConfig(
            num_files=80, num_directories=12, fs_size_bytes=24 * 1024 * 1024, seed=3
        )
        image = Impressions(config).generate()
        trace = synthesize_zipf_mix(image, ZipfMixSpec(num_ops=200), seed=1)
        trace_path = str(tmp_path / "trace.jsonl")
        trace.save(trace_path)
        obs_dir = str(tmp_path / "obs")
        code = trace_main(
            ["replay", "--trace", trace_path, "--files", "80", "--dirs", "12",
             "--image-seed", "3", "--quiet", "--obs-dir", obs_dir]
        )
        assert code == 0
        telemetry = read_events_jsonl(obs_dir)
        snapshot = telemetry.snapshot()
        assert "replay_op_latency_ms" in snapshot["metrics"]
        assert any(span.name == "trace_replay" for span in telemetry.spans)

    def test_materialize_obs_dir(self, tmp_path, capsys):
        from repro.materialize.cli import main as materialize_main

        obs_dir = str(tmp_path / "obs")
        code = materialize_main(
            ["--files", "60", "--dirs", "10", "--seed", "3", "--sink", "null",
             "--json", "--obs-dir", obs_dir]
        )
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert set(payload["obs"]["artifacts"]) == {
            "events", "chrome_trace", "prometheus", "summary"
        }
        telemetry = read_events_jsonl(obs_dir)
        names = {span.name for span in telemetry.spans}
        assert "materialize" in names
        assert "materialize.files" in names
        totals = telemetry.snapshot()["metrics"]["materialize_entries_total"]
        by_kind = {
            series["labels"]["kind"]: series["value"] for series in totals["series"]
        }
        assert by_kind["file"] == payload["result"]["files"]
