"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints.subset_sum import solve_fixed_size_subset_sum
from repro.layout.disk import SimulatedDisk
from repro.layout.layout_score import file_layout_score, layout_score_from_blockmaps
from repro.stats.distributions import LognormalDistribution, ParetoDistribution
from repro.stats.goodness_of_fit import mdcc_from_fractions
from repro.stats.histograms import PowerOfTwoHistogram
from repro.stats.interpolation import BinnedDistribution, PiecewiseInterpolator
from repro.stats.montecarlo import DynamicWeightedSampler
from repro.workloads.cache import BufferCache

_settings = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --- Histograms -----------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1e12, allow_nan=False), min_size=1, max_size=200))
@_settings
def test_histogram_conserves_counts_and_bytes(values):
    hist = PowerOfTwoHistogram.from_values(values)
    assert hist.total_count == len(values)
    # Summation order differs between the binned totals and np.sum, so compare
    # with a relative tolerance.
    assert hist.total_bytes == pytest.approx(np.sum(values), rel=1e-9, abs=1e-6)
    assert abs(hist.count_fractions().sum() - 1.0) < 1e-9


@given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=100))
@_settings
def test_histogram_cumulative_is_monotone(values):
    hist = PowerOfTwoHistogram.from_values(values)
    cumulative = hist.cumulative_count_fractions()
    assert np.all(np.diff(cumulative) >= -1e-12)


# --- MDCC ------------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=2, max_size=50),
    st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=2, max_size=50),
)
@_settings
def test_mdcc_from_fractions_is_bounded_and_symmetric(a, b):
    size = min(len(a), len(b))
    a, b = a[:size], b[:size]
    if sum(a) == 0 or sum(b) == 0:
        return
    forward = mdcc_from_fractions(a, b)
    backward = mdcc_from_fractions(b, a)
    assert 0.0 <= forward <= 1.0 + 1e-9
    assert abs(forward - backward) < 1e-9


@given(st.lists(st.floats(min_value=1e-6, max_value=1e6), min_size=2, max_size=50))
@_settings
def test_mdcc_identity_is_zero(fractions):
    assert mdcc_from_fractions(fractions, fractions) < 1e-12


# --- Distributions -----------------------------------------------------------------


@given(
    st.floats(min_value=-2, max_value=12),
    st.floats(min_value=0.1, max_value=3.0),
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@_settings
def test_lognormal_samples_are_positive_and_cdf_bounded(mu, sigma, size, seed):
    dist = LognormalDistribution(mu=mu, sigma=sigma)
    sample = dist.sample(np.random.default_rng(seed), size)
    assert np.all(sample > 0)
    cdf = dist.cdf(sample)
    assert np.all((cdf >= 0) & (cdf <= 1))


@given(
    st.floats(min_value=0.2, max_value=5.0),
    st.floats(min_value=1.0, max_value=1e9),
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@_settings
def test_pareto_samples_respect_support(k, xm, size, seed):
    dist = ParetoDistribution(k=k, xm=xm)
    sample = dist.sample(np.random.default_rng(seed), size)
    assert np.all(sample >= xm)


# --- Subset sum ----------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=1.0, max_value=1e6, allow_nan=False), min_size=2, max_size=120),
    st.data(),
)
@_settings
def test_subset_sum_cardinality_and_membership(values, data):
    subset_size = data.draw(st.integers(min_value=1, max_value=len(values)))
    target = data.draw(st.floats(min_value=1.0, max_value=float(np.sum(values))))
    solution = solve_fixed_size_subset_sum(
        np.asarray(values), subset_size, target, np.random.default_rng(0)
    )
    assert solution.size == subset_size
    assert len(set(solution.indices.tolist())) == subset_size
    assert np.isclose(solution.achieved_sum, np.asarray(values)[solution.indices].sum())


# --- Layout score -----------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=200, unique=True))
@_settings
def test_file_layout_score_bounds(blocks):
    score = file_layout_score(blocks)
    assert 0.0 <= score <= 1.0
    if len(blocks) <= 1:
        assert score == 1.0


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=5_000), min_size=0, max_size=50, unique=True),
        min_size=0,
        max_size=20,
    )
)
@_settings
def test_aggregate_layout_score_bounds(blockmaps):
    assert 0.0 <= layout_score_from_blockmaps(blockmaps) <= 1.0


# --- Simulated disk -----------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=64 * 4096), min_size=1, max_size=40),
    st.data(),
)
@_settings
def test_disk_allocation_conserves_blocks(sizes, data):
    disk = SimulatedDisk(num_blocks=80 * 64)
    allocated: dict[str, int] = {}
    for index, size in enumerate(sizes):
        name = f"f{index}"
        needed = disk.blocks_needed(size)
        if needed > disk.free_blocks:
            continue
        blocks = disk.allocate(name, size)
        allocated[name] = len(blocks)
        assert len(blocks) == needed
        # Optionally delete a random earlier file.
        if allocated and data.draw(st.booleans()):
            victim = data.draw(st.sampled_from(sorted(allocated)))
            disk.delete(victim)
            del allocated[victim]
    assert disk.used_blocks == sum(allocated.values())
    assert disk.used_blocks + disk.free_blocks == disk.num_blocks
    # No two files share a block.
    seen: set[int] = set()
    for name in allocated:
        for block in disk.blocks_of(name):
            assert block not in seen
            seen.add(block)


# --- Dynamic weighted sampler ---------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=60),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@_settings
def test_dynamic_sampler_total_weight_invariant(weights, seed):
    sampler = DynamicWeightedSampler(weights)
    assert abs(sampler.total_weight - sum(weights)) < 1e-6
    if sum(weights) > 0:
        index = sampler.sample(np.random.default_rng(seed))
        assert 0 <= index < len(weights)
        assert sampler.weight(index) > 0


# --- Buffer cache --------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=1, max_value=500)),
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=100, max_value=2_000),
)
@_settings
def test_cache_never_exceeds_capacity(accesses, capacity):
    cache = BufferCache(capacity_bytes=capacity)
    for key, size in accesses:
        cache.access(f"k{key}", size)
        assert cache.used_bytes <= capacity
    assert cache.hits + cache.misses == len(accesses)


# --- Interpolation ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=10),
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=10),
    st.floats(min_value=1.1, max_value=9.9),
)
@_settings
def test_interpolation_output_is_a_distribution(fractions_a, fractions_b, target):
    size = min(len(fractions_a), len(fractions_b))
    fractions_a, fractions_b = fractions_a[:size], fractions_b[:size]
    if sum(fractions_a) == 0 or sum(fractions_b) == 0:
        return
    edges = np.asarray([0.0] + [float(2**i) for i in range(size)])
    curves = {
        1.0: BinnedDistribution(edges=edges, fractions=np.asarray(fractions_a)),
        10.0: BinnedDistribution(edges=edges, fractions=np.asarray(fractions_b)),
    }
    result = PiecewiseInterpolator(curves).interpolate(target)
    assert np.all(result.fractions >= 0)
    assert abs(result.fractions.sum() - 1.0) < 1e-9
