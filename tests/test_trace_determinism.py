"""Property-based determinism tests for the trace subsystem.

The reproducibility guarantee of the paper extends to traces: the same spec
and seed must yield a byte-identical JSONL trace, and replaying an identical
trace against an identical initial state must yield identical statistics.
These are hypothesis properties over the spec space, the dynamic counterpart
of the invariants in ``test_property_based.py``.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.trace.ops import OperationTrace
from repro.trace.replay import TraceReplayer
from repro.trace.synthesize import (
    ChurnSpec,
    MetadataStormSpec,
    ZipfMixSpec,
    synthesize_churn,
    synthesize_metadata_storm,
    synthesize_zipf_mix,
)

_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_churn_specs = st.builds(
    ChurnSpec,
    num_ops=st.integers(min_value=1, max_value=400),
    mean_file_size=st.integers(min_value=1, max_value=256 * 1024),
    delete_fraction=st.floats(min_value=0.0, max_value=0.9),
    access_fraction=st.floats(min_value=0.0, max_value=0.9),
    rename_fraction=st.floats(min_value=0.0, max_value=0.5),
    batch_size=st.integers(min_value=1, max_value=128),
)

_storm_specs = st.builds(
    MetadataStormSpec,
    num_dirs=st.integers(min_value=1, max_value=8),
    files_per_dir=st.integers(min_value=0, max_value=40),
    stat_passes=st.integers(min_value=0, max_value=3),
    teardown=st.booleans(),
    batch_size=st.integers(min_value=1, max_value=64),
)

_seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(spec=_churn_specs, seed=_seeds)
@_settings
def test_churn_trace_bytes_and_replay_stats_are_deterministic(spec, seed):
    first = synthesize_churn(spec, seed=seed)
    second = synthesize_churn(spec, seed=seed)
    assert first.to_jsonl() == second.to_jsonl()

    stats_a = TraceReplayer(disk_blocks=65_536).replay(first).as_dict()
    stats_b = TraceReplayer(disk_blocks=65_536).replay(second).as_dict()
    assert stats_a == stats_b


@given(spec=_storm_specs, seed=_seeds)
@_settings
def test_storm_trace_roundtrip_preserves_replay_stats(spec, seed):
    trace = synthesize_metadata_storm(spec, seed=seed)
    text = trace.to_jsonl()
    restored = OperationTrace.from_jsonl(text)
    assert restored == trace
    # Serialization is canonical: a round trip re-serializes identically.
    assert restored.to_jsonl() == text

    direct = TraceReplayer(disk_blocks=65_536).replay(trace).as_dict()
    roundtripped = TraceReplayer(disk_blocks=65_536).replay(restored).as_dict()
    assert direct == roundtripped


@given(
    num_ops=st.integers(min_value=1, max_value=300),
    zipf_s=st.floats(min_value=0.2, max_value=2.5),
    seed=_seeds,
)
@_settings
def test_zipf_trace_is_deterministic_over_one_image(small_image, num_ops, zipf_s, seed):
    spec = ZipfMixSpec(num_ops=num_ops, zipf_s=zipf_s, write_fraction=0.0)
    first = synthesize_zipf_mix(small_image, spec, seed=seed)
    second = synthesize_zipf_mix(small_image, spec, seed=seed)
    assert first.to_jsonl() == second.to_jsonl()


@given(spec=_churn_specs, seed=_seeds)
@_settings
def test_replayed_disk_state_is_deterministic(spec, seed):
    trace = synthesize_churn(spec, seed=seed)
    disk_a = TraceReplayer(disk_blocks=65_536)
    disk_b = TraceReplayer(disk_blocks=65_536)
    disk_a.replay(trace)
    disk_b.replay(trace)
    names_a = sorted(disk_a.disk.file_names())
    assert names_a == sorted(disk_b.disk.file_names())
    for name in names_a:
        assert disk_a.disk.blocks_of(name) == disk_b.disk.blocks_of(name)
