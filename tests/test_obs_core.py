"""Telemetry core: spans, metrics, snapshots, merge, context binding."""

from __future__ import annotations

import concurrent.futures
import pickle

import pytest

from repro.obs.core import (
    DEFAULT_LATENCY_BUCKETS_MS,
    EVENT_FORMAT_VERSION,
    Telemetry,
    TelemetryError,
    current,
    use,
)


class SteppingClock:
    """Deterministic clock: every call advances by a fixed step."""

    def __init__(self, step: float = 1.0, start: float = 0.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def fixed_telemetry(run_id: str = "test") -> Telemetry:
    return Telemetry(
        run_id,
        clock=SteppingClock(),
        cpu_clock=SteppingClock(0.5),
        wall_time=lambda: 1_000_000.0,
    )


class TestSpans:
    def test_nesting_parent_ids(self):
        tele = fixed_telemetry()
        with tele.span("outer") as outer:
            with tele.span("middle") as middle:
                with tele.span("inner") as inner:
                    pass
            with tele.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert sibling.parent_id == outer.span_id
        assert [span.name for span in tele.spans] == ["outer", "middle", "inner", "sibling"]

    def test_span_closed_on_exception_and_error_recorded(self):
        tele = fixed_telemetry()
        with pytest.raises(RuntimeError):
            with tele.span("outer"):
                with tele.span("failing"):
                    raise RuntimeError("boom")
        outer, failing = tele.spans
        assert failing.error == "RuntimeError"
        assert failing.end is not None and failing.cpu_end is not None
        # The outer span also closed (the exception propagated through it).
        assert outer.error == "RuntimeError"
        assert outer.end is not None
        # The stack unwound: a new span is a root again, not a child of the
        # crashed one.
        with tele.span("after") as after:
            pass
        assert after.parent_id is None

    def test_span_timing_from_injected_clock(self):
        tele = fixed_telemetry()
        with tele.span("timed") as span:
            pass
        # clock: epoch=0, span start=1, end=2 -> wall 1.0; cpu step 0.5.
        assert span.wall_seconds == pytest.approx(1.0)
        assert span.cpu_seconds == pytest.approx(0.5)

    def test_open_span_reports_zero_wall(self):
        tele = fixed_telemetry()
        ctx = tele.span("open")
        ctx.__enter__()
        assert tele.spans[0].wall_seconds == 0.0
        ctx.__exit__(None, None, None)
        assert tele.spans[0].wall_seconds > 0.0

    def test_labels_coerced_to_strings(self):
        tele = fixed_telemetry()
        with tele.span("s", stage=3, cached=True) as span:
            pass
        assert span.labels == {"stage": "3", "cached": "True"}


class TestMetrics:
    def test_counter_accumulates_per_series(self):
        tele = fixed_telemetry()
        ops = tele.counter("ops_total", "ops", labels=("kind",))
        ops.inc(kind="read")
        ops.inc(2, kind="read")
        ops.inc(5, kind="write")
        assert ops.value(kind="read") == 3
        assert ops.value(kind="write") == 5
        assert ops.total() == 8

    def test_counter_rejects_negative(self):
        tele = fixed_telemetry()
        with pytest.raises(TelemetryError):
            tele.counter("c").inc(-1)

    def test_gauge_takes_last_value(self):
        tele = fixed_telemetry()
        gauge = tele.gauge("depth")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value() == 2

    def test_histogram_observe_and_quantiles(self):
        tele = fixed_telemetry()
        hist = tele.histogram("lat_ms", buckets=(1.0, 10.0, 100.0), unit="ms")
        series = hist.labels()
        for value in (0.5, 0.5, 5.0, 50.0):
            series.observe(value)
        assert series.count == 4
        assert series.sum == pytest.approx(56.0)
        assert series.quantile(0.5) == 1.0  # two of four observations <= 1.0
        assert series.quantile(1.0) == 100.0

    def test_observe_many_matches_observe(self):
        values = [0.0005, 0.003, 0.4, 2.0, 80.0, 5000.0]
        tele = fixed_telemetry()
        one = tele.histogram("one").labels()
        many = tele.histogram("many").labels()
        for value in values:
            one.observe(value)
        many.observe_many(values)
        assert one.counts == many.counts
        assert one.sum == pytest.approx(many.sum)
        assert one.count == many.count

    def test_reregistration_returns_same_family(self):
        tele = fixed_telemetry()
        first = tele.counter("hits", labels=("stage",))
        second = tele.counter("hits", labels=("stage",))
        assert first is second

    def test_kind_clash_rejected(self):
        tele = fixed_telemetry()
        tele.counter("metric_x")
        with pytest.raises(TelemetryError):
            tele.gauge("metric_x")

    def test_label_mismatch_rejected(self):
        tele = fixed_telemetry()
        counter = tele.counter("labelled", labels=("a",))
        with pytest.raises(TelemetryError):
            counter.inc(b="nope")

    def test_invalid_names_rejected(self):
        tele = fixed_telemetry()
        with pytest.raises(TelemetryError):
            tele.counter("bad name")
        with pytest.raises(TelemetryError):
            tele.counter("ok", labels=("bad-label",))


class TestDeterministicEvents:
    def _record(self) -> Telemetry:
        tele = fixed_telemetry()
        with tele.span("pipeline", stages="2"):
            with tele.span("stage", stage="a"):
                pass
            with tele.span("stage", stage="b"):
                pass
        tele.counter("ops_total", "ops", labels=("kind",)).inc(3, kind="read")
        tele.gauge("files").set(42)
        tele.histogram("lat_ms", unit="ms").labels().observe_many([0.1, 0.2, 5.0])
        return tele

    def test_same_clock_same_events(self):
        events_a = self._record().to_events()
        events_b = self._record().to_events()
        assert events_a == events_b
        assert events_a[0]["type"] == "meta"
        assert events_a[0]["format"] == EVENT_FORMAT_VERSION

    def test_event_ordering(self):
        events = self._record().to_events()
        types = [event["type"] for event in events]
        # meta first, then all spans, then all metric series.
        assert types[0] == "meta"
        span_part = [t for t in types if t == "span"]
        metric_part = [t for t in types if t == "metric"]
        assert types == ["meta"] + span_part + metric_part
        metric_names = [e["name"] for e in events if e["type"] == "metric"]
        assert metric_names == sorted(metric_names)

    def test_events_round_trip(self):
        tele = self._record()
        rebuilt = Telemetry.from_events(tele.to_events())
        assert rebuilt.to_events()[1:] == tele.to_events()[1:]  # meta pid/epoch aside
        assert rebuilt.meta["run_id"] == "test"

    def test_unknown_format_rejected(self):
        events = self._record().to_events()
        events[0]["format"] = EVENT_FORMAT_VERSION + 1
        with pytest.raises(TelemetryError):
            Telemetry.from_events(events)


class TestSnapshotMerge:
    def test_snapshot_is_picklable(self):
        tele = fixed_telemetry()
        with tele.span("s"):
            pass
        tele.counter("c").inc()
        snapshot = tele.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_merge_semantics(self):
        parent = fixed_telemetry("parent")
        parent.counter("ops").inc(2)
        parent.gauge("files").set(10)
        parent.histogram("lat", buckets=(1.0, 10.0)).labels().observe_many([0.5, 5.0])

        child = fixed_telemetry("child")
        with child.span("worker"):
            pass
        child.counter("ops").inc(3)
        child.gauge("files").set(99)
        child.histogram("lat", buckets=(1.0, 10.0)).labels().observe_many([0.5, 50.0])

        parent.merge(child.snapshot())
        assert parent.counter("ops").value() == 5  # counters add
        assert parent.gauge("files").value() == 99  # gauges take incoming
        series = parent.histogram("lat", buckets=(1.0, 10.0)).labels()
        assert series.count == 4  # buckets add
        assert series.counts == [2, 1, 1]
        assert [span.name for span in parent.spans] == ["worker"]

    def test_merge_remaps_span_ids(self):
        parent = fixed_telemetry()
        with parent.span("local"):
            pass
        child = fixed_telemetry()
        with child.span("outer"):
            with child.span("inner"):
                pass
        parent.merge(child.snapshot())
        by_name = {span.name: span for span in parent.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        ids = [span.span_id for span in parent.spans]
        assert len(ids) == len(set(ids))

    def test_merge_extra_labels(self):
        parent = fixed_telemetry()
        child = fixed_telemetry()
        child.counter("ops", labels=("kind",)).inc(4, kind="read")
        parent.merge(child.snapshot(), extra_labels={"worker": 3})
        merged = parent.counter("ops", labels=("kind", "worker"))
        assert merged.value(kind="read", worker="3") == 4

    def test_merge_bucket_mismatch_rejected(self):
        parent = fixed_telemetry()
        parent.histogram("lat", buckets=(1.0, 10.0)).labels().observe(0.5)
        child = fixed_telemetry()
        child.histogram("lat", buckets=(1.0, 10.0, 100.0)).labels().observe(0.5)
        snapshot = child.snapshot()
        # Same declared buckets would be required; the family re-registers
        # with the child's buckets but the existing series has fewer counts.
        with pytest.raises(TelemetryError):
            parent.merge(snapshot)


def _worker_snapshot(args: tuple[int, list[float]]) -> dict:
    """Process-pool worker: observe a latency batch, return the snapshot."""
    worker_id, values = args
    tele = Telemetry(run_id=f"worker-{worker_id}")
    with tele.span("chunk", worker=str(worker_id)):
        tele.histogram(
            "replay_op_latency_ms", labels=("op_class",), unit="ms"
        ).labels(op_class="read").observe_many(values)
        tele.counter("ops_total").inc(len(values))
    return tele.snapshot()


class TestProcessPoolMerge:
    def test_histogram_merge_across_workers(self):
        batches = [
            (0, [0.004, 0.2, 1.5]),
            (1, [0.04, 30.0]),
            (2, [0.5, 0.6, 0.7, 2000.0]),
        ]
        with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
            snapshots = list(pool.map(_worker_snapshot, batches))

        parent = Telemetry(run_id="parent")
        for snapshot in snapshots:
            parent.merge(snapshot)

        all_values = [value for _, values in batches for value in values]
        series = parent.histogram(
            "replay_op_latency_ms", labels=("op_class",), unit="ms"
        ).labels(op_class="read")
        assert series.count == len(all_values)
        assert series.sum == pytest.approx(sum(all_values))
        # The merged distribution equals observing everything in one process.
        reference = Telemetry().histogram("ref").labels()
        reference.observe_many(all_values)
        assert series.counts == reference.counts
        assert parent.counter("ops_total").value() == len(all_values)
        # Worker spans kept their origin pid; at least one differs from ours.
        pids = {span.pid for span in parent.spans}
        assert len(pids) >= 1
        assert all(span.name == "chunk" for span in parent.spans)


class TestContextBinding:
    def test_use_binds_and_restores(self):
        assert current() is None
        tele = fixed_telemetry()
        with use(tele):
            assert current() is tele
            inner = fixed_telemetry()
            with use(inner):
                assert current() is inner
            assert current() is tele
        assert current() is None

    def test_use_none_disables(self):
        tele = fixed_telemetry()
        with use(tele):
            with use(None):
                assert current() is None
            assert current() is tele


class TestDefaults:
    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(DEFAULT_LATENCY_BUCKETS_MS)
        assert len(set(DEFAULT_LATENCY_BUCKETS_MS)) == len(DEFAULT_LATENCY_BUCKETS_MS)

    def test_bad_buckets_rejected(self):
        tele = Telemetry()
        with pytest.raises(TelemetryError):
            tele.histogram("h", buckets=())
        with pytest.raises(TelemetryError):
            tele.histogram("h2", buckets=(1.0, 1.0))
