"""Unit tests for snapshot records and merging."""

from __future__ import annotations

import pytest

from repro.dataset.snapshot import DirectoryRecord, FileRecord, FileSystemSnapshot, merge_snapshots


def _snapshot(hostname: str = "host-a") -> FileSystemSnapshot:
    snapshot = FileSystemSnapshot(hostname=hostname, capacity_bytes=1_000_000)
    snapshot.directories = [
        DirectoryRecord(directory_id=0, depth=0, subdirectory_count=2, file_count=1),
        DirectoryRecord(directory_id=1, depth=1, subdirectory_count=0, file_count=2),
        DirectoryRecord(directory_id=2, depth=1, subdirectory_count=0, file_count=0),
    ]
    snapshot.files = [
        FileRecord(size=100, depth=1, extension="txt", directory_id=0),
        FileRecord(size=2_000, depth=2, extension="jpg", directory_id=1),
        FileRecord(size=300, depth=2, extension="", directory_id=1),
    ]
    return snapshot


class TestRecords:
    def test_file_record_validation(self):
        with pytest.raises(ValueError):
            FileRecord(size=-1, depth=0, extension="a", directory_id=0)
        with pytest.raises(ValueError):
            FileRecord(size=1, depth=-1, extension="a", directory_id=0)

    def test_directory_record_validation(self):
        with pytest.raises(ValueError):
            DirectoryRecord(directory_id=0, depth=-1, subdirectory_count=0, file_count=0)
        with pytest.raises(ValueError):
            DirectoryRecord(directory_id=0, depth=0, subdirectory_count=-1, file_count=0)


class TestSnapshotAccessors:
    def test_counts_and_bytes(self):
        snapshot = _snapshot()
        assert snapshot.file_count == 3
        assert snapshot.directory_count == 3
        assert snapshot.used_bytes == 2_400

    def test_distribution_accessors(self):
        snapshot = _snapshot()
        assert snapshot.file_sizes() == [100, 2_000, 300]
        assert snapshot.file_depths() == [1, 2, 2]
        assert snapshot.directory_depths() == [0, 1, 1]
        assert snapshot.subdirectory_counts() == [2, 0, 0]
        assert snapshot.directory_file_counts() == [1, 2, 0]

    def test_extension_counts_use_null_bucket(self):
        counts = _snapshot().extension_counts()
        assert counts == {"txt": 1, "jpg": 1, "null": 1}

    def test_summary(self):
        summary = _snapshot().summary()
        assert summary["hostname"] == "host-a"
        assert summary["files"] == 3

    def test_iter_files(self):
        assert len(list(_snapshot().iter_files())) == 3


class TestMerge:
    def test_merge_combines_population(self):
        merged = merge_snapshots([_snapshot("a"), _snapshot("b")])
        assert merged.file_count == 6
        assert merged.directory_count == 6
        assert merged.capacity_bytes == 2_000_000

    def test_merge_remaps_directory_ids(self):
        merged = merge_snapshots([_snapshot("a"), _snapshot("b")])
        ids = [record.directory_id for record in merged.directories]
        assert len(set(ids)) == 6  # no collisions after remapping

    def test_merge_empty_iterable(self):
        merged = merge_snapshots([])
        assert merged.file_count == 0
        assert merged.capacity_bytes == 0
