"""CLI, self-check, and seeded-violation tests for ``impressions analyze``."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis import analyze
from repro.analysis.cli import main as analyze_main
from repro.core.cli import main as impressions_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


@pytest.fixture
def violating_tree(tmp_path):
    """A tiny tree with exactly one finding (builtin hash())."""
    (tmp_path / "mod.py").write_text("def f(v):\n    return hash(v)\n")
    return tmp_path


class TestCliBasics:
    def test_list_rules(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "knob-purity:" in out and "nondet-walk:" in out

    def test_new_findings_exit_one(self, violating_tree, capsys):
        code = analyze_main([str(violating_tree), "--root", str(violating_tree)])
        assert code == 1
        assert "nondet-hash" in capsys.readouterr().out

    def test_clean_tree_exit_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def f():\n    return 1\n")
        assert analyze_main([str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, violating_tree, capsys):
        code = analyze_main([str(violating_tree), "--rule", "bogus"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path):
        assert analyze_main([str(tmp_path / "nope")]) == 2

    def test_json_report_shape(self, violating_tree, capsys):
        code = analyze_main(
            [str(violating_tree), "--root", str(violating_tree), "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["new"] == 1
        assert payload["new"][0]["rule"] == "nondet-hash"
        assert payload["counts"] == {"nondet-hash": 1}

    def test_dispatch_through_impressions_entry_point(self, capsys):
        assert impressions_main(["analyze", "--list-rules"]) == 0
        assert "sqlite-tx:" in capsys.readouterr().out

    def test_obs_dir_exports_counters(self, violating_tree, tmp_path):
        obs_dir = tmp_path / "obs"
        code = analyze_main(
            [
                str(violating_tree / "mod.py"),
                "--root",
                str(violating_tree),
                "--obs-dir",
                str(obs_dir),
            ]
        )
        assert code == 1
        metrics = (obs_dir / "metrics.prom").read_text()
        assert "analysis_findings_total" in metrics


class TestBaselineWorkflow:
    def test_write_then_gate_then_stale(self, violating_tree, capsys):
        baseline = violating_tree / "baseline.json"
        args = [str(violating_tree / "mod.py"), "--root", str(violating_tree)]

        assert analyze_main([*args, "--baseline", str(baseline), "--write-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()

        # Same findings, now baselined: the gate passes.
        assert analyze_main([*args, "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

        # Fix the violation: the entry goes stale, still exit 0.
        (violating_tree / "mod.py").write_text("def f():\n    return 1\n")
        assert analyze_main([*args, "--baseline", str(baseline)]) == 0
        assert "stale baseline entries" in capsys.readouterr().out

        # A new violation is never absorbed by the old entry's key.
        (violating_tree / "mod.py").write_text(
            "import os\n\ndef f(p):\n    return list(os.listdir(p))\n"
        )
        assert analyze_main([*args, "--baseline", str(baseline)]) == 1

    def test_write_baseline_requires_baseline_path(self, violating_tree):
        with pytest.raises(SystemExit):
            analyze_main([str(violating_tree), "--write-baseline"])

    def test_corrupt_baseline_exits_two(self, violating_tree, capsys):
        baseline = violating_tree / "baseline.json"
        baseline.write_text("{not json")
        code = analyze_main(
            [
                str(violating_tree / "mod.py"),
                "--root",
                str(violating_tree),
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 2
        assert "bad baseline" in capsys.readouterr().err


class TestSelfCheck:
    """The shipped tree must be clean modulo the committed baseline."""

    def test_src_repro_is_clean_modulo_baseline(self):
        code = analyze_main(
            [
                str(SRC / "repro"),
                "--root",
                str(REPO_ROOT),
                "--baseline",
                str(REPO_ROOT / "analysis-baseline.json"),
            ]
        )
        assert code == 0

    def test_committed_baseline_is_small_and_current(self):
        payload = json.loads((REPO_ROOT / "analysis-baseline.json").read_text())
        assert payload["version"] == 1
        # The baseline is a ratchet: additions need a very good reason.
        assert len(payload["findings"]) <= 2


class TestSeededViolations:
    """The acceptance gates: detlint must catch deliberately planted bugs."""

    def test_undeclared_knob_read_in_generation_stage_is_caught(self, tmp_path):
        source = (SRC / "repro" / "pipeline" / "stages.py").read_text()
        anchor = "config = context.config\n"
        assert anchor in source
        planted = source.replace(
            anchor, anchor + "        _ = config.layout_score\n", 1
        )
        (tmp_path / "stages.py").write_text(planted)

        result = analyze([str(tmp_path)], rules=["knob-purity"], root=str(tmp_path))
        assert any(
            f.rule == "knob-purity" and "'layout_score'" in f.message
            for f in result.findings
        )

        # The unmodified stages module is knob-pure.
        (tmp_path / "stages.py").write_text(source)
        clean = analyze([str(tmp_path)], rules=["knob"], root=str(tmp_path))
        assert clean.findings == []

    def test_unsorted_walk_in_importer_is_caught(self, tmp_path):
        source = (SRC / "repro" / "dataset" / "importer.py").read_text()
        stripped = re.sub(r"[ ]+(directories|files)\.sort\(\)\n", "", source)
        assert stripped != source
        (tmp_path / "importer.py").write_text(stripped)

        result = analyze([str(tmp_path)], rules=["nondet-walk"], root=str(tmp_path))
        assert [f.rule for f in result.findings] == ["nondet-walk"]

        # The shipped importer passes.
        (tmp_path / "importer.py").write_text(source)
        clean = analyze([str(tmp_path)], rules=["nondet-walk"], root=str(tmp_path))
        assert clean.findings == []
