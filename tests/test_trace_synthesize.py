"""Tests for the trace synthesizers."""

from __future__ import annotations

import pytest

from repro.trace.ops import OperationTrace
from repro.trace.synthesize import (
    ChurnSpec,
    MetadataStormSpec,
    ZipfMixSpec,
    synthesize_churn,
    synthesize_metadata_storm,
    synthesize_zipf_mix,
)


class TestMetadataStorm:
    def test_storm_shape(self):
        spec = MetadataStormSpec(num_dirs=3, files_per_dir=5, stat_passes=2)
        trace = synthesize_metadata_storm(spec, seed=1)
        counts = trace.counts_by_kind()
        assert counts["mkdir"] == 3
        assert counts["create"] == 15
        assert counts["stat"] == 30
        # Teardown removes the 15 files and the 3 directories.
        assert counts["delete"] == 18
        assert trace.metadata["synthesizer"] == "metadata_storm"

    def test_no_teardown(self):
        spec = MetadataStormSpec(num_dirs=2, files_per_dir=2, stat_passes=0, teardown=False)
        trace = synthesize_metadata_storm(spec, seed=1)
        assert "delete" not in trace.counts_by_kind()

    def test_batches_assigned(self):
        spec = MetadataStormSpec(num_dirs=2, files_per_dir=100, batch_size=10)
        trace = synthesize_metadata_storm(spec, seed=1)
        assert trace.num_batches() == (len(trace) + 9) // 10

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            MetadataStormSpec(num_dirs=0)


class TestZipfMix:
    def test_targets_only_image_files(self, small_image):
        spec = ZipfMixSpec(num_ops=500)
        trace = synthesize_zipf_mix(small_image, spec, seed=3)
        paths = {node.path() for node in small_image.tree.files}
        assert len(trace) == 500
        assert all(op.path in paths for op in trace)

    def test_mix_respects_fractions(self, small_image):
        spec = ZipfMixSpec(num_ops=4000, read_fraction=1, write_fraction=0, stat_fraction=1)
        trace = synthesize_zipf_mix(small_image, spec, seed=3)
        counts = trace.counts_by_kind()
        assert "write" not in counts
        assert abs(counts["read"] - counts["stat"]) < 800

    def test_popularity_is_skewed(self, small_image):
        trace = synthesize_zipf_mix(small_image, ZipfMixSpec(num_ops=5000), seed=3)
        hits: dict[str, int] = {}
        for op in trace:
            hits[op.path] = hits.get(op.path, 0) + 1
        top = max(hits.values())
        # The hottest file should absorb far more than a uniform share.
        assert top > 5 * (5000 / small_image.file_count)

    def test_zipf_writes_are_in_place(self, small_image):
        trace = synthesize_zipf_mix(small_image, ZipfMixSpec(num_ops=1000), seed=3)
        assert all(not op.append for op in trace if op.kind == "write")

    def test_empty_image_rejected(self):
        from repro.core.image import FileSystemImage
        from repro.namespace.tree import FileSystemTree

        with pytest.raises(ValueError):
            synthesize_zipf_mix(FileSystemImage(tree=FileSystemTree()), ZipfMixSpec(), seed=0)

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            ZipfMixSpec(read_fraction=0, write_fraction=0, stat_fraction=0)


class TestChurn:
    def test_deletes_and_renames_target_live_files(self):
        spec = ChurnSpec(num_ops=2000, rename_fraction=0.1)
        trace = synthesize_churn(spec, seed=7)
        live: set[str] = set()
        for op in trace:
            if op.kind == "create":
                assert op.path not in live
                live.add(op.path)
            elif op.kind == "delete":
                assert op.path in live
                live.remove(op.path)
            elif op.kind == "rename":
                assert op.path in live and op.dest not in live
                live.remove(op.path)
                live.add(op.dest)
            else:
                assert op.path in live

    def test_churn_writes_append(self):
        trace = synthesize_churn(ChurnSpec(num_ops=1000), seed=7)
        writes = [op for op in trace if op.kind == "write"]
        assert writes and all(op.append for op in writes)

    def test_requested_length(self):
        assert len(synthesize_churn(ChurnSpec(num_ops=321), seed=0)) == 321

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            ChurnSpec(delete_fraction=1.5)


class TestDeterminism:
    def test_same_seed_same_bytes(self, small_image):
        spec = ZipfMixSpec(num_ops=300)
        a = synthesize_zipf_mix(small_image, spec, seed=9).to_jsonl()
        b = synthesize_zipf_mix(small_image, spec, seed=9).to_jsonl()
        assert a == b

    def test_different_seed_different_trace(self, small_image):
        spec = ZipfMixSpec(num_ops=300)
        a = synthesize_zipf_mix(small_image, spec, seed=9).to_jsonl()
        b = synthesize_zipf_mix(small_image, spec, seed=10).to_jsonl()
        assert a != b

    def test_churn_and_storm_deterministic(self):
        assert (
            synthesize_churn(ChurnSpec(num_ops=500), seed=4).to_jsonl()
            == synthesize_churn(ChurnSpec(num_ops=500), seed=4).to_jsonl()
        )
        spec = MetadataStormSpec(num_dirs=4, files_per_dir=10)
        assert (
            synthesize_metadata_storm(spec, seed=4).to_jsonl()
            == synthesize_metadata_storm(spec, seed=4).to_jsonl()
        )

    def test_metadata_records_spec(self):
        trace = synthesize_churn(ChurnSpec(num_ops=10), seed=2)
        assert trace.metadata["seed"] == 2
        assert trace.metadata["spec"]["num_ops"] == 10
        restored = OperationTrace.from_jsonl(trace.to_jsonl())
        assert restored.metadata == trace.metadata
