"""Unit tests for the detlint rule families, driven by fixture snippets."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze
from repro.analysis.baseline import Baseline, split_findings
from repro.analysis.core import AnalysisError, all_rule_names, resolve_rules
from repro.analysis.rules_knobs import config_method_knobs


def run_rules(tmp_path, source, rules=None, filename="snippet.py"):
    """Analyze one fixture snippet and return its (unsuppressed) findings."""
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source))
    result = analyze([str(path)], rules=rules, root=str(tmp_path))
    return result


CLEAN_STAGE = """
    from repro.pipeline.stage import Stage

    class GoodStage(Stage):
        name = "good"
        provides = ("x",)
        config_knobs = ("num_files", "seed")

        def run(self, context):
            config = context.config
            return {"x": config.num_files + context.config.seed}
"""

IMPURE_STAGE = """
    from repro.pipeline.stage import Stage

    class SneakyStage(Stage):
        name = "sneaky"
        provides = ("x",)
        config_knobs = ("num_files",)

        def run(self, context):
            config = context.config
            return {"x": config.num_files * config.layout_score}
"""

UNUSED_KNOB_STAGE = """
    from repro.pipeline.stage import Stage

    class PaddedStage(Stage):
        name = "padded"
        provides = ("x",)
        config_knobs = ("num_files", "beta")

        def run(self, context):
            return {"x": context.config.num_files}
"""

HELPER_READ_STAGE = """
    from repro.pipeline.stage import Stage

    def _pick(config):
        return config.block_size * 2

    class HelperStage(Stage):
        name = "helper"
        provides = ("x",)
        config_knobs = ("num_files",)

        def run(self, context):
            config = context.config
            return {"x": _pick(config) + config.num_files}
"""

CONTEXT_RNG_STAGE = """
    from repro.pipeline.stage import Stage

    class RngStage(Stage):
        name = "rng_user"
        provides = ("x",)
        config_knobs = ()

        def run(self, context):
            return {"x": context.rng.integers(10)}
"""

METHOD_CALL_STAGE = """
    from repro.pipeline.stage import Stage

    class ResolvedStage(Stage):
        name = "resolved"
        provides = ("x",)
        config_knobs = ("num_files", "fs_size_bytes", "use_simple_size_model", "seed")

        def run(self, context):
            config = context.config
            return {"x": config.resolved_num_files()}
"""


class TestKnobRules:
    def test_clean_stage_has_no_findings(self, tmp_path):
        result = run_rules(tmp_path, CLEAN_STAGE, rules=["knob"])
        assert result.findings == []

    def test_undeclared_read_is_cache_poisoning(self, tmp_path):
        result = run_rules(tmp_path, IMPURE_STAGE, rules=["knob-purity"])
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "knob-purity"
        assert "'layout_score'" in finding.message
        assert "SneakyStage" in finding.hint
        # The span points at the read, not the class statement.
        assert finding.line == 11

    def test_unused_declaration_is_false_cache_miss(self, tmp_path):
        result = run_rules(tmp_path, UNUSED_KNOB_STAGE, rules=["knob-unused"])
        assert [f.rule for f in result.findings] == ["knob-unused"]
        assert "'beta'" in result.findings[0].message

    def test_read_through_module_helper_is_charged(self, tmp_path):
        result = run_rules(tmp_path, HELPER_READ_STAGE, rules=["knob-purity"])
        assert ["block_size" in f.message for f in result.findings] == [True]

    def test_context_rng_aliases_seed(self, tmp_path):
        result = run_rules(tmp_path, CONTEXT_RNG_STAGE, rules=["knob-purity"])
        assert len(result.findings) == 1
        assert "'seed'" in result.findings[0].message

    def test_config_method_call_charges_transitive_knobs(self, tmp_path):
        result = run_rules(tmp_path, METHOD_CALL_STAGE, rules=["knob"])
        assert result.findings == []

    def test_config_method_map_matches_source(self):
        knobs = config_method_knobs()["resolved_num_files"]
        assert "num_files" in knobs
        assert "fs_size_bytes" in knobs


class TestNondetRules:
    def test_unsorted_walk_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            import os

            def crawl(root):
                out = []
                for current, dirs, files in os.walk(root):
                    out.extend(files)
                return out
            """,
            rules=["nondet-walk"],
        )
        assert [f.rule for f in result.findings] == ["nondet-walk"]

    def test_sorted_walk_clean(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            import os

            def crawl(root):
                out = []
                for current, dirs, files in os.walk(root):
                    dirs.sort()
                    files.sort()
                    out.extend(files)
                return out
            """,
            rules=["nondet-walk"],
        )
        assert result.findings == []

    def test_listdir_without_sorted_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            import os

            def entries(path):
                return [name for name in os.listdir(path)]
            """,
            rules=["nondet-listdir"],
        )
        assert [f.rule for f in result.findings] == ["nondet-listdir"]

    def test_listdir_sorted_or_size_only_clean(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            import os

            def entries(path):
                if not os.listdir(path):
                    return []
                return sorted(os.listdir(path))

            def count(path):
                return len(os.listdir(path))
            """,
            rules=["nondet-listdir"],
        )
        assert result.findings == []

    def test_glob_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            import glob

            def pys(root):
                return list(glob.glob(root + "/*.py"))
            """,
            rules=["nondet-glob"],
        )
        assert [f.rule for f in result.findings] == ["nondet-glob"]

    def test_set_iteration_flagged_membership_clean(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            def bad(items):
                seen = set(items)
                for entry in {1, 2, 3}:
                    yield entry
                return [x for x in set(items)]

            def good(items):
                seen = set(items)
                if 3 in seen:
                    return sorted(set(items))
                return None
            """,
            rules=["nondet-set-iter"],
        )
        assert len(result.findings) == 2

    def test_builtin_hash_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            def key(value):
                return hash(value) % 1024
            """,
            rules=["nondet-hash"],
        )
        assert [f.rule for f in result.findings] == ["nondet-hash"]

    def test_global_random_flagged_seeded_instances_clean(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            import random
            import numpy as np

            def bad():
                return random.random() + np.random.normal()

            def good(seed):
                rng = np.random.default_rng(seed)
                local = random.Random(seed)
                return rng.normal() + local.random()
            """,
            rules=["nondet-random"],
        )
        assert len(result.findings) == 2
        assert all(f.rule == "nondet-random" for f in result.findings)

    def test_wall_clock_into_fingerprint_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            import hashlib
            import time

            def fingerprint(spec):
                return hashlib.sha256(str(time.time()).encode()).hexdigest()

            def timestamp():
                return time.time()
            """,
            rules=["nondet-time"],
        )
        assert len(result.findings) == 1
        assert "time.time" in result.findings[0].message


FAULTY_PACKAGE_IMPORT = "from repro.faults import plan as fault_plan\n"


class TestExceptionRules:
    def test_bare_except_always_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            def risky():
                try:
                    return 1
                except:
                    return None
            """,
            rules=["bare-except"],
        )
        assert [f.rule for f in result.findings] == ["bare-except"]

    def test_broad_except_gated_on_fault_threaded_package(self, tmp_path):
        source = """
            def swallow():
                try:
                    return 1
                except Exception:
                    return None
            """
        clean = run_rules(tmp_path, source, rules=["broad-except"])
        assert clean.findings == []  # no fault machinery in this directory

        flagged = run_rules(
            tmp_path,
            FAULTY_PACKAGE_IMPORT + textwrap.dedent(source),
            rules=["broad-except"],
            filename="threaded.py",
        )
        assert [f.rule for f in flagged.findings] == ["broad-except"]

    def test_broad_except_with_reraise_clean(self, tmp_path):
        result = run_rules(
            tmp_path,
            FAULTY_PACKAGE_IMPORT
            + textwrap.dedent(
                """
                def cleanup_then_raise():
                    try:
                        return 1
                    except Exception:
                        print("cleanup")
                        raise
                """
            ),
            rules=["broad-except"],
        )
        assert result.findings == []

    def test_swallowed_crash_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            def eat_everything():
                try:
                    return 1
                except BaseException:
                    return None
            """,
            rules=["swallowed-crash"],
        )
        assert [f.rule for f in result.findings] == ["swallowed-crash"]

    def test_crash_propagating_earlier_handler_exempts(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            from repro.faults.plan import InjectedCrash

            def worker_loop():
                try:
                    return 1
                except (KeyboardInterrupt, InjectedCrash):
                    raise
                except BaseException:
                    return None
            """,
            rules=["swallowed-crash"],
        )
        assert result.findings == []


class TestDurabilityRules:
    def test_raw_write_flagged_in_atomic_importing_module(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            from repro.faults import atomic as fault_atomic

            def save(path, payload):
                with open(path, "wb") as handle:
                    handle.write(payload)

            def load(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """,
            rules=["raw-write"],
        )
        assert len(result.findings) == 1
        assert "'wb'" in result.findings[0].message

    def test_raw_write_ignored_without_atomic_import(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            def save(path, payload):
                with open(path, "wb") as handle:
                    handle.write(payload)
            """,
            rules=["raw-write"],
        )
        assert result.findings == []

    def test_deferred_begin_and_connection_mutation_flagged(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            import sqlite3

            class Store:
                def __init__(self, path):
                    self._conn = sqlite3.connect(path)

                def bad_tx(self):
                    self._conn.execute("BEGIN")

                def good_tx(self):
                    self._conn.execute("BEGIN IMMEDIATE")

                def bad_insert(self):
                    self._conn.execute("INSERT INTO t VALUES (1)")

                def cursor_insert(self, cursor):
                    cursor.execute("INSERT INTO t VALUES (1)")
            """,
            rules=["sqlite-tx"],
        )
        messages = sorted(f.message for f in result.findings)
        assert len(messages) == 2
        assert any("BEGIN" in message for message in messages)
        assert any("INSERT" in message for message in messages)


class TestPragmasAndBaseline:
    def test_pragma_on_line_and_line_above_suppresses(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            def one(value):
                return hash(value)  # detlint: ignore[nondet-hash] test fixture

            def two(value):
                # detlint: ignore[nondet-hash] test fixture
                return hash(value)

            def three(value):
                return hash(value)  # detlint: ignore[nondet-walk] wrong rule
            """,
            rules=["nondet-hash"],
        )
        assert len(result.findings) == 1
        assert len(result.suppressed) == 2

    def test_baseline_round_trip_and_split(self, tmp_path):
        result = run_rules(
            tmp_path,
            """
            def one(value):
                return hash(value)

            def two(value):
                return hash(value)
            """,
            rules=["nondet-hash"],
        )
        assert len(result.findings) == 2

        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(result.findings).save(baseline_path)
        loaded = Baseline.load(baseline_path)
        assert len(loaded) == 2

        split = split_findings(result.findings, loaded)
        assert split.new == [] and len(split.baselined) == 2 and split.stale == []

        # One finding fixed: its baseline entry goes stale, nothing fails.
        split = split_findings(result.findings[:1], loaded)
        assert split.new == [] and len(split.baselined) == 1 and len(split.stale) == 1

        # A brand-new finding is not absorbed by unrelated entries.
        split = split_findings(result.findings, Baseline())
        assert len(split.new) == 2

    def test_baseline_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestEngine:
    def test_rule_registry_is_complete(self):
        names = all_rule_names()
        assert set(names) >= {
            "knob-purity",
            "knob-unused",
            "nondet-walk",
            "nondet-listdir",
            "nondet-glob",
            "nondet-set-iter",
            "nondet-hash",
            "nondet-random",
            "nondet-time",
            "bare-except",
            "broad-except",
            "swallowed-crash",
            "raw-write",
            "sqlite-tx",
        }

    def test_family_prefix_selection(self):
        rules = resolve_rules(["nondet"])
        assert all(rule.name.startswith("nondet-") for rule in rules)
        assert len(rules) == 7

    def test_unknown_rule_raises(self):
        with pytest.raises(AnalysisError):
            resolve_rules(["no-such-rule"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            analyze([str(tmp_path / "missing")], root=str(tmp_path))

    def test_results_are_deterministically_ordered(self, tmp_path):
        for name in ("b.py", "a.py"):
            (tmp_path / name).write_text("def f(v):\n    return hash(v)\n")
        result = analyze([str(tmp_path)], rules=["nondet-hash"], root=str(tmp_path))
        assert [f.path for f in result.findings] == ["a.py", "b.py"]
