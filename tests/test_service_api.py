"""The HTTP control plane: routes, dedupe under concurrency, Prometheus text."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign.store import ResultStore
from repro.service.api import FarmService, metrics_telemetry, serve_forever
from repro.service.queue import JobQueue
from repro.service.worker import WorkerOptions, run_worker

SPEC_DOC = {
    "name": "api",
    "base": {"num_directories": 6, "fs_size_bytes": 8 * 1024 * 1024},
    "sweep": {"num_files": [30, 40], "seed": [1]},
    "steps": [{"step": "summary"}],
}


@pytest.fixture()
def farm(tmp_path):
    queue_path = str(tmp_path / "q.sqlite")
    store_path = str(tmp_path / "r.jsonl")
    queue = JobQueue(queue_path)
    service = FarmService(queue, store_path)
    with serve_forever(service) as (host, port):
        yield {
            "base": f"http://{host}:{port}",
            "queue": queue,
            "queue_path": queue_path,
            "store_path": store_path,
            "service": service,
        }
    queue.close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        body = response.read().decode("utf-8")
        return response.status, response.headers.get("Content-Type", ""), body


def _post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestRoutes:
    def test_healthz(self, farm):
        status, _, body = _get(f"{farm['base']}/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True, "draining": False}

    def test_submit_then_inspect_campaign_and_job(self, farm):
        status, submitted = _post_json(f"{farm['base']}/campaigns", SPEC_DOC)
        assert status == 201
        assert submitted["enqueued"] == 2
        _, _, body = _get(f"{farm['base']}/campaigns/{submitted['campaign']}")
        info = json.loads(body)
        assert info["state"] == "running"
        assert info["total"] == 2
        _, _, body = _get(f"{farm['base']}/jobs/1")
        job = json.loads(body)
        assert job["state"] == "pending"
        assert job["attempts"] == 0

    def test_envelope_submission_with_max_attempts(self, farm):
        _, submitted = _post_json(
            f"{farm['base']}/campaigns", {"spec": SPEC_DOC, "max_attempts": 7}
        )
        assert submitted["enqueued"] == 2
        _, _, body = _get(f"{farm['base']}/jobs/1")
        assert json.loads(body)["max_attempts"] == 7

    def test_queue_stats(self, farm):
        _post_json(f"{farm['base']}/campaigns", SPEC_DOC)
        _, _, body = _get(f"{farm['base']}/queue/stats")
        stats = json.loads(body)
        assert stats["depth"] == 2
        assert stats["jobs"]["pending"] == 2

    def test_unknown_resources_404(self, farm):
        for path in ("/nope", "/campaigns/c99", "/jobs/99"):
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(f"{farm['base']}{path}")
            assert info.value.code == 404

    def test_bad_spec_400_with_message(self, farm):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post_json(f"{farm['base']}/campaigns", {"name": "empty", "steps": []})
        assert info.value.code == 400
        assert "step" in json.loads(info.value.read().decode())["error"]

    def test_drain_closes_submissions(self, farm):
        status, result = _post_json(f"{farm['base']}/drain", {})
        assert status == 200
        assert result["draining"] is True
        with pytest.raises(urllib.error.HTTPError) as info:
            _post_json(f"{farm['base']}/campaigns", SPEC_DOC)
        assert info.value.code == 503


class TestConcurrentClients:
    def test_two_clients_same_spec_execute_each_scenario_once(self, farm):
        """The acceptance criterion: concurrent duplicate submissions dedupe."""
        barrier = threading.Barrier(2)
        results = []

        def client() -> None:
            barrier.wait()
            results.append(_post_json(f"{farm['base']}/campaigns", SPEC_DOC)[1])

        threads = [threading.Thread(target=client) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(result["enqueued"] for result in results) == 2
        assert sum(result["deduped"] for result in results) == 2
        # Both campaigns complete from the same two executions.
        worker = run_worker(
            WorkerOptions(
                queue_path=farm["queue_path"],
                store_path=farm["store_path"],
                drain=True,
                poll_interval=0.05,
            )
        )
        assert worker.jobs_done == 2
        assert len(ResultStore(farm["store_path"]).rows()) == 2
        for result in results:
            _, _, body = _get(f"{farm['base']}/campaigns/{result['campaign']}")
            assert json.loads(body)["state"] == "complete"

    def test_store_level_dedupe_marks_born_done(self, farm):
        _post_json(f"{farm['base']}/campaigns", SPEC_DOC)
        run_worker(
            WorkerOptions(
                queue_path=farm["queue_path"],
                store_path=farm["store_path"],
                drain=True,
                poll_interval=0.05,
            )
        )
        farm["queue"].gc()  # drop the done queue rows; the store remembers
        _, resubmitted = _post_json(f"{farm['base']}/campaigns", SPEC_DOC)
        assert resubmitted["already_done"] == 2
        assert resubmitted["enqueued"] == 0


class TestMetrics:
    def test_prometheus_text_exposes_queue_health(self, farm):
        _post_json(f"{farm['base']}/campaigns", SPEC_DOC)
        run_worker(
            WorkerOptions(
                queue_path=farm["queue_path"],
                store_path=farm["store_path"],
                drain=True,
                poll_interval=0.05,
            )
        )
        status, content_type, body = _get(f"{farm['base']}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        lines = body.splitlines()
        samples = {}
        for line in lines:
            if line and not line.startswith("#"):
                name, _, value = line.rpartition(" ")
                samples[name] = float(value)
        # The acceptance criterion's required families:
        assert samples['service_queue_jobs{state="done"}'] == 2.0
        assert samples["service_queue_depth"] == 0.0
        assert samples["service_lease_reclaims_total"] == 0.0
        assert samples["service_job_retries_total"] == 0.0
        assert samples["service_job_duration_seconds_count"] == 2.0
        assert samples["service_job_duration_seconds_sum"] > 0.0
        # Valid exposition format: every sample family is declared.
        declared = {
            line.split()[2] for line in lines if line.startswith("# TYPE")
        }
        for name in samples:
            family = name.split("{")[0]
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix) and family[: -len(suffix)] in declared:
                    family = family[: -len(suffix)]
                    break
            assert family in declared, f"undeclared sample {name}"

    def test_metrics_telemetry_counts_reclaims_and_retries(self, tmp_path):
        clock = {"now": 1_000.0}
        queue = JobQueue(
            str(tmp_path / "q.sqlite"),
            backoff_base=0.1,
            clock=lambda: clock["now"],
        )
        try:
            queue.submit(SPEC_DOC, "r.jsonl", max_attempts=3)
            job = queue.lease("w1", ttl_seconds=5.0)
            clock["now"] += 6.0  # w1 "crashes"; lease expires
            queue.reclaim_expired()
            job = queue.lease("w2", ttl_seconds=5.0)
            queue.fail(job.job_id, "w2", "boom")
            telemetry = metrics_telemetry(queue)
            from repro.obs.export import prometheus_text

            text = prometheus_text(telemetry)
            assert "service_lease_reclaims_total 1" in text
            assert "service_job_retries_total 2" in text
        finally:
            queue.close()
