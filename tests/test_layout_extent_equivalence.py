"""Property-based equivalence: extent disk vs. reference block-list disk.

``ReferenceDisk`` below re-implements the historical ``SimulatedDisk`` that
materialised every allocated block as an individual int (first-fit over the
same free-extent list).  Random allocate/extend/delete/free/reallocate/rename
sequences driven by hypothesis must leave both implementations in identical
states: same expanded ``blocks_of()`` per file, same ``file_names()`` order,
same layout scores, and same free-extent summaries.  This is the oracle that
the extent rewrite changed the representation, not the allocator's behaviour.
"""

from __future__ import annotations

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.disk import AllocationError, DoubleFreeError, SimulatedDisk
from repro.layout.layout_score import layout_score, layout_score_from_blockmaps

BLOCK = 4096
DISK_BLOCKS = 512


class ReferenceDisk:
    """The historical block-list allocator (one Python int per block)."""

    def __init__(self, num_blocks: int) -> None:
        self.num_blocks = num_blocks
        self._free_starts: list[int] = [0]
        self._free_lengths: list[int] = [num_blocks]
        self._allocations: dict[str, list[int]] = {}

    @property
    def free_blocks(self) -> int:
        return sum(self._free_lengths)

    def blocks_needed(self, size_bytes: int) -> int:
        return max(1, (size_bytes + BLOCK - 1) // BLOCK) if size_bytes > 0 else 0

    def has_file(self, name: str) -> bool:
        return name in self._allocations

    def file_names(self) -> list[str]:
        return list(self._allocations.keys())

    def blocks_of(self, name: str) -> list[int]:
        return list(self._allocations[name])

    def free_extents(self) -> list[tuple[int, int]]:
        return list(zip(self._free_starts, self._free_lengths))

    def _take_blocks(self, needed: int) -> list[int]:
        blocks: list[int] = []
        remaining = needed
        while remaining > 0:
            start = self._free_starts[0]
            length = self._free_lengths[0]
            take = min(length, remaining)
            blocks.extend(range(start, start + take))
            if take == length:
                del self._free_starts[0]
                del self._free_lengths[0]
            else:
                self._free_starts[0] = start + take
                self._free_lengths[0] = length - take
            remaining -= take
        return blocks

    def allocate(self, name: str, size_bytes: int) -> list[int]:
        if name in self._allocations:
            raise ValueError(f"file {name!r} already allocated")
        needed = self.blocks_needed(size_bytes)
        if needed > self.free_blocks:
            raise AllocationError("disk full")
        blocks = self._take_blocks(needed)
        self._allocations[name] = blocks
        return list(blocks)

    def extend(self, name: str, size_bytes: int) -> list[int]:
        if name not in self._allocations:
            raise KeyError(name)
        needed = self.blocks_needed(size_bytes)
        if needed == 0:
            return []
        if needed > self.free_blocks:
            raise AllocationError("disk full")
        # Append in place: the historical implementation's pop/re-insert
        # reordered file_names(); the extent engine (and this oracle) keep
        # insertion order, which the end-state comparison asserts.
        new_blocks = self._take_blocks(needed)
        self._allocations[name].extend(new_blocks)
        return new_blocks

    def delete(self, name: str) -> None:
        blocks = self._allocations.pop(name)
        for start, length in _runs(sorted(blocks)):
            self._release_extent(start, length)

    def free(self, name: str) -> int:
        if name not in self._allocations:
            raise DoubleFreeError(name)
        freed = len(self._allocations[name])
        self.delete(name)
        return freed

    def reallocate(self, name: str, size_bytes: int) -> list[int]:
        if name not in self._allocations:
            raise DoubleFreeError(name)
        self.free(name)
        return self.allocate(name, size_bytes)

    def rename(self, old_name: str, new_name: str) -> None:
        if old_name not in self._allocations:
            raise KeyError(old_name)
        if new_name in self._allocations:
            raise ValueError(new_name)
        self._allocations[new_name] = self._allocations.pop(old_name)

    def _release_extent(self, start: int, length: int) -> None:
        index = bisect.bisect_left(self._free_starts, start)
        self._free_starts.insert(index, start)
        self._free_lengths.insert(index, length)
        if index + 1 < len(self._free_starts):
            end = self._free_starts[index] + self._free_lengths[index]
            if end == self._free_starts[index + 1]:
                self._free_lengths[index] += self._free_lengths[index + 1]
                del self._free_starts[index + 1]
                del self._free_lengths[index + 1]
        if index > 0:
            previous_end = self._free_starts[index - 1] + self._free_lengths[index - 1]
            if previous_end == self._free_starts[index]:
                self._free_lengths[index - 1] += self._free_lengths[index]
                del self._free_starts[index]
                del self._free_lengths[index]


def _runs(sorted_blocks: list[int]):
    if not sorted_blocks:
        return
    run_start = sorted_blocks[0]
    run_length = 1
    for block in sorted_blocks[1:]:
        if block == run_start + run_length:
            run_length += 1
        else:
            yield run_start, run_length
            run_start = block
            run_length = 1
    yield run_start, run_length


# Operation alphabet: (kind, name_index, size_in_blocks).  Name indices map
# into a small pool so sequences collide on names (exercising double frees,
# re-allocations of freed names, rename collisions).
_operation = st.tuples(
    st.sampled_from(["allocate", "extend", "delete", "free", "reallocate", "rename"]),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=24),
)


def _apply(disk, kind: str, name: str, other: str, size_blocks: int):
    """Run one operation, returning (outcome_tag, payload) for comparison."""
    try:
        if kind == "allocate":
            return ("ok", disk.allocate(name, size_blocks * BLOCK))
        if kind == "extend":
            return ("ok", disk.extend(name, size_blocks * BLOCK))
        if kind == "delete":
            return ("ok", disk.delete(name))
        if kind == "free":
            return ("ok", disk.free(name))
        if kind == "reallocate":
            return ("ok", disk.reallocate(name, size_blocks * BLOCK))
        if kind == "rename":
            return ("ok", disk.rename(name, other))
    except AllocationError:
        return ("alloc-error", None)
    except DoubleFreeError:
        return ("double-free", None)
    except KeyError:
        return ("key-error", None)
    except ValueError:
        return ("value-error", None)
    raise AssertionError(f"unknown kind {kind}")


@settings(max_examples=120, deadline=None)
@given(operations=st.lists(_operation, min_size=1, max_size=60))
def test_extent_disk_matches_reference(operations):
    extent_disk = SimulatedDisk(num_blocks=DISK_BLOCKS)
    reference = ReferenceDisk(num_blocks=DISK_BLOCKS)

    for kind, name_index, size_blocks in operations:
        name = f"f{name_index}"
        other = f"f{(name_index + 1) % 8}"
        outcome_a = _apply(extent_disk, kind, name, other, size_blocks)
        outcome_b = _apply(reference, kind, name, other, size_blocks)
        # Same success/failure classification on every operation...
        assert outcome_a[0] == outcome_b[0], (kind, name, size_blocks)
        # ... and identical returned blocks where the API returns them.
        if outcome_a[0] == "ok" and isinstance(outcome_b[1], list):
            assert outcome_a[1] == outcome_b[1], (kind, name, size_blocks)

    # Identical end state: namespace (with iteration order), block maps,
    # free-extent summary, and layout scores.
    assert extent_disk.file_names() == reference.file_names()
    for name in reference.file_names():
        assert extent_disk.blocks_of(name) == reference.blocks_of(name)
    assert extent_disk.free_extents() == reference.free_extents()
    assert extent_disk.free_blocks == reference.free_blocks

    reference_score = layout_score_from_blockmaps(
        [reference.blocks_of(name) for name in reference.file_names()]
    )
    assert extent_disk.layout_score() == pytest.approx(reference_score, abs=1e-12)
    assert layout_score(extent_disk) == pytest.approx(reference_score, abs=1e-12)
    subset = reference.file_names()[::2]
    if subset:
        assert layout_score(extent_disk, subset) == pytest.approx(
            layout_score_from_blockmaps([reference.blocks_of(n) for n in subset]),
            abs=1e-12,
        )


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=20),
    extra=st.integers(min_value=0, max_value=10),
)
def test_extend_return_value_matches_reference(sizes, extra):
    """extend() must report exactly the blocks the reference would."""
    extent_disk = SimulatedDisk(num_blocks=DISK_BLOCKS)
    reference = ReferenceDisk(num_blocks=DISK_BLOCKS)
    for index, size in enumerate(sizes):
        if extent_disk.blocks_needed(size * BLOCK) > extent_disk.free_blocks:
            continue
        extent_disk.allocate(f"g{index}", size * BLOCK)
        reference.allocate(f"g{index}", size * BLOCK)
    name = "g0" if extent_disk.has_file("g0") else None
    if name and extent_disk.blocks_needed(extra * BLOCK) <= extent_disk.free_blocks:
        assert extent_disk.extend(name, extra * BLOCK) == reference.extend(name, extra * BLOCK)
        assert extent_disk.blocks_of(name) == reference.blocks_of(name)
