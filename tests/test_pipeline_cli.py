"""CLI surface of the pipeline: --stages, --cache-dir, pipeline inspect."""

from __future__ import annotations

import json

import pytest

from repro.core.cli import main as impressions_main
from repro.pipeline.cli import main as pipeline_main

SMALL = ["--files", "120", "--dirs", "24", "--seed", "5"]


class TestGenerateFlags:
    def test_cache_dir_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert impressions_main(SMALL + ["--quiet", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert "6 miss(es)" in first
        assert impressions_main(SMALL + ["--quiet", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "6 hit(s)" in second

    def test_json_payload_includes_pipeline_section(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert impressions_main(SMALL + ["--json", "--cache-dir", cache_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        stages = payload["pipeline"]["stages"]
        assert [stage["name"] for stage in stages] == [
            "directory_structure",
            "file_sizes",
            "extensions",
            "depth_and_placement",
            "content",
            "on_disk_creation",
        ]
        assert payload["pipeline"]["cache"]["enabled"] is True
        assert all(len(stage["fingerprint"]) == 64 for stage in stages)

    def test_stages_subset_skips_the_disk(self, capsys):
        args = SMALL + [
            "--json",
            "--stages",
            "directory_structure,file_sizes,extensions,depth_and_placement",
        ]
        assert impressions_main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["pipeline"]["stages"]) == 4
        assert payload["summary"]["layout_score"] == 1.0

    def test_invalid_stage_subset_errors(self, capsys):
        with pytest.raises(SystemExit):
            impressions_main(SMALL + ["--stages", "depth_and_placement"])


class TestPipelineSubcommand:
    def test_inspect_text_lists_all_stages(self, capsys):
        assert pipeline_main(["inspect"] + SMALL) == 0
        out = capsys.readouterr().out
        for name in ("directory_structure", "on_disk_creation"):
            assert name in out
        assert "6 stages" in out

    def test_inspect_json_reports_cache_state(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert pipeline_main(["inspect"] + SMALL + ["--cache-dir", cache_dir, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert all(stage["cached"] is False for stage in cold["stages"])
        assert cold["cache_safe"] is True

        assert impressions_main(SMALL + ["--quiet", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert pipeline_main(["inspect"] + SMALL + ["--cache-dir", cache_dir, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert all(stage["cached"] is True for stage in warm["stages"])

    def test_inspect_fingerprints_match_generate_fingerprints(self, capsys):
        assert pipeline_main(["inspect"] + SMALL + ["--json"]) == 0
        inspected = json.loads(capsys.readouterr().out)
        assert impressions_main(SMALL + ["--json"]) == 0
        generated = json.loads(capsys.readouterr().out)
        assert [stage["fingerprint"] for stage in inspected["stages"]] == [
            stage["fingerprint"] for stage in generated["pipeline"]["stages"]
        ]
        assert inspected["config_fingerprint"] == generated["config_fingerprint"]

    def test_stages_verb_lists_post_generation_stages(self, capsys):
        assert pipeline_main(["stages"]) == 0
        out = capsys.readouterr().out
        assert "trace_replay" in out
        assert "post-generation" in out

    def test_dispatch_through_top_level_cli(self, capsys):
        assert impressions_main(["pipeline", "stages"]) == 0
        assert "bench" in capsys.readouterr().out
