"""Unit tests for repro.stats.interpolation (piecewise interpolation, §3.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.histograms import PowerOfTwoHistogram
from repro.stats.interpolation import BinnedDistribution, PiecewiseInterpolator


def _curve(fractions: list[float]) -> BinnedDistribution:
    edges = np.asarray([0.0] + [float(2**i) for i in range(len(fractions))])
    return BinnedDistribution(edges=edges, fractions=np.asarray(fractions, dtype=float))


class TestBinnedDistribution:
    def test_edges_fraction_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BinnedDistribution(edges=np.asarray([0.0, 1.0]), fractions=np.asarray([0.5, 0.5]))

    def test_from_histogram_count_view(self):
        hist = PowerOfTwoHistogram.from_values([1, 2, 4, 8])
        curve = BinnedDistribution.from_histogram(hist)
        assert curve.fractions.sum() == pytest.approx(1.0)

    def test_from_values_byte_view(self):
        curve = BinnedDistribution.from_values([1, 1, 1000], by_bytes=True)
        assert curve.fractions.max() > 0.9

    def test_normalised(self):
        curve = _curve([2.0, 2.0, 4.0])
        normalised = curve.normalised()
        assert normalised.fractions.sum() == pytest.approx(1.0)
        assert normalised.fractions[-1] == pytest.approx(0.5)

    def test_cumulative_monotone(self):
        curve = _curve([0.2, 0.3, 0.5])
        cumulative = curve.cumulative()
        assert np.all(np.diff(cumulative) >= 0)
        assert cumulative[-1] == pytest.approx(1.0)

    def test_resized_pad_and_truncate(self):
        curve = _curve([0.5, 0.5])
        padded = curve.resized(4)
        assert padded.num_bins == 4
        assert padded.fractions[2:].sum() == 0.0
        truncated = padded.resized(2)
        assert truncated.num_bins == 2

    def test_resized_same_size_returns_self(self):
        curve = _curve([1.0])
        assert curve.resized(1) is curve


class TestPiecewiseInterpolator:
    def test_needs_two_curves(self):
        with pytest.raises(ValueError):
            PiecewiseInterpolator({10.0: _curve([1.0])})

    def test_interpolation_is_exact_at_known_points(self):
        curves = {10.0: _curve([0.8, 0.2]), 100.0: _curve([0.2, 0.8])}
        interpolator = PiecewiseInterpolator(curves)
        at_10 = interpolator.interpolate(10.0)
        assert at_10.fractions == pytest.approx([0.8, 0.2], abs=1e-9)

    def test_linear_midpoint(self):
        curves = {0.5: _curve([1.0, 0.0]), 1.5: _curve([0.0, 1.0])}
        interpolator = PiecewiseInterpolator(curves)
        mid = interpolator.interpolate(1.0)
        assert mid.fractions == pytest.approx([0.5, 0.5])

    def test_extrapolation_beyond_range(self):
        curves = {10.0: _curve([0.6, 0.4]), 20.0: _curve([0.5, 0.5])}
        interpolator = PiecewiseInterpolator(curves)
        extrapolated = interpolator.interpolate(30.0)
        # Linear trend continues: 0.4 per decade decline in bin 0, renormalised.
        assert extrapolated.fractions[0] == pytest.approx(0.4, abs=1e-9)

    def test_extrapolation_clips_negative_mass(self):
        curves = {10.0: _curve([0.9, 0.1]), 20.0: _curve([0.1, 0.9])}
        interpolator = PiecewiseInterpolator(curves)
        far = interpolator.interpolate(100.0)
        assert np.all(far.fractions >= 0)
        assert far.fractions.sum() == pytest.approx(1.0)

    def test_result_is_normalised(self):
        curves = {1.0: _curve([0.3, 0.7]), 2.0: _curve([0.6, 0.4]), 4.0: _curve([0.1, 0.9])}
        interpolator = PiecewiseInterpolator(curves)
        result = interpolator.interpolate(3.0)
        assert result.fractions.sum() == pytest.approx(1.0)

    def test_mismatched_bin_counts_are_padded(self):
        curves = {1.0: _curve([1.0]), 2.0: _curve([0.5, 0.5])}
        interpolator = PiecewiseInterpolator(curves)
        assert interpolator.num_bins == 2
        result = interpolator.interpolate(1.5)
        assert result.num_bins == 2

    def test_invalid_target_rejected(self):
        curves = {1.0: _curve([1.0, 0.0]), 2.0: _curve([0.0, 1.0])}
        interpolator = PiecewiseInterpolator(curves)
        with pytest.raises(ValueError):
            interpolator.interpolate(0.0)

    def test_segment_values_roundtrip(self):
        curves = {1.0: _curve([0.25, 0.75]), 2.0: _curve([0.5, 0.5])}
        interpolator = PiecewiseInterpolator(curves)
        assert interpolator.segment_values(0).tolist() == [0.25, 0.5]
        with pytest.raises(IndexError):
            interpolator.segment_values(10)

    def test_mdcc_against_reference(self):
        curves = {1.0: _curve([0.5, 0.5]), 3.0: _curve([0.5, 0.5])}
        interpolator = PiecewiseInterpolator(curves)
        reference = _curve([0.5, 0.5])
        assert interpolator.mdcc_against(2.0, reference) == pytest.approx(0.0, abs=1e-12)

    def test_accuracy_on_held_out_synthetic_family(self, rng):
        """Interpolating a smoothly varying family recovers the held-out curve."""

        def family(size: float) -> BinnedDistribution:
            weights = np.asarray([1.0, size, size**2, 1.0])
            return _curve((weights / weights.sum()).tolist())

        curves = {s: family(s) for s in (1.0, 2.0, 4.0)}
        interpolator = PiecewiseInterpolator(curves)
        generated = interpolator.interpolate(3.0)
        actual = family(3.0).normalised()
        assert np.max(np.abs(generated.fractions - actual.fractions)) < 0.05
