"""Tests for controlled content similarity and the CAS/dedup workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.content.generators import ContentGenerator, ContentPolicy
from repro.content.similarity import SimilarityContentGenerator, SimilarityProfile
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.workloads.cas import CasSimulator


class TestSimilarityProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimilarityProfile(duplicate_fraction=1.5)
        with pytest.raises(ValueError):
            SimilarityProfile(chunk_size=1)
        with pytest.raises(ValueError):
            SimilarityProfile(pool_chunks=0)


class TestSimilarityContentGenerator:
    def test_exact_size(self, rng):
        generator = SimilarityContentGenerator(SimilarityProfile(duplicate_fraction=0.5))
        for size in (0, 1, 4095, 4096, 4097, 100_000):
            assert len(generator.generate(size, rng)) == size

    def test_zero_duplicate_fraction_gives_unique_chunks(self, rng):
        generator = SimilarityContentGenerator(SimilarityProfile(duplicate_fraction=0.0))
        a = generator.generate(64 * 1024, rng)
        b = generator.generate(64 * 1024, rng)
        chunks_a = {a[i : i + 4096] for i in range(0, len(a), 4096)}
        chunks_b = {b[i : i + 4096] for i in range(0, len(b), 4096)}
        assert not (chunks_a & chunks_b)

    def test_full_duplication_uses_pool_only(self, rng):
        profile = SimilarityProfile(duplicate_fraction=1.0, pool_chunks=4)
        generator = SimilarityContentGenerator(profile)
        content = generator.generate(40 * 4096, rng)
        distinct = {content[i : i + 4096] for i in range(0, len(content), 4096)}
        assert len(distinct) <= 4

    def test_same_pool_seed_shares_bytes_across_generators(self, rng):
        profile = SimilarityProfile(duplicate_fraction=1.0, pool_chunks=1)
        a = SimilarityContentGenerator(profile, pool_seed=3)
        b = SimilarityContentGenerator(profile, pool_seed=3)
        assert a.generate(4096, np.random.default_rng(0)) == b.generate(
            4096, np.random.default_rng(1)
        )

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ValueError):
            SimilarityContentGenerator().generate(-1, rng)


class TestCasSimulator:
    def _image(self, policy: ContentPolicy, num_files: int = 80, seed: int = 31):
        config = ImpressionsConfig(
            fs_size_bytes=None,
            num_files=num_files,
            num_directories=16,
            seed=seed,
            generate_content=True,
            content=policy,
        )
        return Impressions(config).generate()

    def test_requires_content(self, small_image):
        with pytest.raises(ValueError):
            CasSimulator().ingest(small_image)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CasSimulator(chunk_size=16)
        with pytest.raises(ValueError):
            CasSimulator(chunk_size=4096, max_file_bytes=1024)

    def test_random_binary_content_barely_dedups(self):
        image = self._image(ContentPolicy(force_kind="binary", typed_headers=False))
        result = CasSimulator().ingest(image)
        assert result.files_ingested == image.file_count
        assert result.dedup_ratio == pytest.approx(1.0, abs=0.05)

    def test_single_word_text_dedups_heavily(self):
        """The paper's Postmark observation: identical content collapses in a CAS."""
        image = self._image(ContentPolicy(text_model="single-word", force_kind="text"))
        result = CasSimulator().ingest(image)
        assert result.duplicate_byte_fraction > 0.9

    def test_word_model_text_dedups_less_than_single_word(self):
        single = CasSimulator().ingest(
            self._image(ContentPolicy(text_model="single-word", force_kind="text"))
        )
        modelled = CasSimulator().ingest(
            self._image(ContentPolicy(text_model="hybrid", force_kind="text"))
        )
        assert modelled.duplicate_byte_fraction < single.duplicate_byte_fraction

    def test_similarity_profile_controls_dedup_ratio(self):
        low = self._image(
            ContentPolicy(
                force_kind="binary",
                typed_headers=False,
                similarity=SimilarityProfile(duplicate_fraction=0.1),
            )
        )
        high = self._image(
            ContentPolicy(
                force_kind="binary",
                typed_headers=False,
                similarity=SimilarityProfile(duplicate_fraction=0.8),
            )
        )
        low_result = CasSimulator().ingest(low)
        high_result = CasSimulator().ingest(high)
        assert high_result.duplicate_byte_fraction > low_result.duplicate_byte_fraction
        assert high_result.duplicate_byte_fraction > 0.5

    def test_content_defined_chunking_runs(self):
        image = self._image(ContentPolicy(force_kind="binary", typed_headers=False), num_files=30)
        result = CasSimulator(chunk_size=2048, content_defined=True).ingest(image)
        assert result.total_chunks >= result.unique_chunks > 0
        assert result.total_bytes >= result.unique_bytes

    def test_result_accounting(self):
        image = self._image(ContentPolicy(force_kind="binary", typed_headers=False), num_files=20)
        result = CasSimulator().ingest(image)
        assert 0.0 <= result.duplicate_byte_fraction <= 1.0
        assert result.dedup_ratio >= 1.0
