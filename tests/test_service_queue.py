"""JobQueue semantics: atomic leases, backoff retries, reclaim, dead letters.

Everything here runs against a fake clock so lease expiry and backoff
windows are stepped deterministically instead of slept through.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaign.spec import CampaignSpec
from repro.service.queue import (
    DEAD,
    DONE,
    LEASED,
    PENDING,
    JobQueue,
    QueueError,
)

SPEC_DOC = {
    "name": "queue",
    "base": {"num_directories": 6, "fs_size_bytes": 8 * 1024 * 1024},
    "sweep": {"num_files": [30, 40], "seed": [1]},
    "steps": [{"step": "summary"}],
}


class FakeClock:
    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def queue(tmp_path, clock) -> JobQueue:
    with JobQueue(
        str(tmp_path / "q.sqlite"), backoff_base=2.0, backoff_cap=60.0, clock=clock
    ) as q:
        yield q


@pytest.fixture()
def spec() -> CampaignSpec:
    return CampaignSpec.from_dict(SPEC_DOC)


class TestSubmit:
    def test_expands_spec_into_pending_jobs(self, queue, spec):
        result = queue.submit(spec, "r.jsonl")
        assert result.campaign_id == "c1"
        assert result.total == 2
        assert len(result.enqueued) == 2
        jobs = queue.jobs()
        assert [job.state for job in jobs] == [PENDING, PENDING]
        assert {job.fingerprint for job in jobs} == {
            scenario.fingerprint for scenario in spec.expand()
        }

    def test_duplicate_submission_dedupes_by_fingerprint(self, queue, spec):
        queue.submit(spec, "r.jsonl")
        result = queue.submit(spec, "r.jsonl")
        assert result.campaign_id == "c2"
        assert len(result.deduped) == 2
        assert len(result.enqueued) == 0
        assert len(queue.jobs()) == 2
        # The second campaign still tracks the shared jobs.
        assert queue.campaign("c2")["total"] == 2

    def test_completed_fingerprints_are_born_done(self, queue, spec):
        done_fp = spec.expand()[0].fingerprint
        result = queue.submit(spec, "r.jsonl", completed_fingerprints={done_fp})
        assert len(result.already_done) == 1
        assert len(result.enqueued) == 1
        states = {job.fingerprint: job.state for job in queue.jobs()}
        assert states[done_fp] == DONE

    def test_accepts_plain_dict_documents(self, queue):
        result = queue.submit(SPEC_DOC, "r.jsonl")
        assert result.total == 2

    def test_rejects_nonpositive_retry_budget(self, queue, spec):
        with pytest.raises(QueueError, match="max_attempts"):
            queue.submit(spec, "r.jsonl", max_attempts=0)


class TestLeaseAckFail:
    def test_lease_claims_oldest_pending(self, queue, spec):
        queue.submit(spec, "r.jsonl")
        job = queue.lease("w1", ttl_seconds=30.0)
        assert job is not None
        assert job.state == LEASED
        assert job.worker == "w1"
        assert job.attempts == 1
        assert job.job_id == 1

    def test_leased_job_is_not_double_claimed(self, queue, spec):
        queue.submit(spec, "r.jsonl")
        first = queue.lease("w1", ttl_seconds=30.0)
        second = queue.lease("w2", ttl_seconds=30.0)
        assert first.job_id != second.job_id
        assert queue.lease("w3", ttl_seconds=30.0) is None

    def test_ack_completes(self, queue, spec):
        queue.submit(spec, "r.jsonl")
        job = queue.lease("w1", ttl_seconds=30.0)
        assert queue.ack(job.job_id, "w1", duration_seconds=1.5, result={"ok": True})
        fresh = queue.job(job.job_id)
        assert fresh.state == DONE
        assert fresh.duration_seconds == 1.5
        assert fresh.result == {"ok": True}

    def test_ack_from_wrong_worker_is_rejected(self, queue, spec):
        queue.submit(spec, "r.jsonl")
        job = queue.lease("w1", ttl_seconds=30.0)
        assert not queue.ack(job.job_id, "w2", duration_seconds=1.0)
        assert queue.job(job.job_id).state == LEASED

    def test_fail_retries_with_exponential_backoff(self, queue, spec, clock):
        queue.submit(spec, "r.jsonl", max_attempts=3)
        job = queue.lease("w1", ttl_seconds=30.0)
        assert queue.fail(job.job_id, "w1", "boom") == "retried"
        fresh = queue.job(job.job_id)
        assert fresh.state == PENDING
        assert fresh.error == "boom"
        # backoff_base * 2**(attempts-1) = 2.0 after the first attempt
        assert fresh.not_before == pytest.approx(clock.now + 2.0)
        # Not runnable until the backoff window passes (job 2 leases instead).
        assert queue.lease("w1", ttl_seconds=30.0).job_id == 2
        clock.advance(2.1)
        assert queue.lease("w1", ttl_seconds=30.0).job_id == job.job_id

    def test_exhausted_retries_park_dead_with_error(self, queue, spec, clock):
        queue.submit(spec, "r.jsonl", max_attempts=2)
        for attempt in range(2):
            clock.advance(60.0)
            job = queue.lease("w1", ttl_seconds=30.0)
            outcome = queue.fail(job.job_id, "w1", f"traceback {attempt}")
        assert outcome == "dead"
        fresh = queue.job(job.job_id)
        assert fresh.state == DEAD
        assert fresh.error == "traceback 1"
        assert queue.counters()["jobs_dead"] == 1.0

    def test_retry_dead_resurrects_with_fresh_budget(self, queue, spec, clock):
        queue.submit(spec, "r.jsonl", max_attempts=1)
        job = queue.lease("w1", ttl_seconds=30.0)
        queue.fail(job.job_id, "w1", "boom")
        resurrected = queue.retry_dead(job.job_id)
        assert resurrected.state == PENDING
        assert resurrected.attempts == 0
        with pytest.raises(QueueError, match="not dead-lettered"):
            queue.retry_dead(job.job_id)


class TestLeaseExpiry:
    def test_expired_lease_is_reclaimed_on_next_lease(self, queue, spec, clock):
        queue.submit(spec, "r.jsonl", max_attempts=3)
        crashed = queue.lease("w1", ttl_seconds=10.0)
        clock.advance(11.0)
        # w2's lease call heals the queue, then claims the younger job first
        # (the reclaimed one is in its backoff window).
        queue.lease("w2", ttl_seconds=10.0)
        fresh = queue.job(crashed.job_id)
        assert fresh.state == PENDING
        assert "lease expired" in fresh.error
        assert "w1" in fresh.error
        assert queue.counters()["lease_reclaims"] == 1.0

    def test_extend_lease_keeps_job_alive(self, queue, spec, clock):
        queue.submit(spec, "r.jsonl")
        job = queue.lease("w1", ttl_seconds=10.0)
        clock.advance(8.0)
        assert queue.extend_lease(job.job_id, "w1", 10.0)
        clock.advance(8.0)
        assert queue.reclaim_expired() == 0
        assert queue.job(job.job_id).state == LEASED

    def test_lost_lease_cannot_be_extended(self, queue, spec, clock):
        queue.submit(spec, "r.jsonl")
        job = queue.lease("w1", ttl_seconds=10.0)
        clock.advance(11.0)
        queue.reclaim_expired()
        assert not queue.extend_lease(job.job_id, "w1", 10.0)

    def test_expiry_past_budget_parks_dead(self, queue, spec, clock):
        queue.submit(spec, "r.jsonl", max_attempts=1)
        job = queue.lease("w1", ttl_seconds=10.0)
        clock.advance(11.0)
        queue.reclaim_expired()
        assert queue.job(job.job_id).state == DEAD


class TestIntrospection:
    def test_campaign_progress_and_state(self, queue, spec, clock):
        campaign_id = queue.submit(spec, "r.jsonl").campaign_id
        info = queue.campaign(campaign_id)
        assert info["state"] == "running"
        assert info["done"] == 0
        job = queue.lease("w1", ttl_seconds=30.0)
        queue.ack(job.job_id, "w1", duration_seconds=1.0)
        job = queue.lease("w1", ttl_seconds=30.0)
        queue.ack(job.job_id, "w1", duration_seconds=1.0)
        info = queue.campaign(campaign_id)
        assert info["state"] == "complete"
        assert info["progress"] == 1.0

    def test_stats_depth_and_workers(self, queue, spec, clock):
        queue.submit(spec, "r.jsonl")
        queue.record_heartbeat("w1", jobs_done=3)
        stats = queue.stats()
        assert stats["depth"] == 2
        assert stats["jobs"][PENDING] == 2
        assert [worker["worker"] for worker in stats["workers"]] == ["w1"]
        assert stats["oldest_pending_age_seconds"] == 0.0

    def test_unknown_ids_raise(self, queue):
        with pytest.raises(QueueError, match="no such job"):
            queue.job(99)
        with pytest.raises(QueueError, match="no such campaign"):
            queue.campaign("c99")

    def test_gc_collects_done_jobs_only(self, queue, spec, clock):
        queue.submit(spec, "r.jsonl")
        job = queue.lease("w1", ttl_seconds=30.0)
        queue.ack(job.job_id, "w1", duration_seconds=1.0)
        report = queue.gc(dry_run=True)
        assert report["jobs_collected"] == 1
        assert len(queue.jobs()) == 2  # dry run changed nothing
        report = queue.gc()
        assert report["jobs_collected"] == 1
        states = [j.state for j in queue.jobs()]
        assert states == [PENDING]


class TestCrossConnection:
    """Separate JobQueue objects on one path model separate processes."""

    def test_lease_handoff_is_atomic_across_connections(self, tmp_path, clock, spec):
        path = str(tmp_path / "q.sqlite")
        with JobQueue(path, clock=clock) as first, JobQueue(path, clock=clock) as second:
            first.submit(spec, "r.jsonl")
            jobs = [first.lease("w1", 30.0), second.lease("w2", 30.0)]
            assert {job.job_id for job in jobs} == {1, 2}
            assert second.lease("w3", 30.0) is None

    def test_concurrent_submitters_enqueue_each_scenario_once(self, tmp_path, spec):
        path = str(tmp_path / "q.sqlite")
        results = []
        barrier = threading.Barrier(2)

        def client(name: str) -> None:
            with JobQueue(path) as q:
                barrier.wait()
                results.append(q.submit(spec, "r.jsonl"))

        threads = [threading.Thread(target=client, args=(f"t{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        enqueued = sum(len(result.enqueued) for result in results)
        deduped = sum(len(result.deduped) for result in results)
        assert enqueued == 2
        assert deduped == 2
        with JobQueue(path) as q:
            assert len(q.jobs()) == 2
