"""Unit tests for the file age / timestamp model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.metadata.timestamps import SECONDS_PER_DAY, FileTimestamps, TimestampModel

NOW = 1_750_000_000.0  # an arbitrary fixed "now" (POSIX seconds)


class TestFileTimestamps:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            FileTimestamps(created=100.0, modified=50.0, accessed=200.0)
        with pytest.raises(ValueError):
            FileTimestamps(created=100.0, modified=150.0, accessed=120.0)

    def test_age_days(self):
        stamps = FileTimestamps(created=NOW - 10 * SECONDS_PER_DAY, modified=NOW, accessed=NOW)
        assert stamps.age_days(NOW) == pytest.approx(10.0)


class TestTimestampModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimestampModel(modification_fraction=1.5)
        with pytest.raises(ValueError):
            TimestampModel(modification_position_alpha=0.0)

    def test_sampled_invariants(self, rng):
        model = TimestampModel()
        for stamps in model.sample_many(rng, NOW, 300):
            assert stamps.created <= stamps.modified <= stamps.accessed <= NOW

    def test_modification_fraction_respected(self, rng):
        model = TimestampModel(modification_fraction=0.0)
        stamps = model.sample_many(rng, NOW, 200)
        assert all(s.created == s.modified for s in stamps)
        always = TimestampModel(modification_fraction=1.0)
        modified = always.sample_many(rng, NOW, 200)
        assert sum(1 for s in modified if s.modified > s.created) > 150

    def test_age_distribution_heavy_tailed(self, rng):
        model = TimestampModel()
        ages = model.age_distribution_days(rng, 10_000)
        assert np.median(ages) < np.mean(ages)  # skewed right
        assert np.median(ages) == pytest.approx(np.exp(4.4), rel=0.2)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            TimestampModel().sample_many(rng, NOW, -1)

    def test_reproducible_from_seed(self):
        model = TimestampModel()
        a = model.sample_many(np.random.default_rng(1), NOW, 20)
        b = model.sample_many(np.random.default_rng(1), NOW, 20)
        assert a == b


class TestPipelineIntegration:
    def test_generated_image_carries_timestamps(self):
        config = ImpressionsConfig(
            fs_size_bytes=None,
            num_files=60,
            num_directories=12,
            seed=5,
            timestamp_model=TimestampModel(),
            timestamp_now=NOW,
        )
        image = Impressions(config).generate()
        for file_node in image.tree.files:
            assert file_node.timestamps is not None
            assert file_node.timestamps.accessed <= NOW
        assert image.report.derived["timestamp_now"] == NOW

    def test_timestamps_optional_by_default(self, small_image):
        assert all(f.timestamps is None for f in small_image.tree.files)

    def test_materialisation_applies_mtimes(self, tmp_path):
        import os

        config = ImpressionsConfig(
            fs_size_bytes=None,
            num_files=20,
            num_directories=5,
            seed=6,
            timestamp_model=TimestampModel(),
            timestamp_now=NOW,
        )
        image = Impressions(config).generate()
        target = tmp_path / "aged"
        image.materialize(str(target))
        probe = image.tree.files[0]
        mtime = os.path.getmtime(os.path.join(str(target), probe.path().lstrip("/")))
        assert mtime == pytest.approx(probe.timestamps.modified, abs=1.0)
