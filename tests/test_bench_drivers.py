"""Smoke and shape tests for the experiment drivers in repro.bench.

The full-scale runs live under benchmarks/; here each driver is exercised at a
small scale to check that it runs, returns the documented structure, and that
the headline qualitative results (who wins, what direction) hold.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    ablations,
    fig1_find,
    fig2_accuracy,
    fig3_constraints,
    fig4_interpolation,
    fig5_interpolation,
    fig6_assumptions,
    fig7_index_size,
    fig8_beagle_options,
    table1_prior_work,
    table3_mdcc,
    table4_constraints,
    table6_performance,
)
from repro.bench.common import format_rows, scaled_default_config


class TestCommon:
    def test_scaled_config_bounds(self):
        config = scaled_default_config(scale=0.01)
        assert config.num_files >= 50
        assert config.num_directories >= 10
        with pytest.raises(ValueError, match="positive"):
            scaled_default_config(scale=0.0)
        with pytest.raises(ValueError, match="positive"):
            scaled_default_config(scale=-0.5)
        with pytest.raises(ValueError, match="positive"):
            scaled_default_config(scale=float("nan"))

    def test_scaled_config_can_scale_up(self):
        config = scaled_default_config(scale=2.0)
        assert config.num_files == 40_000
        assert config.num_directories == 8_000

    def test_scaled_config_full_scale_matches_paper(self):
        config = scaled_default_config(scale=1.0)
        assert config.num_files == 20_000
        assert config.num_directories == 4_000

    def test_format_rows_alignment(self):
        table = format_rows(["a", "bbbb"], [[1, 2.5], ["xx", "y"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 6


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_find.run(num_files=400, seed=5)

    def test_all_conditions_present(self, result):
        assert set(result["relative_overhead"]) == set(fig1_find.CONDITIONS)

    def test_qualitative_shape(self, result):
        relative = result["relative_overhead"]
        assert relative["Original"] == pytest.approx(1.0)
        assert relative["Cached"] < 0.1
        assert relative["Flat Tree"] < 1.0
        assert relative["Deep Tree"] > 1.2
        assert relative["Fragmented"] > 1.05
        # Roughly a 3x spread between flat and deep (the paper's headline).
        assert relative["Deep Tree"] / relative["Flat Tree"] > 2.0

    def test_fragmented_layout_score_near_target(self, result):
        assert result["layout_scores"]["Fragmented"] == pytest.approx(0.95, abs=0.03)

    def test_format_table(self, result):
        table = fig1_find.format_table(result)
        assert "Deep Tree" in table and "relative overhead" in table


class TestFig2AndTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_accuracy.run(scale=0.05, seed=8)

    def test_mdcc_keys(self, result):
        assert set(result["mdcc"]) >= {
            "directory_count_with_depth",
            "file_size_by_count",
            "file_size_by_bytes",
            "extension_popularity",
            "file_count_with_depth",
        }

    def test_accuracy_is_reasonable_at_small_scale(self, result):
        # The paper reports a few percent at 20k files; at 1k files sampling
        # noise dominates but the distributions still clearly match.
        assert result["mdcc"]["file_size_by_count"] < 0.1
        assert result["mdcc"]["extension_popularity"] < 0.1
        assert result["mdcc"]["directory_count_with_depth"] < 0.35
        assert result["mdcc"]["file_count_with_depth"] < 0.35

    def test_curve_lengths_aligned(self, result):
        assert len(result["desired"]["files_by_size"]) == len(result["generated"]["files_by_size"])

    def test_format_table(self, result):
        assert "MDCC" in fig2_accuracy.format_table(result)

    def test_table3_averages(self):
        result = table3_mdcc.run(trials=2, scale=0.03, seed=3)
        assert result["trials"] == 2
        assert set(result["average_mdcc"]) == set(result["std_mdcc"])
        assert "Table 3" in table3_mdcc.format_table(result)


class TestFig3AndTable4:
    def test_fig3_convergence(self):
        result = fig3_constraints.run(num_files=300, target_sum=300 * 60.0, trials=2, seed=4)
        assert len(result["traces"]) == 2
        assert result["converged_fraction"] > 0
        assert len(result["original_files_by_size"]) == len(result["constrained_files_by_size"])
        assert "Figure 3" in fig3_constraints.format_table(result)

    def test_table4_rows(self):
        result = table4_constraints.run(
            target_sums=(150 * 60.0,), num_files=150, trials=2, seed=4
        )
        row = result["rows"][150 * 60.0]
        assert row["trials"] == 2
        assert row["avg_final_beta"] <= row["avg_initial_beta"] + 1e-9
        assert "Table 4" in table4_constraints.format_table(result)


class TestInterpolationBenches:
    def test_fig4_segments(self):
        result = fig4_interpolation.run(target_size_gib=75.0, max_files_per_snapshot=400)
        assert result["num_bins"] == len(result["composite_fractions"])
        assert sum(result["composite_fractions"]) == pytest.approx(1.0)
        assert "Figure 4" in fig4_interpolation.format_table(result)

    def test_fig5_accuracy_and_table5(self):
        result = fig5_interpolation.run(max_files_per_snapshot=800, seed=77)
        views = result["results"]
        assert set(views) == {"files_by_count", "files_by_bytes"}
        for per_target in views.values():
            assert set(per_target) == {75.0, 125.0}
            for stats in per_target.values():
                assert 0.0 <= stats["ks_statistic"] <= 1.0
        # The by-count curves interpolate well (paper: D ~= 0.05-0.08).
        assert views["files_by_count"][75.0]["mdcc"] < 0.2
        assert "Table 5" in fig5_interpolation.format_table(result)


class TestCaseStudyBenches:
    def test_table6_breakdown(self):
        result = table6_performance.run(scale=0.01, include_content_row=False)
        for image_key in ("image1", "image2"):
            timings = result[image_key]["timings_s"]
            assert timings["total"] > 0
            assert timings["total"] >= timings["on_disk_creation"]
        assert result["image2"]["summary"]["files"] >= result["image1"]["summary"]["files"]
        assert "Table 6" in table6_performance.format_table(result)

    def test_fig6_assumptions(self):
        result = fig6_assumptions.run(scale=0.05, seed=6)
        assert len(result["assumptions"]) == 5
        for entry in result["assumptions"]:
            assert 0.0 <= entry["missed_file_fraction"] <= 1.0
        gdl_depth = result["assumptions"][0]
        assert gdl_depth["application"] == "GDL"
        assert "Figure 6" in fig6_assumptions.format_table(result)

    def test_fig7_ordering_flips_with_content(self):
        result = fig7_index_size.run(scale=0.02, seed=6)
        scenarios = result["scenarios"]
        assert set(scenarios) == set(fig7_index_size.CONTENT_SCENARIOS)
        model_text = scenarios["Text (Model)"]
        binary = scenarios["Binary"]
        assert model_text["beagle"]["index_to_fs_ratio"] > model_text["gdl"]["index_to_fs_ratio"]
        assert binary["gdl"]["index_to_fs_ratio"] > binary["beagle"]["index_to_fs_ratio"]
        assert "Figure 7" in fig7_index_size.format_table(result)

    def test_fig8_option_shape(self):
        result = fig8_beagle_options.run(scale=0.02, seed=6)
        relative_size = result["relative_size"]
        assert relative_size["Original"]["Default"] == pytest.approx(1.0)
        # TextCache grows the text-image index; DisFilter shrinks every index.
        assert relative_size["TextCache"]["Text"] > relative_size["Original"]["Text"]
        assert relative_size["DisFilter"]["Default"] < relative_size["Original"]["Default"]
        assert relative_size["DisDir"]["Default"] < relative_size["Original"]["Default"]
        assert "Figure 8" in fig8_beagle_options.format_table(result)


class TestTable1AndAblations:
    def test_table1_static_data(self):
        result = table1_prior_work.run()
        assert result["num_entries"] == 13
        assert result["with_description"] == 12
        table = table1_prior_work.format_table(result)
        assert "Postmark" not in table  # motivation table lists systems, not benchmarks
        assert "PAST" in table

    def test_size_model_ablation(self):
        result = ablations.run_size_model_ablation(num_files=800, seed=5)
        assert set(result) == {"hybrid", "simple-lognormal"}
        assert "Ablation" in ablations.format_size_model_table(result)

    def test_depth_model_ablation(self):
        result = ablations.run_depth_model_ablation(num_files=500, seed=5)
        assert set(result) == {"multiplicative", "poisson-only"}
        assert "depth" in ablations.format_depth_model_table(result)

    def test_subset_sum_ablation(self):
        result = ablations.run_subset_sum_ablation(pool_size=300, subset_size=250, trials=3)
        assert (
            result["with-improvement"]["mean_relative_error"]
            <= result["without-improvement"]["mean_relative_error"] + 1e-12
        )

    def test_content_model_ablation(self):
        result = ablations.run_content_model_ablation(bytes_per_model=50_000)
        assert result["single-word"]["unique_words"] <= 2
        assert result["word-length"]["unique_words"] > result["word-popularity"]["unique_words"]
        assert "content model" in ablations.format_content_model_table(result)
