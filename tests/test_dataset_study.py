"""Unit tests for the snapshot/image distribution analysis (Figure 2 inputs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.study import (
    MAX_TRACKED_DEPTH,
    analyze_image,
    analyze_snapshot,
    compare_distribution_sets,
)
from repro.dataset.synthetic import DatasetScale, SyntheticDatasetBuilder


@pytest.fixture(scope="module")
def snapshot():
    builder = SyntheticDatasetBuilder(scale=DatasetScale(mu_shift_per_doubling=0.0), seed=31)
    return builder.build_snapshot(capacity_gib=0.15, max_files=700)


@pytest.fixture(scope="module")
def distribution_set(snapshot):
    return analyze_snapshot(snapshot)


class TestAnalyzeSnapshot:
    def test_totals(self, snapshot, distribution_set):
        assert distribution_set.total_files == snapshot.file_count
        assert distribution_set.total_directories == snapshot.directory_count
        assert distribution_set.total_bytes == snapshot.used_bytes

    def test_depth_histograms_have_fixed_width(self, distribution_set):
        assert len(distribution_set.directories_by_depth) == MAX_TRACKED_DEPTH + 1
        assert len(distribution_set.files_by_depth) == MAX_TRACKED_DEPTH + 1

    def test_fractions_sum_to_one(self, distribution_set):
        assert distribution_set.directories_by_depth_fractions().sum() == pytest.approx(1.0)
        assert distribution_set.files_by_depth_fractions().sum() == pytest.approx(1.0)

    def test_subdirectory_cdf_monotone(self, distribution_set):
        cdf = distribution_set.subdirectory_count_cdf()
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] <= 1.0

    def test_extension_shares_sum_to_one(self, distribution_set):
        assert sum(distribution_set.extension_shares.values()) == pytest.approx(1.0)

    def test_mean_bytes_by_depth_positive(self, distribution_set):
        assert distribution_set.mean_bytes_by_depth
        assert all(value > 0 for value in distribution_set.mean_bytes_by_depth.values())

    def test_directory_file_count_cdf(self, distribution_set):
        cdf = distribution_set.directory_file_count_cdf(max_count=16)
        assert len(cdf) == 17
        assert cdf[-1] <= 1.0


class TestAnalyzeImage:
    def test_image_analysis_matches_tree(self, small_image):
        distributions = analyze_image(small_image)
        assert distributions.total_files == small_image.file_count
        assert distributions.total_bytes == small_image.total_bytes
        assert distributions.file_size_histogram.total_count == small_image.file_count

    def test_label_propagates(self, small_image):
        assert analyze_image(small_image, label="candidate").label == "candidate"


class TestCompare:
    def test_identical_sets_have_zero_mdcc(self, distribution_set):
        results = compare_distribution_sets(distribution_set, distribution_set)
        for key, value in results.items():
            if key == "bytes_with_depth_mb":
                assert value == pytest.approx(0.0, abs=1e-9)
            else:
                assert value == pytest.approx(0.0, abs=1e-12)

    def test_all_expected_parameters_present(self, distribution_set):
        results = compare_distribution_sets(distribution_set, distribution_set)
        expected = {
            "directory_count_with_depth",
            "directory_size_subdirectories",
            "file_size_by_count",
            "file_size_by_bytes",
            "extension_popularity",
            "file_count_with_depth",
            "bytes_with_depth_mb",
            "directory_size_files",
        }
        assert expected.issubset(results.keys())

    def test_different_sets_have_positive_mdcc(self, distribution_set, small_image):
        generated = analyze_image(small_image)
        results = compare_distribution_sets(distribution_set, generated)
        assert all(value >= 0 for value in results.values())
        assert any(value > 0 for value in results.values())

    def test_mdcc_values_bounded_by_one(self, distribution_set, small_image):
        generated = analyze_image(small_image)
        results = compare_distribution_sets(distribution_set, generated)
        for key, value in results.items():
            if key != "bytes_with_depth_mb":
                assert 0.0 <= value <= 1.0
