"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.content.generators import ContentPolicy
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test sampling."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_config() -> ImpressionsConfig:
    """A small but non-trivial image configuration used across tests."""
    return ImpressionsConfig(
        fs_size_bytes=64 * 1024 * 1024,
        num_files=600,
        num_directories=120,
        seed=7,
    )


@pytest.fixture(scope="session")
def small_image(small_config):
    """One generated small image, shared (read-only) across the session."""
    return Impressions(small_config).generate()


@pytest.fixture(scope="session")
def content_image():
    """A small image generated with content enabled (hybrid word model)."""
    config = ImpressionsConfig(
        fs_size_bytes=8 * 1024 * 1024,
        num_files=150,
        num_directories=30,
        seed=11,
        generate_content=True,
        content=ContentPolicy(text_model="hybrid"),
    )
    return Impressions(config).generate()
