"""ResultStore crash consistency: torn tails, quarantine, full recovery."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign.store import ResultStore, StoreError
from repro.faults import FaultPlan, FaultSpec, InjectedCrash, quarantine_dir, use


def row(index: int) -> dict:
    return {"fingerprint": f"fp-{index}", "scenario": f"s{index}", "metrics": {"n": index}}


def write_lines(path: str, *chunks: bytes) -> None:
    with open(path, "wb") as handle:
        for chunk in chunks:
            handle.write(chunk)


def line(document: dict) -> bytes:
    return json.dumps(document, sort_keys=True).encode("utf-8") + b"\n"


class TestTornFinalLine:
    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        """The regression: a crash mid-append must not break every later read."""
        path = str(tmp_path / "results.jsonl")
        write_lines(path, line(row(0)), line(row(1)), b'{"fingerprint": "fp-2", "met')
        store = ResultStore(path)
        rows = store.rows()  # must not raise json.JSONDecodeError
        assert [entry["fingerprint"] for entry in rows] == ["fp-0", "fp-1"]

    def test_torn_tail_is_quarantined_with_reason(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        torn = b'{"fingerprint": "fp-1", "tru'
        write_lines(path, line(row(0)), torn)
        ResultStore(path).rows()
        sidecar = quarantine_dir(path)
        bins = [name for name in os.listdir(sidecar) if name.endswith(".bin")]
        assert len(bins) == 1
        assert open(os.path.join(sidecar, bins[0]), "rb").read() == torn
        with open(os.path.join(sidecar, bins[0] + ".reason.json"), encoding="utf-8") as handle:
            assert json.load(handle)["reason"] == "torn_final_line"

    def test_heal_torn_tail_truncates_back_to_valid_prefix(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        write_lines(path, line(row(0)), b"partial")
        store = ResultStore(path)
        assert store.heal_torn_tail() is True
        assert open(path, "rb").read() == line(row(0))
        assert store.heal_torn_tail() is False  # healthy file: nothing to do

    def test_append_after_crash_heals_first(self, tmp_path):
        """Appending onto an unhealed torn tail must not corrupt both rows."""
        path = str(tmp_path / "results.jsonl")
        write_lines(path, line(row(0)), b'{"fingerprint": "fp-1"')
        store = ResultStore(path)
        store.append(row(2))
        assert [entry["fingerprint"] for entry in store.rows()] == ["fp-0", "fp-2"]

    def test_whole_file_one_torn_line(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        write_lines(path, b'{"never finis')
        store = ResultStore(path)
        assert store.rows() == []
        assert store.heal_torn_tail() is True
        assert os.path.getsize(path) == 0


class TestMidFileDamage:
    def test_mid_file_damage_raises_pointing_at_recover(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        write_lines(path, line(row(0)), b"not json at all\n", line(row(2)))
        with pytest.raises(StoreError, match="recover"):
            ResultStore(path).rows()

    def test_recover_quarantines_bad_lines_and_keeps_the_rest(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        write_lines(
            path,
            line(row(0)),
            b"not json at all\n",
            line(row(2)),
            b'["a list is not a row"]\n',
            line(row(4)),
        )
        store = ResultStore(path)
        report = store.recover()
        assert report["rows_kept"] == 3
        assert report["lines_quarantined"] == 2
        assert [entry["fingerprint"] for entry in store.rows()] == ["fp-0", "fp-2", "fp-4"]
        sidecar = quarantine_dir(path)
        assert len([n for n in os.listdir(sidecar) if n.endswith(".bin")]) == 2

    def test_recover_on_healthy_store_is_a_noop(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        write_lines(path, line(row(0)), line(row(1)))
        report = ResultStore(path).recover()
        assert report["rows_kept"] == 2
        assert report["lines_quarantined"] == 0


class TestInjectedAppendFaults:
    def test_crash_mid_append_recovers_by_fingerprint(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path)
        store.append(row(0))
        plan = FaultPlan(
            specs=(FaultSpec(point="store.append", kind="torn_write", offset=9),)
        )
        with use(plan):
            with pytest.raises(InjectedCrash):
                store.append(row(1))
        # The "restarted" writer re-appends whatever fingerprint is missing.
        if "fp-1" not in store.fingerprints():
            store.append(row(1))
        assert [entry["fingerprint"] for entry in store.rows()] == ["fp-0", "fp-1"]

    def test_lying_fsync_detected_by_reconcile(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path)
        plan = FaultPlan(
            specs=(FaultSpec(point="store.append", kind="fsync_loss", lost_bytes=10),)
        )
        with use(plan):
            store.append(row(0))  # reports success, tail bytes never landed
        assert "fp-0" not in store.fingerprints()
        store.append(row(0))
        assert [entry["fingerprint"] for entry in store.rows()] == ["fp-0"]
