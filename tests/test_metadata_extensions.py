"""Unit tests for the extension popularity model (Figure 2(e))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metadata.extensions import (
    DEFAULT_EXTENSION_MODEL,
    DEFAULT_EXTENSIONS_BY_BYTES,
    DEFAULT_EXTENSIONS_BY_COUNT,
    ExtensionPopularityModel,
    content_kind_for_extension,
)


class TestDefaults:
    def test_top_20_extensions_by_count(self):
        assert len(DEFAULT_EXTENSIONS_BY_COUNT) == 20
        assert len(DEFAULT_EXTENSIONS_BY_BYTES) == 20

    def test_popular_extensions_cover_roughly_half_of_files(self):
        total = sum(DEFAULT_EXTENSIONS_BY_COUNT.values())
        assert 0.4 < total < 0.6

    def test_paper_figure_extensions_present(self):
        for extension in ("cpp", "dll", "exe", "gif", "h", "htm", "jpg", "null", "txt"):
            assert extension in DEFAULT_EXTENSIONS_BY_COUNT


class TestContentKinds:
    @pytest.mark.parametrize(
        "extension,kind",
        [
            ("txt", "text"),
            ("htm", "html"),
            ("jpg", "image"),
            ("mp3", "audio"),
            ("avi", "video"),
            ("zip", "archive"),
            ("dll", "binary"),
            ("sh", "script"),
            ("", "binary"),
            ("xyzzy", "binary"),
            (".TXT", "text"),
        ],
    )
    def test_mapping(self, extension, kind):
        assert content_kind_for_extension(extension) == kind


class TestModel:
    def test_validation_of_shares(self):
        with pytest.raises(ValueError):
            ExtensionPopularityModel(by_count={"a": 0.7, "b": 0.5}, by_bytes={})
        with pytest.raises(ValueError):
            ExtensionPopularityModel(by_count={"a": -0.1}, by_bytes={})
        with pytest.raises(ValueError):
            ExtensionPopularityModel(by_count={}, by_bytes={}, random_extension_length=0)

    def test_count_distribution_includes_others(self):
        dist = DEFAULT_EXTENSION_MODEL.count_distribution()
        assert "others" in dist.labels
        assert dist.probability_of("others") == pytest.approx(
            1.0 - DEFAULT_EXTENSION_MODEL.popular_fraction(), abs=1e-9
        )

    def test_sample_extensions_frequencies(self, rng):
        extensions = DEFAULT_EXTENSION_MODEL.sample_extensions(rng, 30_000)
        counts = {}
        for extension in extensions:
            counts[extension] = counts.get(extension, 0) + 1
        dll_share = counts.get("dll", 0) / len(extensions)
        assert dll_share == pytest.approx(DEFAULT_EXTENSIONS_BY_COUNT["dll"], abs=0.01)

    def test_null_bucket_becomes_empty_extension(self, rng):
        extensions = DEFAULT_EXTENSION_MODEL.sample_extensions(rng, 10_000)
        assert "" in extensions
        assert "null" not in extensions

    def test_unpopular_files_get_random_three_letter_extensions(self, rng):
        model = ExtensionPopularityModel(by_count={"txt": 0.01}, by_bytes={"txt": 0.01})
        extensions = model.sample_extensions(rng, 2_000)
        random_ones = [e for e in extensions if e != "txt" and e != ""]
        assert random_ones, "expected mostly random extensions"
        assert all(len(e) == 3 and e.isalpha() and e.islower() for e in random_ones)

    def test_random_extension_length_configurable(self, rng):
        model = ExtensionPopularityModel(by_count={}, by_bytes={}, random_extension_length=5)
        assert len(model.random_extension(rng)) == 5

    def test_observed_shares_merges_unknown_into_others(self):
        observed = {"dll": 50, "txt": 30, "weird": 20}
        shares = DEFAULT_EXTENSION_MODEL.observed_shares(observed)
        assert shares["dll"] == pytest.approx(0.5)
        assert shares["others"] == pytest.approx(0.2)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_observed_shares_empty_counts(self):
        shares = DEFAULT_EXTENSION_MODEL.observed_shares({})
        assert all(value == 0.0 for value in shares.values())

    def test_desired_shares_sum_to_one(self):
        shares = DEFAULT_EXTENSION_MODEL.desired_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_sampling_reproducible(self):
        a = DEFAULT_EXTENSION_MODEL.sample_extensions(np.random.default_rng(3), 100)
        b = DEFAULT_EXTENSION_MODEL.sample_extensions(np.random.default_rng(3), 100)
        assert a == b
