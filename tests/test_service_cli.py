"""``impressions service ...`` verbs through the real top-level CLI."""

from __future__ import annotations

import json

import pytest

from repro.core.cli import main

SPEC_DOC = {
    "name": "svc-cli",
    "base": {"num_directories": 6, "fs_size_bytes": 8 * 1024 * 1024},
    "sweep": {"num_files": [30], "seed": [1]},
    "steps": [{"step": "summary"}],
}


@pytest.fixture()
def farm_dir(tmp_path):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SPEC_DOC))
    return {
        "spec": str(spec_path),
        "queue": str(tmp_path / "q.sqlite"),
        "store": str(tmp_path / "r.jsonl"),
    }


def _submit(farm_dir) -> dict:
    return [
        "service",
        "submit",
        farm_dir["spec"],
        "--queue",
        farm_dir["queue"],
        "--store",
        farm_dir["store"],
    ]


class TestServiceCli:
    def test_submit_then_worker_then_status(self, farm_dir, capsys):
        assert main(_submit(farm_dir) + ["--json"]) == 0
        submitted = json.loads(capsys.readouterr().out)
        assert submitted["enqueued"] == 1

        code = main(
            [
                "service",
                "worker",
                "--queue",
                farm_dir["queue"],
                "--store",
                farm_dir["store"],
                "--drain",
                "--poll-interval",
                "0.05",
                "--json",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["jobs_done"] == 1

        assert main(["service", "status", "--queue", farm_dir["queue"], "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["stats"]["jobs"]["done"] == 1
        assert status["campaigns"][0]["state"] == "complete"

    def test_watch_exits_zero_on_complete_campaign(self, farm_dir, capsys):
        main(_submit(farm_dir))
        main(
            [
                "service",
                "worker",
                "--queue",
                farm_dir["queue"],
                "--store",
                farm_dir["store"],
                "--drain",
                "--poll-interval",
                "0.05",
            ]
        )
        capsys.readouterr()
        code = main(
            ["service", "watch", "c1", "--queue", farm_dir["queue"], "--json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["state"] == "complete"

    def test_submit_wait_blocks_until_worker_finishes(self, farm_dir, capsys):
        """--wait with a worker draining in a thread completes end to end."""
        import threading

        def drain_soon() -> None:
            main(
                [
                    "service",
                    "worker",
                    "--queue",
                    farm_dir["queue"],
                    "--store",
                    farm_dir["store"],
                    "--poll-interval",
                    "0.05",
                    "--max-jobs",
                    "1",
                ]
            )

        thread = threading.Thread(target=drain_soon)
        thread.start()
        try:
            code = main(
                _submit(farm_dir)
                + ["--wait", "--poll-interval", "0.05", "--timeout", "60", "--json"]
            )
        finally:
            thread.join(timeout=60.0)
        assert code == 0
        # stdout interleaves the worker thread's summary with submit's JSON
        # payload (the only line with a "failed" key), in either order.
        (payload,) = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{") and '"failed"' in line
        ]
        assert payload["failed"] is False
        assert payload["campaign"]["state"] == "complete"

    def test_gc_reports_collected_rows(self, farm_dir, capsys):
        main(_submit(farm_dir))
        main(
            [
                "service",
                "worker",
                "--queue",
                farm_dir["queue"],
                "--store",
                farm_dir["store"],
                "--drain",
                "--poll-interval",
                "0.05",
            ]
        )
        capsys.readouterr()
        code = main(["service", "gc", "--queue", farm_dir["queue"], "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["jobs_collected"] == 1

    def test_endpointless_verbs_fail_clearly(self, farm_dir):
        with pytest.raises(SystemExit, match="--url|--queue"):
            main(["service", "status"])

    def test_drain_requires_a_server(self, farm_dir):
        with pytest.raises(SystemExit, match="running service"):
            main(["service", "drain", "--queue", farm_dir["queue"]])
