"""End-to-end tests of ``impressions campaign run|list|report|compare``."""

from __future__ import annotations

import json

import pytest

from repro.campaign.report import ComparisonResult, MetricDelta, compare, metric_direction
from repro.campaign.store import ResultStore
from repro.core.cli import main

SPEC_DOC = {
    "name": "cli",
    "base": {"num_directories": 12, "fs_size_bytes": 32 * 1024 * 1024},
    "sweep": {"num_files": [60, 80], "seed": [1, 2]},
    "steps": [{"step": "summary"}, {"step": "find"}],
}


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    """A spec file plus a store populated through the real CLI."""
    directory = tmp_path_factory.mktemp("campaign_cli")
    spec_path = directory / "spec.json"
    spec_path.write_text(json.dumps(SPEC_DOC))
    store_path = directory / "results.jsonl"
    code = main(
        ["campaign", "run", str(spec_path), "--store", str(store_path), "--quiet"]
    )
    assert code == 0
    return directory


class TestRun:
    def test_rerun_skips_and_reports_json(self, campaign_dir, capsys):
        code = main(
            [
                "campaign",
                "run",
                str(campaign_dir / "spec.json"),
                "--store",
                str(campaign_dir / "results.jsonl"),
                "--json",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["executed"] == 0
        assert summary["skipped_existing"] == 4
        assert summary["scenarios"] == 4

    def test_parallel_run_into_fresh_store(self, campaign_dir, capsys):
        store = campaign_dir / "parallel.jsonl"
        code = main(
            [
                "campaign",
                "run",
                str(campaign_dir / "spec.json"),
                "--store",
                str(store),
                "--workers",
                "2",
                "--json",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["executed"] == 4
        assert len(ResultStore(str(store)).rows()) == 4

    def test_bad_spec_is_a_clean_error(self, campaign_dir, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(dict(SPEC_DOC, sweep={"bogus_knob": [1]})))
        with pytest.raises(SystemExit, match="bogus_knob"):
            main(["campaign", "run", str(bad), "--store", str(tmp_path / "s.jsonl")])


class TestList:
    def test_list_shows_completion(self, campaign_dir, capsys):
        code = main(
            [
                "campaign",
                "list",
                str(campaign_dir / "spec.json"),
                "--store",
                str(campaign_dir / "results.jsonl"),
                "--json",
            ]
        )
        assert code == 0
        scenarios = json.loads(capsys.readouterr().out)
        assert len(scenarios) == 4
        assert all(entry["completed"] for entry in scenarios)

    def test_list_without_store_is_pending(self, campaign_dir, capsys):
        code = main(["campaign", "list", str(campaign_dir / "spec.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("pending") == 4


class TestReport:
    def test_report_renders_axes_and_metrics(self, campaign_dir, capsys):
        code = main(
            ["campaign", "report", "--store", str(campaign_dir / "results.jsonl")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "num_files" in out and "seed" in out
        assert "find.elapsed_ms" in out

    def test_report_metric_filter_and_json(self, campaign_dir, capsys):
        code = main(
            [
                "campaign",
                "report",
                "--store",
                str(campaign_dir / "results.jsonl"),
                "--metric",
                "summary.files",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 4
        assert "summary.files" in payload["metrics"]

    def test_unknown_metric_is_an_error(self, campaign_dir):
        with pytest.raises(SystemExit, match="unknown metric"):
            main(
                [
                    "campaign",
                    "report",
                    "--store",
                    str(campaign_dir / "results.jsonl"),
                    "--metric",
                    "nope.nothing",
                ]
            )

    def test_missing_store_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no such store"):
            main(["campaign", "report", "--store", str(tmp_path / "absent.jsonl")])


class TestCompare:
    def test_identical_stores_have_no_regressions(self, campaign_dir, capsys):
        store = str(campaign_dir / "results.jsonl")
        code = main(["campaign", "compare", store, store, "--json"])
        assert code == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["regressions"] == []
        assert diff["identical_rows"] == 4

    def test_injected_regression_is_flagged_and_exits_nonzero(
        self, campaign_dir, tmp_path, capsys
    ):
        baseline = ResultStore(str(campaign_dir / "results.jsonl"))
        regressed = ResultStore(str(tmp_path / "regressed.jsonl"))
        for index, row in enumerate(baseline):
            if index == 0:
                row["metrics"]["find.elapsed_ms"] *= 1.5
            regressed.append(row)
        code = main(
            [
                "campaign",
                "compare",
                str(campaign_dir / "results.jsonl"),
                str(regressed.path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out
        assert "find.elapsed_ms" in out

    def test_improvement_is_not_a_regression(self, campaign_dir, tmp_path, capsys):
        baseline = ResultStore(str(campaign_dir / "results.jsonl"))
        improved = ResultStore(str(tmp_path / "improved.jsonl"))
        for index, row in enumerate(baseline):
            if index == 0:
                row["metrics"]["find.elapsed_ms"] *= 0.5
            improved.append(row)
        code = main(
            [
                "campaign",
                "compare",
                str(campaign_dir / "results.jsonl"),
                str(improved.path),
                "--json",
            ]
        )
        assert code == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["regressions"] == []
        assert len(diff["improvements"]) == 1

    def test_truncated_candidate_fails_the_gate(self, campaign_dir, tmp_path, capsys):
        baseline = ResultStore(str(campaign_dir / "results.jsonl"))
        truncated = ResultStore(str(tmp_path / "truncated.jsonl"))
        truncated.append(baseline.rows()[0])
        code = main(
            [
                "campaign",
                "compare",
                str(baseline.path),
                str(truncated.path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "missing baseline scenario" in out

    def test_allow_missing_tolerates_truncated_candidate(
        self, campaign_dir, tmp_path, capsys
    ):
        baseline = ResultStore(str(campaign_dir / "results.jsonl"))
        truncated = ResultStore(str(tmp_path / "truncated2.jsonl"))
        truncated.append(baseline.rows()[0])
        code = main(
            [
                "campaign",
                "compare",
                str(baseline.path),
                str(truncated.path),
                "--allow-missing",
                "--json",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["failed"] is False

    def test_tolerance_suppresses_small_changes(self, campaign_dir, tmp_path, capsys):
        baseline = ResultStore(str(campaign_dir / "results.jsonl"))
        nudged = ResultStore(str(tmp_path / "nudged.jsonl"))
        for index, row in enumerate(baseline):
            if index == 0:
                row["metrics"]["find.elapsed_ms"] *= 1.04
            nudged.append(row)
        code = main(
            [
                "campaign",
                "compare",
                str(campaign_dir / "results.jsonl"),
                str(nudged.path),
            ]
        )
        assert code == 0


class TestComparisonUnit:
    def test_metric_direction_heuristics(self):
        assert metric_direction("find.elapsed_ms") == "lower"
        assert metric_direction("wall.generate_seconds") == "lower"
        assert metric_direction("trace_replay.skipped") == "lower"
        assert metric_direction("summary.layout_score") == "higher"
        assert metric_direction("replay.cache_hit_ratio") == "higher"
        assert metric_direction("replay.simulated_throughput_ops_s") == "higher"
        assert metric_direction("summary.total_bytes") == "neutral"

    def test_neutral_change_is_drift_not_regression(self):
        base = {"s": {"scenario": "s", "metrics": {"a.total_bytes": 100}}}
        cand = {"s": {"scenario": "s", "metrics": {"a.total_bytes": 200}}}
        diff = compare(base, cand, tolerance=0.05)
        assert not diff.has_regressions
        assert len(diff.drifts) == 1

    def test_zero_baseline_flags_any_nonzero_candidate(self):
        base = {"s": {"scenario": "s", "metrics": {"a.elapsed_ms": 0}}}
        cand = {"s": {"scenario": "s", "metrics": {"a.elapsed_ms": 3}}}
        diff = compare(base, cand, tolerance=0.5)
        assert diff.has_regressions

    def test_disjoint_scenarios_are_reported(self):
        base = {"only_base": {"scenario": "only_base", "metrics": {}}}
        cand = {"only_cand": {"scenario": "only_cand", "metrics": {}}}
        diff = compare(base, cand)
        assert diff.only_in_baseline == ["only_base"]
        assert diff.only_in_candidate == ["only_cand"]

    def test_render_text_mentions_regressions(self):
        result = ComparisonResult(tolerance=0.05)
        result.regressions.append(
            MetricDelta("s", "a.elapsed_ms", 1.0, 2.0, 1.0, "regression")
        )
        assert "REGRESSION" in result.render_text()
