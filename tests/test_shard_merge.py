"""Shard merging: tree grafting, disk extent adoption, content preservation."""

from __future__ import annotations

import hashlib

import pytest

from repro.core.config import ImpressionsConfig
from repro.content.generators import ContentPolicy
from repro.layout.disk import AllocationError, SimulatedDisk
from repro.materialize import ManifestSink, materialize_image
from repro.namespace.tree import FileNode, FileSystemTree
from repro.pipeline.runner import default_pipeline, image_fingerprint
from repro.shard import (
    ShardMergeError,
    build_plan,
    generate_sharded,
    image_content_digests,
    manifest_content_digests,
    merge_shards,
)

CONFIG = ImpressionsConfig(
    num_files=150, num_directories=30, seed=5, fs_size_bytes=12 * 1024 * 1024
)


def _shard_images(config, num_shards):
    plan = build_plan(config, num_shards)
    return plan, [default_pipeline().run(cfg).image for cfg in plan.configs()]


# --- SimulatedDisk.adopt_extents ------------------------------------------------


class TestAdoptExtents:
    def test_adopts_and_preserves_fragmentation(self):
        disk = SimulatedDisk(100)
        disk.adopt_extents("a", [(0, 3), (10, 2)])
        assert disk.extents_of("a") == [(0, 3), (10, 2)]
        assert disk.block_count("a") == 5
        assert disk.run_count("a") == 2
        assert disk.free_blocks == 95
        # candidates = 5 - 1 = 4, optimal = 5 - 2 = 3
        assert disk.layout_score() == pytest.approx(3 / 4)

    def test_merges_adjacent_input_extents(self):
        disk = SimulatedDisk(100)
        disk.adopt_extents("a", [(0, 3), (3, 2)])
        assert disk.extents_of("a") == [(0, 5)]
        assert disk.run_count("a") == 1

    def test_zero_extent_file_is_registered(self):
        disk = SimulatedDisk(100)
        disk.adopt_extents("empty", [])
        assert disk.has_file("empty")
        assert disk.block_count("empty") == 0
        assert disk.num_files == 1

    def test_rejects_overlap_with_allocated_space(self):
        disk = SimulatedDisk(100)
        disk.adopt_extents("a", [(0, 10)])
        with pytest.raises(AllocationError):
            disk.adopt_extents("b", [(5, 10)])
        # Failed adoption must not have mutated anything.
        assert disk.free_blocks == 90
        assert not disk.has_file("b")

    def test_rejects_self_overlapping_extents_without_mutation(self):
        disk = SimulatedDisk(100)
        with pytest.raises(ValueError, match="overlap"):
            disk.adopt_extents("a", [(0, 10), (5, 3)])
        assert disk.free_blocks == 100
        assert not disk.has_file("a")

    def test_rejects_out_of_range_and_duplicates(self):
        disk = SimulatedDisk(100)
        with pytest.raises(AllocationError):
            disk.adopt_extents("a", [(95, 10)])
        disk.adopt_extents("a", [(0, 1)])
        with pytest.raises(ValueError, match="already allocated"):
            disk.adopt_extents("a", [(10, 1)])
        with pytest.raises(ValueError, match="non-positive"):
            disk.adopt_extents("b", [(10, 0)])

    def test_interoperates_with_allocator(self):
        disk = SimulatedDisk(100)
        disk.adopt_extents("adopted", [(20, 5)])
        blocks = disk.allocate("organic", 30 * disk.geometry.block_size)
        assert len(blocks) == 30
        assert set(blocks).isdisjoint(range(20, 25))
        disk.delete("adopted")
        assert disk.free_blocks == 70


# --- FileSystemTree adoption ----------------------------------------------------


class TestTreeAdoption:
    def test_adopt_file_renumbers_and_reparents(self):
        donor = FileSystemTree()
        node = donor.create_file(donor.root, size=10, extension="txt")
        target = FileSystemTree()
        target.create_file(target.root, size=1, extension="a")
        adopted = target.adopt_file(target.root, node)
        assert adopted is node
        assert node.file_id == 1
        assert node.parent is target.root
        assert node.depth == 1
        assert target.file_count == 2

    def test_adopt_subtree_fixes_depths_and_ids(self):
        donor = FileSystemTree()
        outer = donor.create_directory(donor.root, "outer")
        inner = donor.create_directory(outer, "inner")
        donor.create_file(outer, size=5, extension="x")
        donor.create_file(inner, size=6, extension="y")

        target = FileSystemTree()
        deep = target.create_directory(target.root, "deep")
        target.adopt_subtree(deep, outer)

        assert outer.parent is deep
        assert outer.depth == 2
        assert inner.depth == 3
        assert target.directory_count == 4  # root, deep, outer, inner
        assert target.file_count == 2
        assert sorted(node.file_id for node in target.files) == [0, 1]
        assert {node.path() for node in target.files} == {
            "/deep/outer/file000000.x",
            "/deep/outer/inner/file000001.y",
        }


# --- merge_shards ---------------------------------------------------------------


class TestMergeShards:
    def test_merged_counts_and_layout(self):
        plan, images = _shard_images(CONFIG, 3)
        shard_files = sum(image.file_count for image in images)
        shard_bytes = sum(image.total_bytes for image in images)
        shard_blocks = sum(image.disk.num_blocks for image in images)
        merged = merge_shards(plan, images)
        assert merged.file_count == shard_files == 150
        assert merged.total_bytes == shard_bytes
        assert merged.disk.num_blocks == shard_blocks
        # Every tree file is on the merged disk, under its merged path.
        for node in merged.tree.files:
            assert merged.disk.has_file(node.path())
            assert merged.disk.extents_of(node.path()) == node.extents
        assert 0.0 < merged.achieved_layout_score() <= 1.0

    def test_top_level_collisions_renamed_deterministically(self):
        plan, images = _shard_images(CONFIG, 3)
        merged = merge_shards(plan, images)
        top_level = [child.name for child in merged.tree.root.subdirectories] + [
            child.name for child in merged.tree.root.files
        ]
        assert len(top_level) == len(set(top_level))
        # Shard name counters all start at zero, so later shards must have
        # been renamed with their shard prefix.
        assert any(name.startswith("s01-") or name.startswith("s02-") for name in top_level)

    def test_merge_is_deterministic(self):
        plan, images_a = _shard_images(CONFIG, 3)
        _, images_b = _shard_images(CONFIG, 3)
        assert image_fingerprint(merge_shards(plan, images_a)) == image_fingerprint(
            merge_shards(plan, images_b)
        )

    def test_merged_report_records_shard_provenance(self):
        plan, images = _shard_images(CONFIG, 2)
        fingerprints = [image_fingerprint(image) for image in images]
        merged = merge_shards(plan, images, shard_fingerprints=fingerprints)
        derived = merged.report.derived
        assert derived["shards"] == 2
        assert derived["shard_plan_fingerprint"] == plan.fingerprint()
        assert derived["shard_fingerprints"] == fingerprints
        assert derived["file_count"] == merged.file_count
        assert merged.report.seed == CONFIG.seed

    def test_rejects_wrong_image_count(self):
        plan, images = _shard_images(CONFIG, 2)
        with pytest.raises(ShardMergeError, match="2 shards"):
            merge_shards(plan, images[:1])

    def test_rejects_mixed_disk_presence(self):
        plan, images = _shard_images(CONFIG, 2)
        images[1].disk = None
        with pytest.raises(ShardMergeError, match="mix"):
            merge_shards(plan, images)


# --- Content preservation -------------------------------------------------------


CONTENT_CONFIG = ImpressionsConfig(
    num_files=60,
    num_directories=12,
    seed=8,
    fs_size_bytes=4 * 1024 * 1024,
    generate_content=True,
    content=ContentPolicy(text_model="hybrid"),
)


class TestContentPreservation:
    def test_adopted_files_keep_their_bytes(self):
        plan, images = _shard_images(CONTENT_CONFIG, 3)
        before = {}
        for spec, image in zip(plan.shards, images):
            for node in image.tree.files:
                before[(spec.index, node.file_id)] = hashlib.sha256(
                    image.file_content(node)
                ).hexdigest()
        merged = merge_shards(plan, images)
        after = sorted(
            hashlib.sha256(merged.file_content(node)).hexdigest()
            for node in merged.tree.files
        )
        assert after == sorted(before.values())
        # Every adopted file carries its generating pair.
        assert all(node.content_key is not None for node in merged.tree.files)

    def test_manifest_content_digests_round_trip(self, tmp_path):
        plan, images = _shard_images(CONTENT_CONFIG, 3)
        digests = []
        for spec, image in zip(plan.shards, images):
            path = tmp_path / f"shard{spec.index}.jsonl"
            materialize_image(image, ManifestSink(str(path), digest_content=True))
            digests.extend(manifest_content_digests(str(path)))

        result = generate_sharded(CONTENT_CONFIG, num_shards=3, jobs=1)
        assert sorted(digests) == image_content_digests(result.image)

        merged_manifest = tmp_path / "merged.jsonl"
        materialize_image(
            result.image, ManifestSink(str(merged_manifest), digest_content=True)
        )
        assert manifest_content_digests(str(merged_manifest)) == sorted(digests)

    def test_manifest_without_content_digests_raises(self, tmp_path):
        plan, images = _shard_images(CONTENT_CONFIG, 2)
        path = tmp_path / "plain.jsonl"
        materialize_image(images[0], ManifestSink(str(path)))
        with pytest.raises(ShardMergeError, match="content_sha256"):
            manifest_content_digests(str(path))

    def test_image_content_digests_requires_content(self):
        plan, images = _shard_images(CONFIG, 2)
        merged = merge_shards(plan, images)
        with pytest.raises(ShardMergeError, match="content generator"):
            image_content_digests(merged)
