"""Unit tests for the synthetic empirical-corpus builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.synthetic import DatasetScale, SyntheticDatasetBuilder
from repro.metadata.filesizes import DEFAULT_BODY_MU


class TestScaling:
    def test_size_model_shifts_with_capacity(self):
        builder = SyntheticDatasetBuilder()
        small = builder.size_model_for_capacity(10.0)
        large = builder.size_model_for_capacity(100.0)
        assert small.body.mu == pytest.approx(DEFAULT_BODY_MU)
        assert large.body.mu > small.body.mu

    def test_zero_shift_scale_keeps_defaults(self):
        builder = SyntheticDatasetBuilder(scale=DatasetScale(mu_shift_per_doubling=0.0))
        assert builder.size_model_for_capacity(100.0).body.mu == pytest.approx(DEFAULT_BODY_MU)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDatasetBuilder().size_model_for_capacity(0.0)

    def test_expected_file_count_scales_linearly(self):
        builder = SyntheticDatasetBuilder()
        assert builder.expected_file_count(20.0) == pytest.approx(
            2 * builder.expected_file_count(10.0), rel=0.01
        )


class TestSnapshotSynthesis:
    def test_snapshot_population(self):
        builder = SyntheticDatasetBuilder(seed=1)
        snapshot = builder.build_snapshot(capacity_gib=0.2, max_files=500)
        assert snapshot.file_count == 500
        assert snapshot.directory_count >= 2
        assert snapshot.capacity_bytes == int(0.2 * 1024**3)

    def test_max_files_caps_population(self):
        builder = SyntheticDatasetBuilder(seed=1)
        snapshot = builder.build_snapshot(capacity_gib=10.0, max_files=200)
        assert snapshot.file_count == 200

    def test_directory_file_counts_consistent(self):
        builder = SyntheticDatasetBuilder(seed=2)
        snapshot = builder.build_snapshot(capacity_gib=0.1, max_files=400)
        assert sum(snapshot.directory_file_counts()) == snapshot.file_count
        for record in snapshot.files:
            assert 0 <= record.directory_id < snapshot.directory_count

    def test_file_depths_are_directory_depth_plus_one(self):
        builder = SyntheticDatasetBuilder(seed=3)
        snapshot = builder.build_snapshot(capacity_gib=0.1, max_files=300)
        directory_depths = {record.directory_id: record.depth for record in snapshot.directories}
        for record in snapshot.files:
            assert record.depth == directory_depths[record.directory_id] + 1

    def test_reproducible_from_seed(self):
        a = SyntheticDatasetBuilder(seed=5).build_snapshot(capacity_gib=0.1, max_files=200)
        b = SyntheticDatasetBuilder(seed=5).build_snapshot(capacity_gib=0.1, max_files=200)
        assert a.file_sizes() == b.file_sizes()
        assert a.extension_counts() == b.extension_counts()

    def test_different_seeds_differ(self):
        a = SyntheticDatasetBuilder(seed=5).build_snapshot(capacity_gib=0.1, max_files=200)
        b = SyntheticDatasetBuilder(seed=6).build_snapshot(capacity_gib=0.1, max_files=200)
        assert a.file_sizes() != b.file_sizes()

    def test_larger_capacity_has_larger_typical_files(self):
        builder = SyntheticDatasetBuilder(seed=7)
        small = builder.build_snapshot(capacity_gib=10.0, max_files=800, seed=1)
        large = builder.build_snapshot(capacity_gib=100.0, max_files=800, seed=1)
        assert np.median(large.file_sizes()) > np.median(small.file_sizes())


class TestCorpus:
    def test_corpus_keyed_by_capacity(self):
        builder = SyntheticDatasetBuilder(seed=9)
        corpus = builder.build_corpus([1.0, 2.0], max_files_per_snapshot=100)
        assert set(corpus) == {1.0, 2.0}
        assert all(snapshot.file_count == 100 for snapshot in corpus.values())

    def test_corpus_snapshots_use_distinct_seeds(self):
        builder = SyntheticDatasetBuilder(seed=9)
        corpus = builder.build_corpus([1.0, 1.0 + 1e-9], max_files_per_snapshot=100)
        sizes = [snapshot.file_sizes() for snapshot in corpus.values()]
        assert sizes[0] != sizes[1]
