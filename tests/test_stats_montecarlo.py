"""Unit tests for repro.stats.montecarlo (discrete sampling helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.montecarlo import DynamicWeightedSampler, sample_discrete, sample_discrete_many


class TestSampleDiscrete:
    def test_single_outcome(self, rng):
        assert sample_discrete(rng, [0.0, 1.0, 0.0]) == 1

    def test_frequencies_follow_weights(self, rng):
        draws = [sample_discrete(rng, [1.0, 3.0]) for _ in range(4_000)]
        assert np.mean(draws) == pytest.approx(0.75, abs=0.03)

    def test_empty_weights_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_discrete(rng, [])

    def test_negative_weights_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_discrete(rng, [1.0, -1.0])

    def test_zero_total_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_discrete(rng, [0.0, 0.0])

    def test_many_variant(self, rng):
        draws = sample_discrete_many(rng, [0.5, 0.5], size=100)
        assert draws.shape == (100,)
        assert set(np.unique(draws)).issubset({0, 1})

    def test_many_negative_size_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_discrete_many(rng, [1.0], size=-1)


class TestDynamicWeightedSampler:
    def test_total_weight_tracks_updates(self):
        sampler = DynamicWeightedSampler([1.0, 2.0, 3.0])
        assert sampler.total_weight == pytest.approx(6.0)
        sampler.update(0, 5.0)
        assert sampler.total_weight == pytest.approx(10.0)
        sampler.increment(1, 1.0)
        assert sampler.weight(1) == pytest.approx(3.0)

    def test_add_appends_items(self):
        sampler = DynamicWeightedSampler([1.0])
        index = sampler.add(4.0)
        assert index == 1
        assert len(sampler) == 2
        assert sampler.total_weight == pytest.approx(5.0)

    def test_growth_beyond_initial_capacity(self):
        sampler = DynamicWeightedSampler(capacity=2)
        for value in range(50):
            sampler.add(float(value + 1))
        assert len(sampler) == 50
        assert sampler.total_weight == pytest.approx(sum(range(1, 51)))

    def test_sampling_respects_weights(self, rng):
        sampler = DynamicWeightedSampler([1.0, 9.0])
        draws = [sampler.sample(rng) for _ in range(5_000)]
        assert np.mean(draws) == pytest.approx(0.9, abs=0.02)

    def test_zero_weight_items_never_sampled(self, rng):
        sampler = DynamicWeightedSampler([0.0, 1.0, 0.0, 1.0])
        draws = {sampler.sample(rng) for _ in range(500)}
        assert draws.issubset({1, 3})

    def test_sampling_matches_frequencies_after_updates(self, rng):
        sampler = DynamicWeightedSampler([1.0, 1.0, 1.0])
        sampler.update(2, 8.0)
        draws = np.asarray([sampler.sample(rng) for _ in range(8_000)])
        assert (draws == 2).mean() == pytest.approx(0.8, abs=0.02)

    def test_total_zero_weight_cannot_sample(self, rng):
        sampler = DynamicWeightedSampler([0.0, 0.0])
        with pytest.raises(ValueError):
            sampler.sample(rng)

    def test_index_bounds_checked(self):
        sampler = DynamicWeightedSampler([1.0])
        with pytest.raises(IndexError):
            sampler.update(5, 1.0)
        with pytest.raises(IndexError):
            sampler.weight(-1)

    def test_negative_weight_rejected(self):
        sampler = DynamicWeightedSampler([1.0])
        with pytest.raises(ValueError):
            sampler.update(0, -1.0)
        with pytest.raises(ValueError):
            sampler.add(-2.0)

    def test_preferential_attachment_pattern(self, rng):
        """The namespace generator's usage pattern: weights grow as items win."""
        sampler = DynamicWeightedSampler([2.0])
        parents = []
        for _ in range(300):
            parent = sampler.sample(rng)
            parents.append(parent)
            sampler.increment(parent, 1.0)
            sampler.add(2.0)
        # Early items accumulate more children than late items (rich get richer).
        early = sum(1 for p in parents if p < 10)
        late = sum(1 for p in parents if p >= 290)
        assert early > late
