"""Stage protocol, wiring validation, registry, and fingerprint behaviour."""

from __future__ import annotations

import pytest

from repro.core.config import ImpressionsConfig
from repro.pipeline import (
    GenerationContext,
    Pipeline,
    Stage,
    StageWiringError,
    default_pipeline,
)
from repro.pipeline.registry import build_stage, run_post_stage, stage_names
from repro.pipeline.stages import (
    GENERATION_STAGES,
    DirectoryStructureStage,
    FileSizesStage,
    OnDiskCreationStage,
)

CONFIG = ImpressionsConfig(fs_size_bytes=None, num_files=120, num_directories=24, seed=5)


@pytest.fixture(scope="module")
def scratch_image():
    """A private image for post-stage runs (replay mutates the disk, so the
    shared read-only ``small_image`` fixture must not be used here)."""
    return default_pipeline().run(CONFIG).image


class TestWiring:
    def test_default_pipeline_has_the_six_paper_phases(self):
        assert default_pipeline().stage_names == (
            "directory_structure",
            "file_sizes",
            "extensions",
            "depth_and_placement",
            "content",
            "on_disk_creation",
        )

    def test_empty_pipeline_rejected(self):
        with pytest.raises(StageWiringError):
            Pipeline([])

    def test_missing_requirement_rejected(self):
        # depth_and_placement needs tree+sizes+extensions; alone it cannot run.
        with pytest.raises(StageWiringError, match="requires"):
            default_pipeline().subset(["directory_structure", "depth_and_placement"])

    def test_pipeline_without_tree_provider_rejected(self):
        with pytest.raises(StageWiringError, match="tree"):
            Pipeline([FileSizesStage()])

    def test_duplicate_generation_stage_rejected(self):
        with pytest.raises(StageWiringError, match="duplicate"):
            Pipeline([DirectoryStructureStage(), DirectoryStructureStage()])

    def test_generation_stage_after_post_stage_rejected(self):
        replay = build_stage("trace_replay", {"ops": 10})
        stages = [stage_class() for stage_class in GENERATION_STAGES]
        with pytest.raises(StageWiringError, match="after a post-generation"):
            Pipeline(stages[:5] + [replay, stages[5]])

    def test_duplicate_post_stage_label_rejected(self):
        replays = [
            build_stage("trace_replay", {"kind": "zipf", "ops": 10}),
            build_stage("trace_replay", {"kind": "churn", "ops": 10}),
        ]
        with pytest.raises(StageWiringError, match="label"):
            default_pipeline(replays)

    def test_distinct_post_stage_labels_coexist(self):
        replays = [
            build_stage("trace_replay", {"kind": "zipf", "ops": 100, "label": "hot"}),
            build_stage("trace_replay", {"kind": "churn", "ops": 100, "label": "cold"}),
        ]
        result = default_pipeline(replays).run(CONFIG)
        assert {"hot", "cold"} <= set(result.context.metrics)

    def test_subset_unknown_stage_rejected(self):
        with pytest.raises(StageWiringError, match="unknown stage"):
            default_pipeline().subset(["directory_structure", "nope"])

    def test_valid_prefix_subset_runs_without_disk(self):
        pipeline = default_pipeline().subset(
            ["directory_structure", "file_sizes", "extensions", "depth_and_placement"]
        )
        image = pipeline.run(CONFIG).image
        assert image.file_count == 120
        assert image.disk is None
        assert image.achieved_layout_score() == 1.0


class TestFingerprints:
    def test_fingerprints_are_deterministic(self):
        first = default_pipeline().fingerprints(CONFIG)
        second = default_pipeline().fingerprints(CONFIG)
        assert first == second
        assert len(set(first)) == len(first)  # chained digests never collide

    def test_seed_changes_every_fingerprint(self):
        base = default_pipeline().fingerprints(CONFIG)
        other = default_pipeline().fingerprints(CONFIG.with_overrides(seed=6))
        assert all(a != b for a, b in zip(base, other))

    def test_layout_knob_only_changes_the_layout_stage(self):
        base = default_pipeline().fingerprints(CONFIG)
        swept = default_pipeline().fingerprints(CONFIG.with_overrides(layout_score=0.7))
        assert swept[:5] == base[:5]
        assert swept[5] != base[5]

    def test_upstream_knob_invalidates_downstream_chain(self):
        base = default_pipeline().fingerprints(CONFIG)
        swept = default_pipeline().fingerprints(CONFIG.with_overrides(num_directories=25))
        # directory count feeds the first stage; everything downstream shifts.
        assert all(a != b for a, b in zip(base, swept))

    def test_describe_includes_fingerprints_and_declarations(self):
        rows = default_pipeline().describe(CONFIG)
        by_name = {row["name"]: row for row in rows}
        assert by_name["on_disk_creation"]["requires"] == ["files"]
        assert by_name["on_disk_creation"]["provides"] == ["disk"]
        assert "layout_score" in by_name["on_disk_creation"]["config_knobs"]
        assert all(len(row["fingerprint"]) == 64 for row in rows)


class TestRegistry:
    def test_generation_and_post_stages_registered(self):
        names = stage_names()
        assert set(names) >= {
            "directory_structure",
            "file_sizes",
            "extensions",
            "depth_and_placement",
            "content",
            "on_disk_creation",
            "trace_replay",
            "trace_aging",
            "bench",
        }

    def test_unknown_stage_name_raises(self):
        with pytest.raises(ValueError, match="unknown stage"):
            build_stage("definitely_not_a_stage")

    def test_post_stage_records_metrics_under_label(self, scratch_image):
        metrics = run_post_stage(
            "trace_replay", scratch_image, CONFIG, {"ops": 200, "label": "hot"}
        )
        assert metrics["executed"] > 0
        assert "simulated_ms" in metrics

    def test_run_post_stage_rejects_generation_stage(self, scratch_image):
        with pytest.raises(Exception, match="generation stage"):
            run_post_stage("file_sizes", scratch_image, CONFIG)

    def test_pipeline_with_post_stage_runs_it_against_the_image(self):
        replay = build_stage("trace_replay", {"ops": 200, "kind": "zipf"})
        result = default_pipeline([replay]).run(CONFIG)
        assert "trace_replay" in result.context.metrics
        assert result.context.metrics["trace_replay"]["executed"] > 0
        post = [execution for execution in result.executions if execution.post_generation]
        assert [execution.name for execution in post] == ["trace_replay"]


class TestContext:
    def test_create_seeds_report_and_rng(self):
        context = GenerationContext.create(CONFIG)
        assert context.report.seed == CONFIG.seed
        assert "file_size_by_count" in context.report.distributions
        assert not context.artifacts

    def test_custom_stage_can_join_the_pipeline(self):
        class TagStage(Stage):
            name = "tag"
            requires = ("tree",)
            provides = ("tag",)
            cacheable = False

            def run(self, context):
                context.metrics["tag"] = {"directories": context.tree.directory_count}

        pipeline = Pipeline([DirectoryStructureStage(), TagStage()])
        # The custom stage has no GenerationTimings field; it must land in extras.
        result = pipeline.run(CONFIG)
        assert result.context.metrics["tag"]["directories"] >= 24
        assert "tag" in result.context.timings.extras
