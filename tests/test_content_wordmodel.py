"""Unit tests for the word models (Section 3.6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.content.wordmodel import (
    TOP_ENGLISH_WORDS,
    WORD_LENGTH_FREQUENCIES,
    HybridWordModel,
    SingleWordModel,
    WordLengthFrequencyModel,
    WordPopularityModel,
)


class TestWordPopularityModel:
    def test_most_common_word_dominates(self, rng):
        model = WordPopularityModel()
        words = model.words(rng, 20_000)
        the_share = words.count("the") / len(words)
        expected = TOP_ENGLISH_WORDS[0][1] / sum(weight for _, weight in TOP_ENGLISH_WORDS)
        assert the_share == pytest.approx(expected, abs=0.01)

    def test_vocabulary_is_bounded(self, rng):
        model = WordPopularityModel()
        words = model.words(rng, 5_000)
        assert len(set(words)) <= model.vocabulary_size

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            WordPopularityModel(vocabulary=[])

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            WordPopularityModel().words(rng, -1)


class TestWordLengthFrequencyModel:
    def test_word_lengths_follow_table(self, rng):
        model = WordLengthFrequencyModel()
        words = model.words(rng, 20_000)
        lengths = np.asarray([len(word) for word in words])
        assert lengths.mean() == pytest.approx(model.mean_word_length(), abs=0.1)

    def test_words_are_lowercase_letters(self, rng):
        model = WordLengthFrequencyModel()
        for word in model.words(rng, 200):
            assert word.isalpha() and word.islower()

    def test_rich_vocabulary(self, rng):
        """Length-model words are effectively all distinct (the long tail)."""
        model = WordLengthFrequencyModel()
        words = model.words(rng, 5_000)
        assert len(set(words)) > 2_000

    def test_mean_word_length_matches_frequencies(self):
        model = WordLengthFrequencyModel()
        expected = sum(length * weight for length, weight in WORD_LENGTH_FREQUENCIES) / sum(
            weight for _, weight in WORD_LENGTH_FREQUENCIES
        )
        assert model.mean_word_length() == pytest.approx(expected)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            WordLengthFrequencyModel(length_table=[])


class TestHybridModel:
    def test_mixes_both_sources(self, rng):
        model = HybridWordModel(popular_fraction=0.5)
        words = model.words(rng, 4_000)
        popular_vocabulary = {word for word, _ in TOP_ENGLISH_WORDS}
        popular_hits = sum(1 for word in words if word in popular_vocabulary)
        assert popular_hits / len(words) == pytest.approx(0.5, abs=0.06)

    def test_extreme_fractions(self, rng):
        all_popular = HybridWordModel(popular_fraction=1.0).words(rng, 500)
        popular_vocabulary = {word for word, _ in TOP_ENGLISH_WORDS}
        assert all(word in popular_vocabulary for word in all_popular)
        all_rare = HybridWordModel(popular_fraction=0.0).words(rng, 500)
        assert sum(1 for word in all_rare if word in popular_vocabulary) < 100

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            HybridWordModel(popular_fraction=1.2)

    def test_zero_count(self, rng):
        assert HybridWordModel().words(rng, 0) == []


class TestSingleWordModel:
    def test_repeats_one_word(self, rng):
        model = SingleWordModel(word="spam")
        assert set(model.words(rng, 50)) == {"spam"}

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            SingleWordModel(word="")


class TestTextGeneration:
    @pytest.mark.parametrize(
        "model",
        [SingleWordModel(), WordPopularityModel(), WordLengthFrequencyModel(), HybridWordModel()],
        ids=["single", "popularity", "length", "hybrid"],
    )
    def test_text_is_exactly_requested_size(self, model, rng):
        for size in (0, 1, 10, 1_000, 10_000):
            assert len(model.text(rng, size)) == size

    def test_text_contains_spaces_between_words(self, rng):
        text = WordPopularityModel().text(rng, 2_000)
        assert " " in text
        assert len(text.split()) > 100

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ValueError):
            SingleWordModel().text(rng, -1)

    def test_reproducible_from_seed(self):
        model = HybridWordModel()
        a = model.text(np.random.default_rng(5), 500)
        b = model.text(np.random.default_rng(5), 500)
        assert a == b
