"""Unit tests for the grep simulator."""

from __future__ import annotations

import pytest

from repro.content.generators import ContentPolicy
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.workloads.grep import GrepCostModel, GrepSimulator


@pytest.fixture(scope="module")
def text_image():
    config = ImpressionsConfig(
        fs_size_bytes=None,
        num_files=200,
        num_directories=40,
        seed=17,
        generate_content=True,
        content=ContentPolicy(text_model="hybrid", force_kind="text"),
    )
    return Impressions(config).generate()


@pytest.fixture(scope="module")
def binary_image():
    config = ImpressionsConfig(
        fs_size_bytes=None,
        num_files=200,
        num_directories=40,
        seed=17,
        generate_content=True,
        content=ContentPolicy(text_model="hybrid", force_kind="binary"),
    )
    return Impressions(config).generate()


class TestGrep:
    def test_scans_text_files(self, text_image):
        result = GrepSimulator(text_image).run()
        assert result.files_scanned == text_image.file_count
        assert result.files_skipped_binary == 0
        assert result.bytes_read == text_image.total_bytes
        assert result.elapsed_ms > 0

    def test_binary_files_are_skipped(self, binary_image):
        result = GrepSimulator(binary_image).run()
        assert result.files_skipped_binary == binary_image.file_count
        assert result.files_scanned == 0
        assert result.bytes_read == 0

    def test_binary_image_much_faster_than_text_image(self, text_image, binary_image):
        """The paper's point: grep time depends on the *type* of files."""
        text_time = GrepSimulator(text_image).run().elapsed_ms
        binary_time = GrepSimulator(binary_image).run().elapsed_ms
        assert binary_time < text_time / 10

    def test_disabling_binary_skip_scans_everything(self, binary_image):
        costs = GrepCostModel(skip_binary=False)
        result = GrepSimulator(binary_image, cost_model=costs).run()
        assert result.files_scanned == binary_image.file_count

    def test_warm_cache_speeds_up_scan(self, text_image):
        cold = GrepSimulator(text_image).run().elapsed_ms
        warm_simulator = GrepSimulator(text_image)
        warm_simulator.warm_cache()
        warm = warm_simulator.run().elapsed_ms
        assert warm < cold

    def test_metadata_only_image_supported(self, small_image):
        # No content generator: grep still runs off metadata (sizes + kinds).
        result = GrepSimulator(small_image).run()
        assert result.files_scanned + result.files_skipped_binary == small_image.file_count
