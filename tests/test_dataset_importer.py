"""Tests for importing a real directory tree and fitting models from it."""

from __future__ import annotations

import os

import pytest

from repro.dataset.importer import fit_models_from_snapshot, import_directory_tree
from repro.dataset.study import analyze_snapshot
from repro.stats.distributions import LognormalDistribution, ShiftedPoissonDistribution


@pytest.fixture
def sample_tree(tmp_path):
    """A small on-disk tree with known composition."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "deep").mkdir()
    (tmp_path / "src").mkdir()
    files = {
        "readme.txt": 1200,
        "docs/guide.pdf": 40_000,
        "docs/deep/notes.txt": 300,
        "src/main.c": 5_000,
        "src/util.c": 2_500,
        "src/archive.zip": 100_000,
    }
    for relative, size in files.items():
        path = tmp_path / relative
        path.write_bytes(b"x" * size)
    return tmp_path, files


class TestImport:
    def test_counts_and_sizes(self, sample_tree):
        root, files = sample_tree
        snapshot = import_directory_tree(str(root))
        assert snapshot.file_count == len(files)
        assert snapshot.used_bytes == sum(files.values())
        assert snapshot.directory_count == 4  # root, docs, docs/deep, src

    def test_depths_relative_to_root(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root))
        depths = {record.depth for record in snapshot.directories}
        assert depths == {0, 1, 2}
        assert max(snapshot.file_depths()) == 3  # docs/deep/notes.txt

    def test_extensions_lowercased(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root))
        counts = snapshot.extension_counts()
        assert counts["txt"] == 2
        assert counts["c"] == 2
        assert counts["zip"] == 1

    def test_max_files_cap(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root), max_files=3)
        assert snapshot.file_count == 3

    def test_symlinks_skipped(self, sample_tree):
        root, _ = sample_tree
        os.symlink(str(root / "readme.txt"), str(root / "link.txt"))
        snapshot = import_directory_tree(str(root))
        assert snapshot.file_count == 6

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            import_directory_tree(str(tmp_path / "nope"))

    def test_analysis_pipeline_accepts_imported_snapshot(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root))
        distributions = analyze_snapshot(snapshot)
        assert distributions.total_files == snapshot.file_count


class TestFitFromSnapshot:
    def test_fits_lognormal_for_small_trees(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root))
        models = fit_models_from_snapshot(snapshot)
        assert isinstance(models["file_size_by_count"], LognormalDistribution)
        assert isinstance(models["file_depth"], ShiftedPoissonDistribution)

    def test_fitted_model_plugs_into_config(self, sample_tree):
        from repro.core.config import ImpressionsConfig
        from repro.core.impressions import Impressions

        root, _ = sample_tree
        models = fit_models_from_snapshot(import_directory_tree(str(root)))
        config = ImpressionsConfig(
            fs_size_bytes=None,
            num_files=50,
            num_directories=10,
            seed=3,
            file_size_model=models["file_size_by_count"],
        )
        image = Impressions(config).generate()
        assert image.file_count == 50

    def test_empty_snapshot_rejected(self):
        from repro.dataset.snapshot import FileSystemSnapshot

        with pytest.raises(ValueError):
            fit_models_from_snapshot(FileSystemSnapshot(hostname="x", capacity_bytes=0))
