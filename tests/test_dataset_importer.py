"""Tests for importing a real directory tree and fitting models from it."""

from __future__ import annotations

import os

import pytest

from repro.dataset.importer import fit_models_from_snapshot, import_directory_tree
from repro.dataset.study import analyze_snapshot
from repro.stats.distributions import LognormalDistribution, ShiftedPoissonDistribution


@pytest.fixture
def sample_tree(tmp_path):
    """A small on-disk tree with known composition."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "deep").mkdir()
    (tmp_path / "src").mkdir()
    files = {
        "readme.txt": 1200,
        "docs/guide.pdf": 40_000,
        "docs/deep/notes.txt": 300,
        "src/main.c": 5_000,
        "src/util.c": 2_500,
        "src/archive.zip": 100_000,
    }
    for relative, size in files.items():
        path = tmp_path / relative
        path.write_bytes(b"x" * size)
    return tmp_path, files


class TestImport:
    def test_counts_and_sizes(self, sample_tree):
        root, files = sample_tree
        snapshot = import_directory_tree(str(root))
        assert snapshot.file_count == len(files)
        assert snapshot.used_bytes == sum(files.values())
        assert snapshot.directory_count == 4  # root, docs, docs/deep, src

    def test_depths_relative_to_root(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root))
        depths = {record.depth for record in snapshot.directories}
        assert depths == {0, 1, 2}
        assert max(snapshot.file_depths()) == 3  # docs/deep/notes.txt

    def test_extensions_lowercased(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root))
        counts = snapshot.extension_counts()
        assert counts["txt"] == 2
        assert counts["c"] == 2
        assert counts["zip"] == 1

    def test_max_files_cap(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root), max_files=3)
        assert snapshot.file_count == 3

    def test_symlinks_skipped(self, sample_tree):
        root, _ = sample_tree
        os.symlink(str(root / "readme.txt"), str(root / "link.txt"))
        snapshot = import_directory_tree(str(root))
        assert snapshot.file_count == 6

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            import_directory_tree(str(tmp_path / "nope"))

    def test_analysis_pipeline_accepts_imported_snapshot(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root))
        distributions = analyze_snapshot(snapshot)
        assert distributions.total_files == snapshot.file_count

    def test_import_independent_of_on_disk_order(self, sample_tree, monkeypatch):
        """Identical snapshots no matter what order os.walk yields entries in.

        Real filesystems return readdir entries in mount- and history-
        dependent order; the importer must sort so that record order (and
        directory ids) never depend on it.  Simulated by shuffling each
        walk tuple's lists in place with differently-seeded RNGs.
        """
        import random

        import repro.dataset.importer as importer_module

        root, _ = sample_tree
        real_walk = os.walk

        def shuffled_walk(seed):
            def walk(path, **kwargs):
                rng = random.Random(seed)
                for current, dirs, files in real_walk(path, **kwargs):
                    rng.shuffle(dirs)
                    rng.shuffle(files)
                    yield current, dirs, files

            return walk

        snapshots = []
        for seed in (1, 2):
            monkeypatch.setattr(importer_module.os, "walk", shuffled_walk(seed))
            snapshots.append(import_directory_tree(str(root)))
        monkeypatch.setattr(importer_module.os, "walk", real_walk)

        first, second = snapshots
        assert first.files == second.files
        assert first.directories == second.directories
        assert first.files == import_directory_tree(str(root)).files


class TestFitFromSnapshot:
    def test_fits_lognormal_for_small_trees(self, sample_tree):
        root, _ = sample_tree
        snapshot = import_directory_tree(str(root))
        models = fit_models_from_snapshot(snapshot)
        assert isinstance(models["file_size_by_count"], LognormalDistribution)
        assert isinstance(models["file_depth"], ShiftedPoissonDistribution)

    def test_fitted_model_plugs_into_config(self, sample_tree):
        from repro.core.config import ImpressionsConfig
        from repro.core.impressions import Impressions

        root, _ = sample_tree
        models = fit_models_from_snapshot(import_directory_tree(str(root)))
        config = ImpressionsConfig(
            fs_size_bytes=None,
            num_files=50,
            num_directories=10,
            seed=3,
            file_size_model=models["file_size_by_count"],
        )
        image = Impressions(config).generate()
        assert image.file_count == 50

    def test_empty_snapshot_rejected(self):
        from repro.dataset.snapshot import FileSystemSnapshot

        with pytest.raises(ValueError):
            fit_models_from_snapshot(FileSystemSnapshot(hostname="x", capacity_bytes=0))
