"""Unit tests for synthetic typed-file headers."""

from __future__ import annotations

import pytest

from repro.content.headers import (
    SUPPORTED_TYPED_EXTENSIONS,
    minimum_typed_size,
    typed_header_footer,
)


class TestHeaderCatalogue:
    def test_paper_mentioned_types_supported(self):
        # The formats the paper generates via third-party tools (§3.6).
        for extension in ("mp3", "gif", "jpg", "pdf", "htm"):
            assert extension in SUPPORTED_TYPED_EXTENSIONS

    def test_unknown_extension_has_no_header(self):
        header, footer = typed_header_footer("xyz")
        assert header == b"" and footer == b""

    def test_extension_normalisation(self):
        assert typed_header_footer(".JPG") == typed_header_footer("jpg")

    def test_minimum_size_matches_header_plus_footer(self):
        for extension in SUPPORTED_TYPED_EXTENSIONS:
            header, footer = typed_header_footer(extension)
            assert minimum_typed_size(extension) == len(header) + len(footer)
            assert minimum_typed_size(extension) > 0


class TestMagicNumbers:
    @pytest.mark.parametrize(
        "extension,magic",
        [
            ("mp3", b"ID3"),
            ("gif", b"GIF89a"),
            ("jpg", b"\xff\xd8"),
            ("png", b"\x89PNG"),
            ("pdf", b"%PDF"),
            ("htm", b"<!DOCTYPE html>"),
            ("zip", b"PK\x03\x04"),
            ("exe", b"MZ"),
            ("dll", b"MZ"),
            ("doc", b"\xd0\xcf\x11\xe0"),
            ("wav", b"RIFF"),
            ("avi", b"RIFF"),
        ],
    )
    def test_header_starts_with_magic(self, extension, magic):
        header, _ = typed_header_footer(extension)
        assert header.startswith(magic)

    @pytest.mark.parametrize(
        "extension,trailer",
        [("gif", b"\x3b"), ("jpg", b"\xff\xd9"), ("pdf", b"%%EOF\n"), ("png", b"IEND")],
    )
    def test_footer_carries_trailer(self, extension, trailer):
        _, footer = typed_header_footer(extension)
        assert trailer in footer

    def test_mp4_ftyp_box(self):
        header, _ = typed_header_footer("mp4")
        assert b"ftyp" in header
