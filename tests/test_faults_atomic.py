"""Sealed atomic writes: trailer verification, fault surfaces, quarantine."""

from __future__ import annotations

import json
import os

import pytest

from repro.faults import (
    TRAILER_SIZE,
    CorruptionError,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    atomic_write_bytes,
    quarantine_bytes,
    quarantine_dir,
    quarantine_file,
    read_verified,
    seal,
    unseal,
    use,
)


class TestSealUnseal:
    def test_round_trip(self):
        payload = b"the quick brown fox"
        assert unseal(seal(payload)) == payload

    def test_empty_payload_round_trips(self):
        assert unseal(seal(b"")) == b""

    def test_truncated_blob(self):
        with pytest.raises(CorruptionError) as excinfo:
            unseal(seal(b"payload")[: TRAILER_SIZE - 1])
        assert excinfo.value.reason == "truncated"

    def test_missing_trailer(self):
        # Plenty of bytes, but no magic — e.g. a pre-hardening legacy file.
        with pytest.raises(CorruptionError) as excinfo:
            unseal(b"x" * (TRAILER_SIZE + 10))
        assert excinfo.value.reason == "missing_trailer"

    def test_flipped_payload_bit(self):
        blob = bytearray(seal(b"payload-bytes"))
        blob[0] ^= 0xFF
        with pytest.raises(CorruptionError) as excinfo:
            unseal(bytes(blob))
        assert excinfo.value.reason == "checksum_mismatch"


class TestAtomicWrite:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "entry.bin")
        atomic_write_bytes(path, b"hello")
        assert read_verified(path) == b"hello"

    def test_overwrite_is_atomic_and_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "entry.bin")
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert read_verified(path) == b"two"
        assert os.listdir(tmp_path) == ["entry.bin"]

    def test_missing_file_is_a_miss_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_verified(str(tmp_path / "absent.bin"))

    def test_enospc_fault_persists_nothing(self, tmp_path):
        path = str(tmp_path / "entry.bin")
        plan = FaultPlan(specs=(FaultSpec(point="cache.entry.write", kind="enospc"),))
        with use(plan):
            with pytest.raises(OSError):
                atomic_write_bytes(path, b"doomed", fault_point="cache.entry.write")
        assert os.listdir(tmp_path) == []  # no artifact, no tmp litter

    def test_torn_write_persists_prefix_then_crashes(self, tmp_path):
        path = str(tmp_path / "entry.bin")
        plan = FaultPlan(
            specs=(FaultSpec(point="cache.entry.write", kind="torn_write", offset=5),)
        )
        with use(plan):
            with pytest.raises(InjectedCrash):
                atomic_write_bytes(path, b"payload", fault_point="cache.entry.write")
        assert os.path.getsize(path) == 5  # the torn prefix is durable...
        with pytest.raises(CorruptionError):
            read_verified(path)  # ...and read-side verification catches it

    def test_fsync_loss_reports_success_but_read_detects(self, tmp_path):
        path = str(tmp_path / "entry.bin")
        plan = FaultPlan(
            specs=(FaultSpec(point="cache.entry.write", kind="fsync_loss", lost_bytes=3),)
        )
        with use(plan):
            atomic_write_bytes(path, b"payload", fault_point="cache.entry.write")
        with pytest.raises(CorruptionError):
            read_verified(path)

    def test_unfaulted_points_write_normally_under_a_plan(self, tmp_path):
        path = str(tmp_path / "entry.bin")
        plan = FaultPlan(specs=(FaultSpec(point="store.append", kind="crash"),))
        with use(plan):
            atomic_write_bytes(path, b"fine", fault_point="cache.entry.write")
        assert read_verified(path) == b"fine"


class TestQuarantine:
    def test_quarantine_dir_for_directory_store(self, tmp_path):
        root = str(tmp_path / "cache")
        os.makedirs(root)
        assert quarantine_dir(root) == os.path.join(root, ".quarantine")

    def test_quarantine_dir_for_file_store(self, tmp_path):
        store = str(tmp_path / "results.jsonl")
        assert quarantine_dir(store) == str(tmp_path / ".quarantine")

    def test_quarantine_bytes_writes_payload_and_reason(self, tmp_path):
        store = str(tmp_path / "results.jsonl")
        target = quarantine_bytes(
            store, b"torn-bytes", layer="store", reason="torn_final_line"
        )
        assert open(target, "rb").read() == b"torn-bytes"
        with open(target + ".reason.json", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["layer"] == "store"
        assert record["reason"] == "torn_final_line"
        assert record["size_bytes"] == 10

    def test_identical_damage_quarantines_once(self, tmp_path):
        store = str(tmp_path / "results.jsonl")
        first = quarantine_bytes(store, b"same", layer="store", reason="x")
        second = quarantine_bytes(store, b"same", layer="store", reason="x")
        assert first == second
        entries = [name for name in os.listdir(quarantine_dir(store)) if name.endswith(".bin")]
        assert len(entries) == 1

    def test_quarantine_file_moves_the_artifact(self, tmp_path):
        root = str(tmp_path / "cache")
        os.makedirs(root)
        bad = os.path.join(root, "bad.pkl")
        with open(bad, "wb") as handle:
            handle.write(b"\x80garbage")
        target = quarantine_file(root, bad, layer="cache", reason="checksum_mismatch")
        assert target is not None
        assert not os.path.exists(bad)
        assert open(target, "rb").read() == b"\x80garbage"

    def test_quarantine_file_tolerates_already_gone(self, tmp_path):
        assert (
            quarantine_file(str(tmp_path), str(tmp_path / "gone"), layer="cache", reason="x")
            is None
        )
