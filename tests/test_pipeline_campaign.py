"""Campaign-level stage caching: scenarios sharing knobs generate once."""

from __future__ import annotations

from repro.campaign.runner import run_campaign, run_scenario
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, deterministic_view

BASE_KNOBS = {"num_files": 80, "num_directories": 16, "fs_size_bytes": 16 * 1024 * 1024}


def _spec(name: str, steps: list[dict]) -> CampaignSpec:
    return CampaignSpec.from_dict({"name": name, "base": dict(BASE_KNOBS), "steps": steps})


class TestRunnerCacheWiring:
    def test_two_scenario_sweep_sharing_knobs_generates_once(self, tmp_path):
        # Two scenarios with identical generation knobs that differ only in
        # their steps: the first run generates and populates the cache, the
        # second restores the image (cache hits counted in its store row).
        store_path = str(tmp_path / "store.jsonl")
        cache_dir = str(tmp_path / "cache")
        run_campaign(_spec("first", [{"step": "summary"}]), store_path, cache_dir=cache_dir)
        run_campaign(
            _spec("second", [{"step": "find"}]), store_path, cache_dir=cache_dir
        )
        rows = ResultStore(store_path).rows()
        assert len(rows) == 2
        assert rows[0]["cache"] == {
            "enabled": True,
            "hits": 0,
            "misses": 6,
            "stores": 6,
            "generated": True,
        }
        assert rows[1]["cache"] == {
            "enabled": True,
            "hits": 6,
            "misses": 0,
            "stores": 0,
            "generated": False,
        }
        assert sum(1 for row in rows if row["cache"]["generated"]) == 1

    def test_three_scenarios_sharing_knobs_generate_exactly_once(self, tmp_path):
        # The acceptance criterion: a sweep of >= 3 scenarios sharing
        # generation knobs runs generation exactly once, verified by the
        # cache-hit counters in the store rows.
        store_path = str(tmp_path / "store.jsonl")
        cache_dir = str(tmp_path / "cache")
        sweep = [
            _spec("summary-only", [{"step": "summary"}]),
            _spec("find-replay", [{"step": "find"}, {"step": "trace_replay", "ops": 200}]),
            _spec("grep-pass", [{"step": "grep"}]),
        ]
        for spec in sweep:
            run_campaign(spec, store_path, cache_dir=cache_dir)
        rows = ResultStore(store_path).rows()
        assert len(rows) == 3
        generated = [row["cache"]["generated"] for row in rows]
        assert generated == [True, False, False]
        assert all(row["cache"]["hits"] == 6 for row in rows[1:])
        # Every scenario still reports identical image-shape metrics.
        files = {row["metrics"].get("summary.files") for row in rows if "summary.files" in row["metrics"]}
        assert files <= {80}

    def test_layout_sweep_shares_the_generation_prefix(self, tmp_path):
        spec = CampaignSpec.from_dict(
            {
                "name": "layout",
                "base": dict(BASE_KNOBS),
                "sweep": {"layout_score": [1.0, 0.7]},
                "steps": [{"step": "summary"}],
            }
        )
        store_path = str(tmp_path / "store.jsonl")
        run_campaign(spec, store_path, cache_dir=str(tmp_path / "cache"))
        rows = ResultStore(store_path).rows()
        assert rows[0]["cache"]["misses"] == 6
        # The second scenario re-runs only on_disk_creation.
        assert rows[1]["cache"] == {
            "enabled": True,
            "hits": 5,
            "misses": 1,
            "stores": 1,
            "generated": True,
        }

    def test_cached_rows_are_deterministically_equal_to_uncached(self, tmp_path):
        spec = _spec("equivalence", [{"step": "summary"}, {"step": "find"}])
        cached_path = str(tmp_path / "cached.jsonl")
        plain_path = str(tmp_path / "plain.jsonl")
        cache_dir = str(tmp_path / "cache")
        run_campaign(spec, cached_path, cache_dir=cache_dir)  # cold cache
        run_campaign(spec, plain_path)  # no cache at all
        warm_path = str(tmp_path / "warm.jsonl")
        run_campaign(spec, warm_path, cache_dir=cache_dir)  # warm cache
        cached = [deterministic_view(row) for row in ResultStore(cached_path)]
        plain = [deterministic_view(row) for row in ResultStore(plain_path)]
        warm = [deterministic_view(row) for row in ResultStore(warm_path)]
        assert cached == plain == warm
        # The cache section exists only on cached rows, and never leaks into
        # the deterministic view.
        assert "cache" in ResultStore(cached_path).rows()[0]
        assert "cache" not in ResultStore(plain_path).rows()[0]
        assert all("cache" not in row for row in cached)

    def test_run_scenario_without_cache_dir_has_no_cache_section(self):
        spec = _spec("no-cache", [{"step": "summary"}])
        row = run_scenario(spec.expand()[0].payload())
        assert "cache" not in row

    def test_parallel_workers_share_the_cache_directory(self, tmp_path):
        spec = CampaignSpec.from_dict(
            {
                "name": "parallel",
                "base": dict(BASE_KNOBS),
                "sweep": {"layout_score": [1.0, 0.7], "seed": [1, 2]},
                "steps": [{"step": "summary"}],
            }
        )
        store_path = str(tmp_path / "store.jsonl")
        serial_path = str(tmp_path / "serial.jsonl")
        run_campaign(spec, store_path, workers=2, cache_dir=str(tmp_path / "cache"))
        run_campaign(spec, serial_path, workers=1)
        parallel = [deterministic_view(row) for row in ResultStore(store_path)]
        serial = [deterministic_view(row) for row in ResultStore(serial_path)]
        assert parallel == serial
