"""Tests for the Beagle-like and GDL-like engines and their documented policies."""

from __future__ import annotations

import pytest

from repro.content.generators import ContentPolicy
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.namespace.tree import FileNode
from repro.workloads.search.beagle import (
    BEAGLE_ARCHIVE_CUTOFF,
    BEAGLE_SCRIPT_CUTOFF,
    BEAGLE_TEXT_CUTOFF,
    BeagleIndexOptions,
    BeagleSearchEngine,
)
from repro.workloads.search.gdl import GDL_DEPTH_CUTOFF, GDL_TEXT_CUTOFF, GoogleDesktopSearchEngine


def _file(size: int, depth: int, kind: str) -> FileNode:
    return FileNode(name="f", size=size, extension="x", depth=depth, content_kind=kind)


class TestDocumentedCutoffs:
    def test_paper_constants(self):
        assert GDL_DEPTH_CUTOFF == 10
        assert GDL_TEXT_CUTOFF == 200 * 1024
        assert BEAGLE_TEXT_CUTOFF == 5 * 1024 * 1024
        assert BEAGLE_ARCHIVE_CUTOFF == 10 * 1024 * 1024
        assert BEAGLE_SCRIPT_CUTOFF == 20 * 1024

    def test_gdl_depth_cutoff(self):
        gdl = GoogleDesktopSearchEngine()
        assert gdl.indexes_content_of(_file(1024, 10, "text"))
        assert not gdl.indexes_content_of(_file(1024, 11, "text"))

    def test_gdl_text_size_cutoff(self):
        gdl = GoogleDesktopSearchEngine()
        assert gdl.indexes_content_of(_file(199 * 1024, 2, "text"))
        assert not gdl.indexes_content_of(_file(200 * 1024, 2, "text"))

    def test_beagle_text_cutoff(self):
        beagle = BeagleSearchEngine()
        assert beagle.indexes_content_of(_file(4 * 1024 * 1024, 2, "text"))
        assert not beagle.indexes_content_of(_file(5 * 1024 * 1024, 2, "text"))

    def test_beagle_script_cutoff(self):
        beagle = BeagleSearchEngine()
        assert beagle.indexes_content_of(_file(10 * 1024, 2, "script"))
        assert not beagle.indexes_content_of(_file(21 * 1024, 2, "script"))

    def test_beagle_has_no_depth_cutoff(self):
        beagle = BeagleSearchEngine()
        assert beagle.indexes_content_of(_file(1024, 50, "text"))


class TestBeagleOptions:
    def test_option_labels(self):
        assert BeagleIndexOptions.original().label == "Original"
        assert BeagleIndexOptions.textcache().label == "TextCache"
        assert BeagleIndexOptions.disdir().label == "DisDir"
        assert BeagleIndexOptions.disfilter().label == "DisFilter"

    def test_options_map_to_policy(self):
        assert BeagleSearchEngine(BeagleIndexOptions.textcache()).policy.text_cache is True
        assert BeagleSearchEngine(BeagleIndexOptions.disdir()).policy.index_directories is False
        assert (
            BeagleSearchEngine(BeagleIndexOptions.disfilter()).policy.content_filtering is False
        )

    def test_options_attribute_exposed(self):
        engine = BeagleSearchEngine(BeagleIndexOptions.textcache())
        assert engine.options.text_cache is True


class TestFigure7Ordering:
    """File content flips which engine has the larger index (Figure 7)."""

    @pytest.fixture(scope="class")
    def images(self):
        def build(text_model: str, kind: str):
            config = ImpressionsConfig(
                fs_size_bytes=None,
                num_files=250,
                num_directories=50,
                seed=23,
                generate_content=True,
                content=ContentPolicy(text_model=text_model, force_kind=kind),
            )
            return Impressions(config).generate()

        return {
            "text_model": build("hybrid", "text"),
            "text_single": build("single-word", "text"),
            "binary": build("hybrid", "binary"),
        }

    def test_beagle_larger_for_model_text(self, images):
        beagle = BeagleSearchEngine().index(images["text_model"])
        gdl = GoogleDesktopSearchEngine().index(images["text_model"])
        assert beagle.index_to_fs_ratio > gdl.index_to_fs_ratio

    def test_gdl_larger_for_binary(self, images):
        beagle = BeagleSearchEngine().index(images["binary"])
        gdl = GoogleDesktopSearchEngine().index(images["binary"])
        assert gdl.index_to_fs_ratio > beagle.index_to_fs_ratio

    def test_single_word_text_shrinks_index(self, images):
        model_text = BeagleSearchEngine().index(images["text_model"])
        single_word = BeagleSearchEngine().index(images["text_single"])
        assert single_word.index_size_bytes < model_text.index_size_bytes

    def test_index_ratios_in_plausible_range(self, images):
        for image in images.values():
            for engine in (BeagleSearchEngine(), GoogleDesktopSearchEngine()):
                ratio = engine.index(image).index_to_fs_ratio
                assert 0.0005 < ratio < 0.5
