"""Golden equivalence: the staged pipeline reproduces the monolithic generator.

``_monolithic_generate`` below is a faithful replica of the historical
``Impressions.generate()`` (the single method the pipeline redesign split
into stages), preserving its exact rng draw order.  Same seed + config must
produce an identical image fingerprint (tree, block layout, layout score,
report) whether generation runs through this reference implementation, the
backward-compatible ``Impressions.generate()`` facade, an explicitly built
default pipeline, or a pipeline restoring from the stage cache.  The replica
is the real oracle: the facade now delegates to the pipeline, so only the
replica can catch a stage port reordering a random draw.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.constraints.resolver import ConstraintResolver, ConstraintSpec
from repro.content.generators import ContentGenerator
from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.core.impressions import Impressions
from repro.core.report import ReproducibilityReport
from repro.layout.disk import SimulatedDisk
from repro.layout.fragmenter import Fragmenter
from repro.metadata.extensions import content_kind_for_extension
from repro.metadata.names import NameGenerator
from repro.namespace.generative_model import GenerativeTreeModel
from repro.namespace.placement import FilePlacer
from repro.namespace.special_dirs import install_special_directories
from repro.pipeline import StageCache, default_pipeline, image_fingerprint


def _monolithic_generate(config: ImpressionsConfig) -> FileSystemImage:
    """The pre-redesign ``Impressions.generate()``, phase for phase."""
    rng = np.random.default_rng(config.seed)
    report = ReproducibilityReport(seed=config.seed, parameters=config.parameter_table())

    # Phase 1: namespace.
    model = GenerativeTreeModel(attachment_offset=config.attachment_offset)
    tree = model.generate(config.resolved_num_directories(), rng)
    if config.special_directories:
        install_special_directories(tree, tuple(config.special_directories), rng)

    # Phase 2: file sizes.
    num_files = config.resolved_num_files()
    size_model = config.resolved_size_model()
    if config.enforce_fs_size and config.fs_size_bytes is not None:
        spec = ConstraintSpec(
            num_values=num_files,
            target_sum=float(config.fs_size_bytes),
            distribution=size_model,
            beta=config.beta,
            max_oversampling_factor=config.max_oversampling_factor,
        )
        result = ConstraintResolver(spec, rng).resolve()
        report.record_derived("constraint_final_beta", result.final_beta)
        report.record_derived("constraint_oversampling", result.oversampling_factor)
        report.record_derived("constraint_converged", result.converged)
        sizes = result.values
    else:
        sizes = np.asarray(size_model.sample(rng, num_files), dtype=float)
    sizes = np.maximum(np.round(sizes), 0).astype(np.int64)

    # Phase 3: extensions.
    extensions = config.extension_model.sample_extensions(rng, len(sizes))

    # Phase 4: depth selection + parent placement + file creation.
    content_generator = ContentGenerator(policy=config.content) if config.generate_content else None
    special_nodes = {
        directory.special_label: directory
        for directory in tree.directories
        if directory.special_label is not None
    }
    placer = FilePlacer(
        tree=tree, model=config.placement_model(), rng=rng, special_nodes=special_nodes
    )
    names = NameGenerator()
    for size, extension in zip(sizes, extensions):
        parent = placer.place(int(size))
        kind = (
            content_generator.content_kind(extension)
            if content_generator is not None
            else content_kind_for_extension(extension)
        )
        tree.create_file(
            parent=parent,
            size=int(size),
            extension=extension,
            name=names.next_file_name(extension),
            content_kind=kind,
        )
    if config.timestamp_model is not None:
        now = config.timestamp_now if config.timestamp_now is not None else time.time()
        report.record_derived("timestamp_now", now)
        for file_node in tree.files:
            file_node.timestamps = config.timestamp_model.sample(rng, now)

    # Phase 5: content seed + eager probe.
    content_seed = int(rng.integers(0, 2**31 - 1))
    if content_generator is not None and tree.file_count:
        probe = tree.files[0]
        probe_rng = np.random.default_rng((content_seed, probe.file_id))
        content_generator.generate(min(probe.size, 4096), probe.extension, probe_rng)

    # Phase 6: on-disk creation with the requested layout score.
    needed_blocks = int(tree.total_bytes * 1.3) // config.block_size + tree.file_count + 1024
    capacity_blocks = max(config.resolved_disk_capacity() // config.block_size, needed_blocks, 1024)
    disk = SimulatedDisk(num_blocks=capacity_blocks)
    fragmenter = Fragmenter(disk=disk, target_score=config.layout_score, rng=rng)
    for file_node in tree.files:
        extents = fragmenter.allocate_regular_file(file_node.path(), file_node.size)
        file_node.extents = extents
        file_node.first_block = extents[0][0] if extents else None
    fragmenter.finish()

    report.record_derived("file_count", tree.file_count)
    report.record_derived("directory_count", tree.directory_count)
    report.record_derived("total_bytes", tree.total_bytes)
    image = FileSystemImage(
        tree=tree,
        disk=disk,
        content_generator=content_generator,
        content_seed=content_seed,
        report=report,
    )
    report.record_derived("layout_score", image.achieved_layout_score())
    return image

CONFIGS = {
    "plain": ImpressionsConfig(fs_size_bytes=None, num_files=300, num_directories=60, seed=5),
    "constrained": ImpressionsConfig(
        fs_size_bytes=32 * 1024 * 1024,
        num_files=200,
        num_directories=40,
        seed=9,
        enforce_fs_size=True,
    ),
    "fragmented": ImpressionsConfig(
        fs_size_bytes=None, num_files=150, num_directories=30, seed=3, layout_score=0.7
    ),
    "with_content": ImpressionsConfig(
        fs_size_bytes=8 * 1024 * 1024,
        num_files=100,
        num_directories=20,
        seed=11,
        generate_content=True,
    ),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_pipeline_matches_the_historical_monolith(name):
    # The golden test: the staged pipeline must be seed-for-seed identical
    # to the pre-redesign monolithic generator (replicated above).
    config = CONFIGS[name]
    reference = _monolithic_generate(config)
    pipeline_image = default_pipeline().run(config).image
    assert image_fingerprint(pipeline_image) == image_fingerprint(reference)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_facade_and_pipeline_fingerprints_match(name):
    config = CONFIGS[name]
    facade_image = Impressions(config).generate()
    pipeline_image = default_pipeline().run(config).image
    assert image_fingerprint(facade_image) == image_fingerprint(pipeline_image)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_image_fingerprint_is_reproducible(name):
    config = CONFIGS[name]
    first = image_fingerprint(Impressions(config).generate())
    second = image_fingerprint(Impressions(config).generate())
    assert first == second


def test_cache_restored_image_matches_the_facade(tmp_path):
    config = CONFIGS["plain"]
    cache = StageCache(str(tmp_path / "cache"))
    default_pipeline().run(config, cache=cache)  # populate
    restored = default_pipeline().run(config, cache=cache)
    assert restored.generation_cached
    assert image_fingerprint(restored.image) == image_fingerprint(
        Impressions(config).generate()
    )


def test_facade_reports_match_pipeline_reports():
    config = CONFIGS["constrained"]
    facade_report = Impressions(config).generate().report
    pipeline_report = default_pipeline().run(config).image.report
    assert facade_report is not None and pipeline_report is not None
    assert facade_report.derived.keys() == pipeline_report.derived.keys()
    deterministic = {
        key: value
        for key, value in facade_report.derived.items()
        if key != "timestamp_now"
    }
    assert deterministic == {
        key: value
        for key, value in pipeline_report.derived.items()
        if key != "timestamp_now"
    }
    assert set(facade_report.phase_timings) == set(pipeline_report.phase_timings)


def test_seed_difference_still_diverges():
    config = CONFIGS["plain"]
    a = image_fingerprint(default_pipeline().run(config).image)
    b = image_fingerprint(default_pipeline().run(config.with_overrides(seed=6)).image)
    assert a != b
