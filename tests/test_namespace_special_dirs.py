"""Unit tests for special-directory installation (Figure 2(h))."""

from __future__ import annotations

import pytest

from repro.namespace.generative_model import GenerativeTreeModel, build_flat_tree
from repro.namespace.special_dirs import (
    DEFAULT_SPECIAL_DIRECTORIES,
    SpecialDirectorySpec,
    install_special_directories,
)


class TestSpecs:
    def test_default_specs_match_paper_example(self):
        by_name = {spec.name: spec for spec in DEFAULT_SPECIAL_DIRECTORIES}
        assert by_name["Web Cache"].depth == 7
        assert by_name["Windows"].depth == 2
        assert by_name["Program Files"].depth == 2
        assert by_name["System"].depth == 3

    def test_bias_must_be_fraction(self):
        with pytest.raises(ValueError):
            SpecialDirectorySpec(name="X", depth=1, file_bias=0.0)
        with pytest.raises(ValueError):
            SpecialDirectorySpec(name="X", depth=1, file_bias=1.0)

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            SpecialDirectorySpec(name="X", depth=0, file_bias=0.1)


class TestInstallation:
    def test_installs_at_requested_depth(self, rng):
        tree = GenerativeTreeModel().generate(400, rng)
        nodes = install_special_directories(tree, DEFAULT_SPECIAL_DIRECTORIES, rng)
        assert set(nodes) == {spec.name for spec in DEFAULT_SPECIAL_DIRECTORIES}
        for spec in DEFAULT_SPECIAL_DIRECTORIES:
            assert nodes[spec.name].depth == spec.depth
            assert nodes[spec.name].special_label == spec.name

    def test_shallow_tree_is_extended(self, rng):
        tree = build_flat_tree(3)  # max depth 1
        spec = SpecialDirectorySpec(name="Web Cache", depth=7, file_bias=0.05)
        nodes = install_special_directories(tree, (spec,), rng)
        assert nodes["Web Cache"].depth == 7
        assert tree.max_depth() >= 7

    def test_existing_directory_is_reused(self, rng):
        tree = GenerativeTreeModel().generate(100, rng)
        spec = SpecialDirectorySpec(name="Windows", depth=2, file_bias=0.05)
        first = install_special_directories(tree, (spec,), rng)
        count_after_first = tree.directory_count
        second = install_special_directories(tree, (spec,), rng)
        assert first["Windows"] is second["Windows"]
        assert tree.directory_count == count_after_first

    def test_installation_registers_directories_with_tree(self, rng):
        tree = GenerativeTreeModel().generate(50, rng)
        nodes = install_special_directories(tree, DEFAULT_SPECIAL_DIRECTORIES, rng)
        for node in nodes.values():
            assert node in tree.directories
