"""Unit tests for the simulated disk / block allocator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layout.disk import AllocationError, DiskGeometry, SimulatedDisk


class TestGeometry:
    def test_transfer_time_scales_with_blocks(self):
        geometry = DiskGeometry()
        assert geometry.transfer_time_ms(200) == pytest.approx(2 * geometry.transfer_time_ms(100))

    def test_access_time_includes_positioning_per_run(self):
        geometry = DiskGeometry()
        one_run = geometry.access_time_ms(1, 100)
        two_runs = geometry.access_time_ms(2, 100)
        assert two_runs - one_run == pytest.approx(geometry.seek_time_ms + geometry.rotational_delay_ms)


class TestAllocation:
    def test_sequential_allocations_are_contiguous(self):
        disk = SimulatedDisk(num_blocks=1_000)
        a = disk.allocate("a", 10 * 4096)
        b = disk.allocate("b", 5 * 4096)
        assert a == list(range(0, 10))
        assert b == list(range(10, 15))
        assert disk.used_blocks == 15

    def test_blocks_needed_rounds_up(self):
        disk = SimulatedDisk(num_blocks=100)
        assert disk.blocks_needed(1) == 1
        assert disk.blocks_needed(4096) == 1
        assert disk.blocks_needed(4097) == 2
        assert disk.blocks_needed(0) == 0

    def test_zero_byte_file_tracked_without_blocks(self):
        disk = SimulatedDisk(num_blocks=10)
        assert disk.allocate("empty", 0) == []
        assert disk.has_file("empty")
        disk.delete("empty")
        assert not disk.has_file("empty")

    def test_duplicate_name_rejected(self):
        disk = SimulatedDisk(num_blocks=10)
        disk.allocate("x", 4096)
        with pytest.raises(ValueError):
            disk.allocate("x", 4096)

    def test_insufficient_space_raises(self):
        disk = SimulatedDisk(num_blocks=4)
        with pytest.raises(AllocationError):
            disk.allocate("big", 10 * 4096)

    def test_delete_frees_space(self):
        disk = SimulatedDisk(num_blocks=20)
        disk.allocate("a", 20 * 4096)
        with pytest.raises(AllocationError):
            disk.allocate("b", 4096)
        disk.delete("a")
        assert disk.free_blocks == 20
        disk.allocate("b", 20 * 4096)

    def test_delete_unknown_file_raises(self):
        disk = SimulatedDisk(num_blocks=10)
        with pytest.raises(KeyError):
            disk.delete("missing")

    def test_holes_are_filled_in_address_order(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("a", 4 * 4096)
        disk.allocate("hole", 2 * 4096)
        disk.allocate("b", 4 * 4096)
        disk.delete("hole")
        c = disk.allocate("c", 4 * 4096)
        # c fills the 2-block hole first, then spills past b: fragmented.
        assert c[:2] == [4, 5]
        assert c[2:] == [10, 11]
        assert disk.contiguous_runs("c") == 2

    def test_adjacent_free_extents_coalesce(self):
        disk = SimulatedDisk(num_blocks=50)
        disk.allocate("a", 10 * 4096)
        disk.allocate("b", 10 * 4096)
        disk.allocate("c", 10 * 4096)
        disk.delete("a")
        disk.delete("b")
        # a and b coalesce into one 20-block extent at the front.
        d = disk.allocate("d", 20 * 4096)
        assert d == list(range(0, 20))
        assert disk.contiguous_runs("d") == 1

    def test_coalesce_with_following_extent(self):
        disk = SimulatedDisk(num_blocks=50)
        disk.allocate("a", 5 * 4096)
        disk.allocate("b", 5 * 4096)
        disk.delete("b")
        disk.delete("a")
        assert disk.summary()["free_extents"] == 1

    def test_file_names_listing(self):
        disk = SimulatedDisk(num_blocks=10)
        disk.allocate("x", 4096)
        disk.allocate("y", 4096)
        assert set(disk.file_names()) == {"x", "y"}

    def test_invalid_disk_size_rejected(self):
        with pytest.raises(ValueError):
            SimulatedDisk(num_blocks=0)


class TestExtend:
    def test_extend_appends_blocks(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("f", 3 * 4096)
        new_blocks = disk.extend("f", 2 * 4096)
        assert new_blocks == [3, 4]
        assert disk.blocks_of("f") == [0, 1, 2, 3, 4]

    def test_extend_after_other_allocation_fragments(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("f", 3 * 4096)
        disk.allocate("blocker", 4096)
        disk.extend("f", 2 * 4096)
        assert disk.contiguous_runs("f") == 2

    def test_extend_unknown_file_rejected(self):
        disk = SimulatedDisk(num_blocks=10)
        with pytest.raises(KeyError):
            disk.extend("nope", 4096)

    def test_extend_beyond_capacity_rejected(self):
        disk = SimulatedDisk(num_blocks=4)
        disk.allocate("f", 3 * 4096)
        with pytest.raises(AllocationError):
            disk.extend("f", 10 * 4096)
        # Original allocation is untouched by the failed extension.
        assert disk.blocks_of("f") == [0, 1, 2]

    def test_extend_by_zero_is_noop(self):
        disk = SimulatedDisk(num_blocks=10)
        disk.allocate("f", 4096)
        assert disk.extend("f", 0) == []
        assert disk.blocks_of("f") == [0]


class TestCostModel:
    def test_contiguous_file_read_is_single_positioning(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("f", 10 * 4096)
        expected = disk.geometry.access_time_ms(1, 10)
        assert disk.read_time_ms("f") == pytest.approx(expected)

    def test_fragmented_file_costs_more(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("a", 4 * 4096)
        disk.allocate("gap", 4096)
        disk.allocate("b", 4 * 4096)
        disk.delete("gap")
        disk.allocate("frag", 8 * 4096)
        contiguous_cost = disk.geometry.access_time_ms(1, 8)
        assert disk.read_time_ms("frag") > contiguous_cost

    def test_empty_file_costs_nothing(self):
        disk = SimulatedDisk(num_blocks=10)
        disk.allocate("empty", 0)
        assert disk.read_time_ms("empty") == 0.0

    def test_metadata_read_time_positive(self):
        disk = SimulatedDisk(num_blocks=10)
        assert disk.metadata_read_time_ms() > 0

    def test_summary_fields(self):
        disk = SimulatedDisk(num_blocks=64)
        disk.allocate("a", 4096)
        summary = disk.summary()
        assert summary["num_blocks"] == 64
        assert summary["used_blocks"] == 1
        assert summary["files"] == 1


class TestFreeAndReallocate:
    def test_free_returns_block_count(self):
        disk = SimulatedDisk(num_blocks=64)
        disk.allocate("f", 3 * 4096)
        assert disk.free("f") == 3
        assert not disk.has_file("f")
        assert disk.free_blocks == 64

    def test_double_free_raises_explicit_error(self):
        from repro.layout.disk import DoubleFreeError

        disk = SimulatedDisk(num_blocks=64)
        disk.allocate("f", 4096)
        disk.free("f")
        with pytest.raises(DoubleFreeError, match="double free"):
            disk.free("f")

    def test_free_of_unknown_file_raises(self):
        from repro.layout.disk import DoubleFreeError

        disk = SimulatedDisk(num_blocks=64)
        with pytest.raises(DoubleFreeError):
            disk.free("never-existed")

    def test_reallocate_can_reuse_own_blocks(self):
        disk = SimulatedDisk(num_blocks=64)
        old = disk.allocate("f", 4 * 4096)
        new = disk.reallocate("f", 4 * 4096)
        assert new == old  # first-fit hands back the freed region

    def test_reallocate_unknown_raises(self):
        from repro.layout.disk import DoubleFreeError

        disk = SimulatedDisk(num_blocks=64)
        with pytest.raises(DoubleFreeError):
            disk.reallocate("f", 4096)

    def test_rename_preserves_blocks(self):
        disk = SimulatedDisk(num_blocks=64)
        blocks = disk.allocate("a", 2 * 4096)
        disk.rename("a", "b")
        assert not disk.has_file("a")
        assert disk.blocks_of("b") == blocks
        with pytest.raises(KeyError):
            disk.rename("a", "c")
        disk.allocate("a", 4096)
        with pytest.raises(ValueError):
            disk.rename("a", "b")


class TestExtentRepresentation:
    def test_contiguous_allocation_is_one_extent(self):
        disk = SimulatedDisk(num_blocks=100)
        extents = disk.allocate_extents("a", 10 * 4096)
        assert extents == [(0, 10)]
        assert disk.extents_of("a") == [(0, 10)]
        assert disk.run_count("a") == 1
        assert disk.block_count("a") == 10
        assert disk.first_block_of("a") == 0

    def test_fragmented_allocation_yields_multiple_extents(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("a", 4 * 4096)
        disk.allocate("hole", 2 * 4096)
        disk.allocate("b", 4 * 4096)
        disk.delete("hole")
        extents = disk.allocate_extents("c", 4 * 4096)
        assert extents == [(4, 2), (10, 2)]
        assert disk.blocks_of("c") == [4, 5, 10, 11]

    def test_extend_merges_with_contiguous_tail(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("f", 3 * 4096)
        pieces = disk.extend_extents("f", 2 * 4096)
        # The new piece is reported separately but merged into the tail run.
        assert pieces == [(3, 2)]
        assert disk.extents_of("f") == [(0, 5)]
        assert disk.run_count("f") == 1

    def test_extend_after_blocker_keeps_separate_extent(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("f", 3 * 4096)
        disk.allocate("blocker", 4096)
        disk.extend_extents("f", 2 * 4096)
        assert disk.extents_of("f") == [(0, 3), (4, 2)]

    def test_empty_file_has_no_extents(self):
        disk = SimulatedDisk(num_blocks=10)
        disk.allocate("empty", 0)
        assert disk.extents_of("empty") == []
        assert disk.run_count("empty") == 0
        assert disk.block_count("empty") == 0
        assert disk.first_block_of("empty") is None

    def test_extent_accessors_raise_for_unknown_files(self):
        disk = SimulatedDisk(num_blocks=10)
        for accessor in (
            disk.extents_of,
            disk.run_count,
            disk.block_count,
            disk.first_block_of,
        ):
            with pytest.raises(KeyError):
                accessor("missing")

    def test_free_extents_listing(self):
        disk = SimulatedDisk(num_blocks=20)
        disk.allocate("a", 5 * 4096)
        disk.allocate("b", 5 * 4096)
        disk.delete("a")
        assert disk.free_extents() == [(0, 5), (10, 10)]

    def test_summary_reports_extent_counts_and_score(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("a", 4 * 4096)
        disk.allocate("hole", 4096)
        disk.allocate("b", 4 * 4096)
        disk.delete("hole")
        disk.allocate("c", 3 * 4096)  # splits across the hole
        summary = disk.summary()
        assert summary["file_extents"] == disk.total_extents == 4
        assert summary["layout_score"] == disk.layout_score()


class TestIncrementalLayoutScore:
    """The disk's O(1) aggregates must match a full recomputation."""

    def _recomputed(self, disk: SimulatedDisk) -> float:
        from repro.layout.layout_score import layout_score_from_blockmaps

        return layout_score_from_blockmaps(
            [disk.blocks_of(name) for name in disk.file_names()]
        )

    def test_perfect_layout_scores_one(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("a", 10 * 4096)
        disk.allocate("b", 5 * 4096)
        assert disk.layout_score() == 1.0
        assert disk.layout_aggregates == (13, 13)

    def test_empty_disk_scores_one(self):
        disk = SimulatedDisk(num_blocks=100)
        assert disk.layout_score() == 1.0
        assert disk.layout_aggregates == (0, 0)

    def test_aggregates_track_mutations(self):
        rng = np.random.default_rng(99)
        disk = SimulatedDisk(num_blocks=4096)
        live: list[str] = []
        counter = 0
        for _ in range(400):
            action = rng.random()
            if live and action < 0.3:
                disk.free(live.pop(int(rng.integers(len(live)))))
            elif live and action < 0.45:
                name = live[int(rng.integers(len(live)))]
                size = int(rng.integers(1, 8)) * 4096
                if disk.blocks_needed(size) <= disk.free_blocks:
                    disk.extend(name, size)
            elif live and action < 0.55:
                name = live[int(rng.integers(len(live)))]
                size = int(rng.integers(1, 8)) * 4096
                if disk.blocks_needed(size) <= disk.free_blocks:
                    disk.reallocate(name, size)
            else:
                name = f"f{counter}"
                counter += 1
                size = int(rng.integers(0, 12)) * 4096
                if disk.blocks_needed(size) <= disk.free_blocks:
                    disk.allocate(name, size)
                    live.append(name)
            assert disk.layout_score() == pytest.approx(self._recomputed(disk), abs=1e-12)


class TestExtendPreservesInsertionOrder:
    """Regression: extend() must not move the file to the end of file_names().

    The historical implementation popped and re-inserted the allocation dict
    entry, silently reordering iteration (and anything keyed off it) after
    every extend.
    """

    def test_extend_keeps_file_names_order(self):
        disk = SimulatedDisk(num_blocks=1000)
        for name in ("a", "b", "c", "d"):
            disk.allocate(name, 2 * 4096)
        disk.extend("b", 4096)
        assert disk.file_names() == ["a", "b", "c", "d"]
        disk.extend("a", 4096)
        disk.extend("d", 4096)
        assert disk.file_names() == ["a", "b", "c", "d"]

    def test_failed_extend_keeps_order_too(self):
        disk = SimulatedDisk(num_blocks=10)
        disk.allocate("a", 2 * 4096)
        disk.allocate("b", 2 * 4096)
        with pytest.raises(AllocationError):
            disk.extend("a", 100 * 4096)
        assert disk.file_names() == ["a", "b"]


class TestCoalescingUnderChurn:
    """Free-extent invariants while files churn through free()/allocate."""

    def _free_extents(self, disk: SimulatedDisk) -> list[tuple[int, int]]:
        return list(zip(disk._free_starts, disk._free_lengths))

    def _assert_invariants(self, disk: SimulatedDisk) -> None:
        extents = self._free_extents(disk)
        for (start_a, len_a), (start_b, _) in zip(extents, extents[1:]):
            # Sorted, non-overlapping, and never adjacent (adjacent extents
            # must have been coalesced into one).
            assert start_a + len_a < start_b

    def test_interleaved_free_coalesces_fully(self):
        disk = SimulatedDisk(num_blocks=128)
        names = [f"f{i}" for i in range(16)]
        for name in names:
            disk.allocate(name, 8 * 4096)
        # Free odd files first, then even: every boundary exercises both the
        # merge-with-next and merge-with-previous paths.
        for name in names[1::2]:
            disk.free(name)
            self._assert_invariants(disk)
        for name in names[0::2]:
            disk.free(name)
            self._assert_invariants(disk)
        assert self._free_extents(disk) == [(0, 128)]

    def test_random_churn_keeps_extents_canonical(self):
        rng = np.random.default_rng(123)
        disk = SimulatedDisk(num_blocks=2048)
        live: list[str] = []
        counter = 0
        for _ in range(600):
            if live and rng.random() < 0.45:
                victim = live.pop(int(rng.integers(len(live))))
                disk.free(victim)
            else:
                name = f"churn{counter}"
                counter += 1
                size = int(rng.integers(1, 16)) * 4096
                if disk.blocks_needed(size) <= disk.free_blocks:
                    disk.allocate(name, size)
                    live.append(name)
            self._assert_invariants(disk)
            assert disk.used_blocks + disk.free_blocks == disk.num_blocks
        for name in live:
            disk.free(name)
        assert self._free_extents(disk) == [(0, 2048)]
