"""``campaign compare --against-git``: baselines resolved from git revisions."""

from __future__ import annotations

import json
import os
import shutil
import subprocess

import pytest

from repro.campaign.cli import main
from repro.campaign.gitstore import GitStoreError, resolve_store_from_git

pytestmark = pytest.mark.skipif(shutil.which("git") is None, reason="git not available")


def _git(repo: str, *args: str) -> str:
    return subprocess.run(
        ["git", *args], cwd=repo, check=True, capture_output=True, text=True
    ).stdout


def _store_row(scenario: str, elapsed: float) -> str:
    return (
        json.dumps(
            {
                "campaign": "demo",
                "scenario": scenario,
                "fingerprint": scenario,
                "params": {},
                "metrics": {"find.elapsed_ms": elapsed},
                "wall": {"generate_seconds": 0.1},
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    )


@pytest.fixture
def git_repo(tmp_path):
    """A tiny repo with a committed store at HEAD~1 and a changed one at HEAD."""
    repo = str(tmp_path / "repo")
    os.makedirs(repo)
    _git(repo, "init", "-q")
    _git(repo, "config", "user.email", "test@example.com")
    _git(repo, "config", "user.name", "Test")
    store = os.path.join(repo, "results.jsonl")
    with open(store, "w", encoding="utf-8") as handle:
        handle.write(_store_row("demo[a]", 100.0))
    _git(repo, "add", "results.jsonl")
    _git(repo, "commit", "-q", "-m", "baseline store")
    with open(store, "w", encoding="utf-8") as handle:
        handle.write(_store_row("demo[a]", 250.0))
    _git(repo, "add", "results.jsonl")
    _git(repo, "commit", "-q", "-m", "regressed store")
    return repo


class TestResolveStoreFromGit:
    def test_extracts_committed_store(self, git_repo, tmp_path):
        resolved = resolve_store_from_git(
            "HEAD~1",
            os.path.join(git_repo, "results.jsonl"),
            repo_dir=git_repo,
            target_dir=str(tmp_path / "out"),
        )
        with open(resolved, "r", encoding="utf-8") as handle:
            row = json.loads(handle.readline())
        assert row["metrics"]["find.elapsed_ms"] == 100.0

    def test_unknown_revision(self, git_repo):
        with pytest.raises(GitStoreError, match="unknown git revision"):
            resolve_store_from_git(
                "no-such-rev", os.path.join(git_repo, "results.jsonl"), repo_dir=git_repo
            )

    def test_missing_artifact_without_spec(self, git_repo):
        with pytest.raises(GitStoreError, match="does not exist at revision"):
            resolve_store_from_git(
                "HEAD", os.path.join(git_repo, "absent.jsonl"), repo_dir=git_repo
            )

    def test_path_outside_repository(self, git_repo, tmp_path):
        outside = str(tmp_path / "elsewhere.jsonl")
        with pytest.raises(GitStoreError, match="outside the git repository"):
            resolve_store_from_git("HEAD", outside, repo_dir=git_repo)

    def test_not_a_repository(self, tmp_path):
        plain = str(tmp_path / "plain")
        os.makedirs(plain)
        with pytest.raises(GitStoreError, match="not inside a git repository"):
            resolve_store_from_git("HEAD", os.path.join(plain, "x.jsonl"), repo_dir=plain)


class TestCompareAgainstGitCli:
    def test_regression_detected_against_revision(self, git_repo, monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        code = main(["compare", "results.jsonl", "--against-git", "HEAD~1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out
        assert "find.elapsed_ms" in out

    def test_same_revision_compares_clean(self, git_repo, monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        assert main(["compare", "results.jsonl", "--against-git", "HEAD"]) == 0
        assert "no metric changes beyond tolerance" in capsys.readouterr().out

    def test_git_path_overrides_lookup(self, git_repo, monkeypatch, tmp_path, capsys):
        monkeypatch.chdir(git_repo)
        candidate = os.path.join(git_repo, "fresh.jsonl")
        with open(candidate, "w", encoding="utf-8") as handle:
            handle.write(_store_row("demo[a]", 100.0))
        code = main(
            ["compare", "fresh.jsonl", "--against-git", "HEAD~1", "--git-path", "results.jsonl"]
        )
        assert code == 0

    def test_against_git_takes_exactly_one_store(self, git_repo, monkeypatch):
        monkeypatch.chdir(git_repo)
        with pytest.raises(SystemExit, match="exactly"):
            main(["compare", "a.jsonl", "b.jsonl", "--against-git", "HEAD"])

    def test_two_positional_stores_still_work(self, git_repo, monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        shutil.copy("results.jsonl", "copy.jsonl")
        assert main(["compare", "results.jsonl", "copy.jsonl"]) == 0

    def test_unknown_revision_is_cli_error(self, git_repo, monkeypatch):
        monkeypatch.chdir(git_repo)
        with pytest.raises(SystemExit, match="unknown git revision"):
            main(["compare", "results.jsonl", "--against-git", "bogus-rev"])


class TestRegenerateFromWorktree:
    def test_regenerates_baseline_from_revisions_code(self, tmp_path):
        """A store absent at REV is regenerated by running REV's code.

        The fixture repo commits a minimal ``src/repro`` package whose
        campaign CLI writes a known store row — we only assert the worktree
        plumbing here, not this repository's own generator (which would take
        minutes per revision).
        """
        repo = str(tmp_path / "repo")
        package = os.path.join(repo, "src", "repro", "core")
        os.makedirs(package)
        open(os.path.join(repo, "src", "repro", "__init__.py"), "w").close()
        open(os.path.join(package, "__init__.py"), "w").close()
        with open(os.path.join(package, "cli.py"), "w", encoding="utf-8") as handle:
            handle.write(
                "import json, sys\n"
                "def main(argv=None):\n"
                "    argv = sys.argv[1:] if argv is None else argv\n"
                "    store = argv[argv.index('--store') + 1]\n"
                "    row = {'scenario': 'demo[a]', 'fingerprint': 'f',"
                " 'metrics': {'find.elapsed_ms': 100.0}}\n"
                "    open(store, 'w').write(json.dumps(row) + '\\n')\n"
                "    return 0\n"
                "if __name__ == '__main__':\n"
                "    sys.exit(main())\n"
            )
        _git(repo, "init", "-q")
        _git(repo, "config", "user.email", "test@example.com")
        _git(repo, "config", "user.name", "Test")
        _git(repo, "add", "-A")
        _git(repo, "commit", "-q", "-m", "fake generator")

        spec = str(tmp_path / "spec.json")
        with open(spec, "w", encoding="utf-8") as handle:
            json.dump({"name": "demo"}, handle)
        resolved = resolve_store_from_git(
            "HEAD",
            os.path.join(repo, "results.jsonl"),
            repo_dir=repo,
            spec_path=spec,
            target_dir=str(tmp_path / "out"),
        )
        with open(resolved, "r", encoding="utf-8") as handle:
            row = json.loads(handle.readline())
        assert row["metrics"]["find.elapsed_ms"] == 100.0
        # The temporary worktree is cleaned up afterwards.
        assert _git(repo, "worktree", "list").strip().count("\n") == 0
