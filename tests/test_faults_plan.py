"""Fault plans: seeded determinism, spec validation, injector semantics."""

from __future__ import annotations

import errno

import pytest

from repro.faults import (
    FAULT_KINDS,
    INJECTION_POINTS,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    active,
    check,
    mangle_write,
    use,
)
from repro.obs import core as obs_core


class TestPlanGeneration:
    def test_same_seed_same_plan_bit_for_bit(self):
        first = FaultPlan.generate(42)
        second = FaultPlan.generate(42)
        assert first.specs == second.specs
        assert first.fingerprint() == second.fingerprint()

    def test_different_seeds_differ(self):
        assert FaultPlan.generate(1).fingerprint() != FaultPlan.generate(2).fingerprint()

    def test_covers_every_injection_point(self):
        plan = FaultPlan.generate(7)
        assert {spec.point for spec in plan} == set(INJECTION_POINTS)

    def test_round_trips_through_json_dict(self):
        plan = FaultPlan.generate(13, faults_per_point=2)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()

    def test_restricting_points_and_kinds(self):
        plan = FaultPlan.generate(3, points=["store.append"], kinds=["enospc", "crash"])
        assert {spec.point for spec in plan} == {"store.append"}
        assert {spec.kind for spec in plan} <= {"enospc", "crash"}

    def test_write_kinds_never_scheduled_at_control_points(self):
        for seed in range(20):
            for spec in FaultPlan.generate(seed):
                if spec.kind in ("torn_write", "fsync_loss"):
                    assert INJECTION_POINTS[spec.point] == "write"

    def test_unknown_point_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.generate(1, points=["no.such.point"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.generate(1, kinds=["gremlins"])


class TestSpecValidation:
    def test_unknown_point(self):
        with pytest.raises(FaultError):
            FaultSpec(point="bogus", kind="crash")

    def test_unknown_kind(self):
        with pytest.raises(FaultError):
            FaultSpec(point="store.append", kind="bogus")

    def test_write_kind_at_control_point(self):
        with pytest.raises(FaultError):
            FaultSpec(point="queue.lease", kind="torn_write")

    def test_occurrence_must_be_positive(self):
        with pytest.raises(FaultError):
            FaultSpec(point="store.append", kind="crash", occurrence=0)

    def test_all_kinds_are_constructible_somewhere(self):
        for kind in FAULT_KINDS:
            point = "store.append" if kind in ("torn_write", "fsync_loss") else "queue.lease"
            FaultSpec(point=point, kind=kind)


class TestInjector:
    def test_fires_on_the_nth_arrival_only(self):
        spec = FaultSpec(point="queue.lease", kind="enospc", occurrence=3)
        injector = FaultInjector(FaultPlan(specs=(spec,)))
        injector.check("queue.lease")
        injector.check("queue.lease")
        with pytest.raises(OSError) as excinfo:
            injector.check("queue.lease")
        assert excinfo.value.errno == errno.ENOSPC
        injector.check("queue.lease")  # fired once; never again
        assert [fired.spec for fired in injector.fired] == [spec]
        assert injector.remaining() == []

    def test_eio_carries_its_errno(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(point="queue.ack", kind="eio"),))
        )
        with pytest.raises(OSError) as excinfo:
            injector.check("queue.ack")
        assert excinfo.value.errno == errno.EIO

    def test_crash_is_not_an_exception_subclass(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(point="worker.after_lease", kind="crash"),))
        )
        with pytest.raises(BaseException) as excinfo:
            injector.check("worker.after_lease")
        assert isinstance(excinfo.value, InjectedCrash)
        assert not isinstance(excinfo.value, Exception)
        assert excinfo.value.point == "worker.after_lease"

    def test_torn_write_returns_prefix_and_requests_crash(self):
        spec = FaultSpec(point="store.append", kind="torn_write", offset=3)
        injector = FaultInjector(FaultPlan(specs=(spec,)))
        data, crash_after = injector.mangle("store.append", b"0123456789")
        assert data == b"012"
        assert crash_after is True

    def test_fsync_loss_drops_tail_silently(self):
        spec = FaultSpec(point="store.append", kind="fsync_loss", lost_bytes=4)
        injector = FaultInjector(FaultPlan(specs=(spec,)))
        data, crash_after = injector.mangle("store.append", b"0123456789")
        assert data == b"012345"
        assert crash_after is False

    def test_unscheduled_points_pass_through(self):
        injector = FaultInjector(FaultPlan())
        injector.check("queue.lease")
        assert injector.mangle("store.append", b"abc") == (b"abc", False)

    def test_remaining_lists_unreached_specs(self):
        spec = FaultSpec(point="queue.lease", kind="crash", occurrence=5)
        injector = FaultInjector(FaultPlan(specs=(spec,)))
        injector.check("queue.lease")
        assert injector.remaining() == [spec]


class TestContextBinding:
    def test_module_helpers_are_noops_unbound(self):
        assert active() is None
        check("queue.lease")
        assert mangle_write("store.append", b"xyz") == (b"xyz", False)

    def test_use_binds_and_unbinds(self):
        plan = FaultPlan(specs=(FaultSpec(point="queue.lease", kind="enospc"),))
        with use(plan) as injector:
            assert active() is injector
            with pytest.raises(OSError):
                check("queue.lease")
        assert active() is None

    def test_rebinding_a_plan_replays_the_schedule(self):
        plan = FaultPlan(specs=(FaultSpec(point="queue.lease", kind="enospc"),))
        for _ in range(2):
            with use(plan):
                with pytest.raises(OSError):
                    check("queue.lease")

    def test_fired_faults_counted_on_bound_telemetry(self):
        telemetry = obs_core.Telemetry()
        plan = FaultPlan(specs=(FaultSpec(point="queue.lease", kind="enospc"),))
        with obs_core.use(telemetry), use(plan):
            with pytest.raises(OSError):
                check("queue.lease")
        counter = telemetry.counter(
            "faults_injected_total",
            "faults fired by the bound fault injector",
            ("kind", "point"),
        )
        assert counter.value(point="queue.lease", kind="enospc") == 1.0
