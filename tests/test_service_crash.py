"""Crash-safety proof: SIGKILL a worker mid-job, recover, converge bit-identically.

The acceptance criterion for the farm: killing a worker at the worst moment
(holding a lease, before producing a result) must leave the queue
consistent; the lease expires, the job is reclaimed and retried on another
worker, and the final result row is bit-identical — same scenario
fingerprint, same metrics keys and values — to a run that was never
interrupted.

The killed worker runs as a real subprocess with the chaos flag
``--inject-fault hang-after-lease:60``: it leases the job, then hangs (while
heartbeating) in a window the test can SIGKILL deterministically — exactly
the shape of a worker that dies mid-generation, without racing the
generator's wall clock.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.campaign.runner import run_scenario
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, deterministic_view
from repro.service.queue import DONE, LEASED, PENDING, JobQueue
from repro.service.worker import WorkerOptions, run_worker

SPEC_DOC = {
    "name": "crash",
    "base": {"num_directories": 6, "fs_size_bytes": 8 * 1024 * 1024, "seed": 11},
    "sweep": {"num_files": [30]},
    "steps": [{"step": "summary"}],
}

LEASE_TTL = 1.0


def _wait_for(predicate, *, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    pytest.fail(f"timed out after {timeout}s waiting for {what}")


def _spawn_worker(queue_path: str, store_path: str, worker_id: str, fault: str):
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable,
        "-m",
        "repro.core.cli",
        "service",
        "worker",
        "--queue",
        queue_path,
        "--store",
        store_path,
        "--worker-id",
        worker_id,
        "--lease-ttl",
        str(LEASE_TTL),
        "--poll-interval",
        "0.05",
    ]
    if fault:
        command += ["--inject-fault", fault]
    return subprocess.Popen(env=env, args=command)


class TestWorkerCrashRecovery:
    def test_sigkill_mid_job_recovers_bit_identically(self, tmp_path):
        queue_path = str(tmp_path / "q.sqlite")
        store_path = str(tmp_path / "r.jsonl")
        spec = CampaignSpec.from_dict(SPEC_DOC)
        (scenario,) = spec.expand()
        with JobQueue(queue_path, backoff_base=0.05, backoff_cap=0.1) as queue:
            queue.submit(spec, store_path, max_attempts=3)

            # A worker leases the job, hangs in the fault window... and dies.
            victim = _spawn_worker(
                queue_path, store_path, "victim", "hang-after-lease:60"
            )
            try:
                _wait_for(
                    lambda: queue.job(1).state == LEASED,
                    timeout=30.0,
                    what="the victim worker to lease the job",
                )
                assert queue.job(1).worker == "victim"
                os.kill(victim.pid, signal.SIGKILL)
                victim.wait(timeout=10.0)
            finally:
                if victim.poll() is None:  # pragma: no cover - cleanup
                    victim.kill()
                    victim.wait()

            # Nobody extends the lease now; it expires and is reclaimed.
            _wait_for(
                lambda: queue.reclaim_expired() or queue.job(1).state == PENDING,
                timeout=LEASE_TTL * 10,
                what="the lease to expire and the job to be reclaimed",
            )
            job = queue.job(1)
            assert job.state == PENDING
            assert job.attempts == 1
            assert "lease expired" in job.error
            assert "victim" in job.error
            assert queue.counters()["lease_reclaims"] == 1.0
            # The store saw nothing from the killed attempt.
            assert not ResultStore(store_path).exists()

            # A second worker (no fault) retries and completes the job.
            result = run_worker(
                WorkerOptions(
                    queue_path=queue_path,
                    store_path=store_path,
                    worker_id="recovery",
                    drain=True,
                    lease_ttl=30.0,
                    poll_interval=0.05,
                )
            )
            assert result.jobs_done == 1
            job = queue.job(1)
            assert job.state == DONE
            assert job.worker == "recovery"
            assert job.attempts == 2  # the crashed attempt plus the retry

        # The recovered row is bit-identical to an uninterrupted run.
        (stored,) = ResultStore(store_path).rows()
        assert stored["fingerprint"] == scenario.fingerprint
        clean = json.loads(json.dumps(run_scenario(scenario.payload()), sort_keys=True))
        assert set(stored["metrics"]) == set(clean["metrics"])
        canon = lambda row: json.dumps(
            deterministic_view(row), sort_keys=True, separators=(",", ":")
        )
        assert canon(stored) == canon(clean)

    def test_repeated_crashes_exhaust_budget_to_dead_letter(self, tmp_path):
        """Lease expiry consumes the retry budget like any other failure."""
        queue_path = str(tmp_path / "q.sqlite")
        store_path = str(tmp_path / "r.jsonl")
        with JobQueue(queue_path, backoff_base=0.05, backoff_cap=0.1) as queue:
            queue.submit(SPEC_DOC, store_path, max_attempts=2)
            for _ in range(2):
                victim = _spawn_worker(
                    queue_path, store_path, "victim", "hang-after-lease:60"
                )
                try:
                    _wait_for(
                        lambda: queue.job(1).state == LEASED,
                        timeout=30.0,
                        what="a victim worker to lease the job",
                    )
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.wait(timeout=10.0)
                finally:
                    if victim.poll() is None:  # pragma: no cover - cleanup
                        victim.kill()
                        victim.wait()
                _wait_for(
                    lambda: bool(queue.reclaim_expired())
                    or queue.job(1).state != LEASED,
                    timeout=LEASE_TTL * 10,
                    what="the expired lease to be reclaimed",
                )
            job = queue.job(1)
            assert job.state == "dead"
            assert job.attempts == 2
            assert queue.counters()["lease_reclaims"] == 2.0
