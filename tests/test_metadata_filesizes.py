"""Unit tests for the default file-size models (Table 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metadata.filesizes import (
    DEFAULT_BODY_FRACTION,
    DEFAULT_BODY_MU,
    DEFAULT_BODY_SIGMA,
    DEFAULT_TAIL_K,
    DEFAULT_TAIL_XM,
    default_file_size_by_bytes_model,
    default_file_size_by_count_model,
    simple_lognormal_size_model,
)


class TestDefaultsMatchTable2:
    def test_count_model_parameters(self):
        model = default_file_size_by_count_model()
        params = model.params()
        assert params["mu"] == pytest.approx(9.48)
        assert params["sigma"] == pytest.approx(2.46)
        assert params["body_fraction"] == pytest.approx(0.99994)
        assert params["k"] == pytest.approx(0.91)
        assert params["xm"] == 512 * 1024 * 1024

    def test_bytes_model_parameters(self):
        model = default_file_size_by_bytes_model()
        params = model.params()
        assert params["alpha1"] == pytest.approx(0.76)
        assert params["mu1"] == pytest.approx(14.83)
        assert params["sigma1"] == pytest.approx(2.35)
        assert params["alpha2"] == pytest.approx(0.24)
        assert params["mu2"] == pytest.approx(20.93)
        assert params["sigma2"] == pytest.approx(1.48)

    def test_simple_model_is_lognormal_body(self):
        model = simple_lognormal_size_model()
        assert model.mu == DEFAULT_BODY_MU
        assert model.sigma == DEFAULT_BODY_SIGMA

    def test_module_constants_consistent(self):
        assert DEFAULT_BODY_FRACTION > 0.999
        assert DEFAULT_TAIL_K < 1.0  # heavy tail with infinite mean
        assert DEFAULT_TAIL_XM == 512 * 1024 * 1024


class TestModelBehaviour:
    def test_typical_file_sizes_are_kilobytes(self, rng):
        model = default_file_size_by_count_model()
        sample = model.sample(rng, 20_000)
        median = np.median(sample)
        # Median of the body is e^9.48 ≈ 13 KB.
        assert 4_000 < median < 40_000

    def test_custom_parameters_flow_through(self):
        model = default_file_size_by_count_model(mu=5.0, sigma=1.0, body_fraction=0.9)
        assert model.body.mu == 5.0
        assert model.body_fraction == 0.9

    def test_hybrid_has_heavier_tail_than_simple(self, rng):
        """The paper's motivation for the hybrid model: the simple lognormal
        misses the very large files that dominate bytes."""
        hybrid = default_file_size_by_count_model(body_fraction=0.999)
        simple = simple_lognormal_size_model()
        hybrid_sample = hybrid.sample(np.random.default_rng(0), 100_000)
        simple_sample = simple.sample(np.random.default_rng(0), 100_000)
        threshold = 512 * 1024 * 1024
        assert (hybrid_sample >= threshold).sum() > (simple_sample >= threshold).sum()

    def test_bytes_model_is_bimodal_in_log_space(self, rng):
        model = default_file_size_by_bytes_model()
        logs = np.log(model.sample(rng, 40_000))
        histogram, _ = np.histogram(logs, bins=40, range=(8, 26))
        # Two local maxima separated by a dip (the "pronounced double mode").
        peak_region_low = histogram[5:15].max()
        peak_region_high = histogram[25:35].max()
        valley = histogram[17:23].min()
        assert valley < peak_region_low
        assert valley < peak_region_high
