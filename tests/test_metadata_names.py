"""Unit tests for counter-based name generation."""

from __future__ import annotations

import pytest

from repro.metadata.names import NameGenerator


class TestNameGenerator:
    def test_file_names_are_sequential_and_unique(self):
        generator = NameGenerator()
        names = [generator.next_file_name("txt") for _ in range(100)]
        assert len(set(names)) == 100
        assert names[0] == "file000000.txt"
        assert names[99] == "file000099.txt"

    def test_directory_names_are_sequential(self):
        generator = NameGenerator()
        assert generator.next_directory_name() == "dir00000"
        assert generator.next_directory_name() == "dir00001"

    def test_extension_handling(self):
        generator = NameGenerator()
        assert generator.next_file_name("") == "file000000"
        assert generator.next_file_name(".jpg").endswith(".jpg")
        assert ".." not in generator.next_file_name(".png")

    def test_counters_independent(self):
        generator = NameGenerator()
        generator.next_file_name("a")
        generator.next_file_name("b")
        generator.next_directory_name()
        assert generator.files_issued == 2
        assert generator.directories_issued == 1

    def test_reset(self):
        generator = NameGenerator()
        generator.next_file_name("x")
        generator.reset()
        assert generator.files_issued == 0
        assert generator.next_file_name("x") == "file000000.x"

    def test_custom_prefixes(self):
        generator = NameGenerator(file_prefix="doc", directory_prefix="folder")
        assert generator.next_file_name("pdf").startswith("doc")
        assert generator.next_directory_name().startswith("folder")

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            NameGenerator(file_prefix="")
