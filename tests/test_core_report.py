"""Unit tests for the reproducibility report."""

from __future__ import annotations

import json

from repro.core.report import ReproducibilityReport


class TestReport:
    def _report(self) -> ReproducibilityReport:
        report = ReproducibilityReport(
            seed=42,
            parameters={"File size by count": "hybrid(mu=9.48)"},
            distributions={"file_size_by_count": {"mu": 9.48, "sigma": 2.46}},
        )
        report.record_derived("file_count", 1000)
        report.record_timing("total", 1.25)
        return report

    def test_to_dict_roundtrip(self):
        data = self._report().to_dict()
        assert data["seed"] == 42
        assert data["derived"]["file_count"] == 1000
        assert data["phase_timings"]["total"] == 1.25
        assert data["distributions"]["file_size_by_count"]["mu"] == 9.48

    def test_to_json_is_valid(self):
        parsed = json.loads(self._report().to_json())
        assert parsed["seed"] == 42
        assert parsed["parameters"]["File size by count"].startswith("hybrid")

    def test_render_text_contains_sections(self):
        text = self._report().render_text()
        assert "seed: 42" in text
        assert "Parameters:" in text
        assert "Distributions:" in text
        assert "Derived values:" in text
        assert "Phase timings" in text

    def test_render_text_minimal_report(self):
        text = ReproducibilityReport(seed=1).render_text()
        assert "seed: 1" in text
        assert "Distributions:" not in text

    def test_generated_image_report_regenerates_image(self, small_image, small_config):
        """The whole point: the report's seed + parameters pin the image."""
        from repro.core.impressions import Impressions

        report = small_image.report
        assert report is not None
        clone = Impressions(small_config.with_overrides(seed=report.seed)).generate()
        assert clone.tree.file_sizes() == small_image.tree.file_sizes()
