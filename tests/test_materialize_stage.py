"""The ``materialize`` pipeline stage and campaign step."""

from __future__ import annotations

import json

import pytest

from repro.campaign.registry import get_step, step_names
from repro.campaign.runner import run_scenario
from repro.campaign.spec import CampaignSpec
from repro.pipeline import default_pipeline
from repro.pipeline.registry import build_stage, run_post_stage, stage_names
from repro.pipeline.stage import PipelineError


class TestMaterializeStage:
    def test_registered(self):
        assert "materialize" in stage_names()
        assert "materialize" in step_names()

    def test_null_sink_metrics(self, small_image, small_config):
        metrics = run_post_stage("materialize", small_image, small_config, {"sink": "null"})
        assert metrics["files"] == small_image.file_count
        assert metrics["directories"] == small_image.directory_count
        assert metrics["total_bytes"] == small_image.total_bytes
        assert len(metrics["content_digest"]) == 64
        assert metrics["verify_passed"] == 1
        assert metrics["verify_source"] == "image"

    def test_metrics_deterministic(self, small_image, small_config):
        one = run_post_stage("materialize", small_image, small_config, {"sink": "null"})
        two = run_post_stage("materialize", small_image, small_config, {"sink": "null"})
        assert one == two

    def test_dir_sink_with_verification(self, small_image, small_config, tmp_path):
        metrics = run_post_stage(
            "materialize",
            small_image,
            small_config,
            {"sink": "dir", "path": str(tmp_path / "img")},
        )
        assert metrics["verify_source"] == "imported"
        assert metrics["verify_passed"] == 1

    def test_tar_sink_reports_archive_extras(self, small_image, small_config, tmp_path):
        metrics = run_post_stage(
            "materialize",
            small_image,
            small_config,
            {"sink": "tar", "path": str(tmp_path / "img.tar"), "verify": False},
        )
        assert "archive_sha256" in metrics and "archive_bytes" in metrics
        assert "verify_passed" not in metrics

    def test_missing_path_raises_pipeline_error(self, small_image, small_config):
        with pytest.raises(PipelineError):
            run_post_stage("materialize", small_image, small_config, {"sink": "tar"})

    def test_in_pipeline_extension(self, small_config, tmp_path):
        pipeline = default_pipeline(
            extra_stages=[
                build_stage(
                    "materialize",
                    {"sink": "manifest", "path": str(tmp_path / "img.jsonl")},
                )
            ]
        )
        result = pipeline.run(small_config.with_overrides(num_files=60, num_directories=12))
        metrics = result.context.metrics["materialize"]
        assert metrics["lines"] == metrics["files"] + metrics["directories"] + 1
        assert result.executions[-1].name == "materialize"
        assert result.executions[-1].post_generation


class TestMaterializeCampaignStep:
    def test_step_delegates_to_stage(self, small_image, small_config):
        step = get_step("materialize")
        metrics = step(small_image, small_config, {"sink": "null"})
        assert metrics["verify_passed"] == 1

    def test_scenario_rows_carry_digest(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "mat",
                "base": {"num_files": 50, "num_directories": 10, "fs_size_bytes": 2 << 20},
                "sweep": {"seed": [1, 2]},
                "steps": [{"step": "materialize", "sink": "null"}],
            }
        )
        rows = [run_scenario(scenario.payload()) for scenario in spec.expand()]
        digests = [row["metrics"]["materialize.content_digest"] for row in rows]
        assert len(set(digests)) == 2  # different seeds, different images
        for row in rows:
            assert row["metrics"]["materialize.verify_passed"] == 1
            json.dumps(row)  # rows stay JSON-serializable for the store
