"""Unit tests for repro.stats.goodness_of_fit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.distributions import LognormalDistribution
from repro.stats.goodness_of_fit import (
    anderson_darling_statistic,
    chi_square_test,
    confidence_interval,
    ks_test_one_sample,
    ks_test_two_sample,
    mdcc,
    mdcc_from_fractions,
    standard_error,
)


class TestKolmogorovSmirnov:
    def test_same_distribution_passes(self, rng):
        a = rng.normal(0, 1, 2_000)
        b = rng.normal(0, 1, 2_000)
        result = ks_test_two_sample(a, b)
        assert result.passed
        assert result.statistic < 0.08

    def test_different_distributions_fail(self, rng):
        a = rng.normal(0, 1, 2_000)
        b = rng.normal(2, 1, 2_000)
        result = ks_test_two_sample(a, b)
        assert not result.passed
        assert result.statistic > 0.5

    def test_one_sample_against_true_cdf(self, rng):
        dist = LognormalDistribution(mu=2.0, sigma=0.7)
        sample = dist.sample(rng, 3_000)
        result = ks_test_one_sample(sample, dist.cdf)
        assert result.passed

    def test_one_sample_against_wrong_cdf(self, rng):
        dist = LognormalDistribution(mu=2.0, sigma=0.7)
        wrong = LognormalDistribution(mu=4.0, sigma=0.7)
        sample = dist.sample(rng, 3_000)
        result = ks_test_one_sample(sample, wrong.cdf)
        assert not result.passed

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_test_two_sample([], [1.0])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            ks_test_two_sample([1.0, np.nan], [1.0, 2.0])


class TestChiSquare:
    def test_identical_counts_pass(self):
        observed = [100, 200, 300]
        result = chi_square_test(observed, observed)
        assert result.passed
        assert result.statistic == pytest.approx(0.0)

    def test_wildly_different_counts_fail(self):
        result = chi_square_test([100, 10, 10], [10, 10, 100])
        assert not result.passed

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chi_square_test([1, 2], [1, 2, 3])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            chi_square_test([-1, 2], [1, 2])

    def test_all_zero_expected_rejected(self):
        with pytest.raises(ValueError):
            chi_square_test([1, 2], [0, 0])

    def test_zero_expected_bins_are_dropped(self):
        result = chi_square_test([5, 0, 5], [5, 0, 5])
        assert result.passed


class TestAndersonDarling:
    def test_correct_model_passes(self, rng):
        dist = LognormalDistribution(mu=1.0, sigma=0.5)
        sample = dist.sample(rng, 2_000)
        result = anderson_darling_statistic(sample, dist.cdf)
        assert result.passed

    def test_wrong_model_fails(self, rng):
        dist = LognormalDistribution(mu=1.0, sigma=0.5)
        wrong = LognormalDistribution(mu=3.0, sigma=0.5)
        sample = dist.sample(rng, 2_000)
        result = anderson_darling_statistic(sample, wrong.cdf)
        assert not result.passed

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            anderson_darling_statistic([1.0], lambda x: x)


class TestMdcc:
    def test_identical_samples_zero(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert mdcc(sample, sample) == 0.0

    def test_disjoint_samples_one(self):
        assert mdcc([1.0, 2.0], [10.0, 20.0]) == pytest.approx(1.0)

    def test_matches_ks_statistic(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(0.5, 1, 700)
        assert mdcc(a, b) == pytest.approx(ks_test_two_sample(a, b).statistic, abs=1e-9)

    def test_fraction_variant_normalises(self):
        # Same shape, different scale: identical after normalisation.
        assert mdcc_from_fractions([1, 2, 3], [2, 4, 6]) == pytest.approx(0.0)

    def test_fraction_variant_detects_shift(self):
        value = mdcc_from_fractions([1.0, 0.0, 0.0], [0.0, 0.0, 1.0])
        assert value == pytest.approx(1.0)

    def test_fraction_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mdcc_from_fractions([1.0], [1.0, 2.0])


class TestErrorMetrics:
    def test_confidence_interval_contains_mean(self, rng):
        sample = rng.normal(10.0, 2.0, 400)
        low, high = confidence_interval(sample, confidence=0.95)
        assert low < sample.mean() < high
        assert low < 10.0 < high

    def test_confidence_interval_narrows_with_more_data(self, rng):
        small = rng.normal(0, 1, 20)
        large = rng.normal(0, 1, 20_000)
        small_width = np.diff(confidence_interval(small))[0]
        large_width = np.diff(confidence_interval(large))[0]
        assert large_width < small_width

    def test_confidence_range_validated(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0, 3.0], confidence=1.5)

    def test_standard_error_formula(self):
        sample = np.asarray([2.0, 4.0, 6.0, 8.0])
        expected = sample.std(ddof=1) / 2.0
        assert standard_error(sample) == pytest.approx(expected)

    def test_standard_error_single_value(self):
        assert standard_error([5.0]) == 0.0
