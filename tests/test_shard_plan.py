"""Shard planning: apportionment exactness, derived seeds, plan JSON."""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import ImpressionsConfig
from repro.metadata.timestamps import TimestampModel
from repro.shard.plan import (
    ShardPlan,
    ShardPlanError,
    _apportion,
    _derive_seed,
    build_plan,
)

_settings = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --- Apportionment -------------------------------------------------------------


@given(
    total=st.integers(min_value=0, max_value=10**9),
    weights=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=32),
)
@_settings
def test_apportion_sums_exactly(total, weights):
    shares = _apportion(total, weights)
    assert sum(shares) == total
    assert all(share >= 0 for share in shares)


@given(
    count=st.integers(min_value=1, max_value=32),
    extra=st.integers(min_value=0, max_value=10**6),
    minimum=st.integers(min_value=1, max_value=50),
)
@_settings
def test_apportion_respects_minimum(count, extra, minimum):
    total = minimum * count + extra
    shares = _apportion(total, [1] * count, minimum=minimum)
    assert sum(shares) == total
    assert all(share >= minimum for share in shares)


def test_apportion_is_deterministic_under_ties():
    assert _apportion(10, [1, 1, 1]) == [4, 3, 3]
    assert _apportion(2, [1, 1, 1, 1]) == [1, 1, 0, 0]


# --- Seed derivation -----------------------------------------------------------


def test_derived_seeds_are_distinct_and_stable():
    seeds = [_derive_seed(42, 8, index) for index in range(8)]
    assert len(set(seeds)) == 8
    assert seeds == [_derive_seed(42, 8, index) for index in range(8)]
    # Different master seed or shard count gives a different stream.
    assert _derive_seed(43, 8, 0) != seeds[0]
    assert _derive_seed(42, 4, 0) != seeds[0]
    assert all(seed >= 0 for seed in seeds)


# --- Plan invariants -----------------------------------------------------------


@given(
    num_files=st.integers(min_value=1, max_value=100_000),
    num_dirs=st.integers(min_value=1, max_value=10_000),
    num_shards=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@_settings
def test_plan_partitions_every_file_into_exactly_one_shard(
    num_files, num_dirs, num_shards, seed
):
    """The partition property: shard file counts are ≥1 and sum exactly to the
    master count — no file is dropped, none is generated twice."""
    if num_shards > num_files:
        with pytest.raises(ShardPlanError):
            build_plan(
                ImpressionsConfig(num_files=num_files, num_directories=num_dirs, seed=seed),
                num_shards,
            )
        return
    plan = build_plan(
        ImpressionsConfig(num_files=num_files, num_directories=num_dirs, seed=seed),
        num_shards,
    )
    files = [spec.num_files for spec in plan.shards]
    assert sum(files) == num_files
    assert all(count >= 1 for count in files)
    # Each shard root is discarded at merge: merged dirs land exactly on target.
    assert 1 + sum(spec.num_directories - 1 for spec in plan.shards) == num_dirs
    assert all(spec.num_directories >= 1 for spec in plan.shards)
    assert len({spec.seed for spec in plan.shards}) == num_shards


def test_plan_apportions_pinned_size_and_capacity():
    config = ImpressionsConfig(
        num_files=100,
        num_directories=20,
        fs_size_bytes=10_000_000,
        disk_capacity_bytes=64 * 1024 * 1024,
    )
    plan = build_plan(config, 4)
    assert sum(spec.fs_size_bytes for spec in plan.shards) == 10_000_000
    assert sum(spec.disk_capacity_bytes for spec in plan.shards) == 64 * 1024 * 1024
    for spec in plan.shards:
        assert spec.fs_size_bytes >= 1
        assert spec.disk_capacity_bytes >= config.block_size


def test_plan_leaves_derived_size_derived():
    plan = build_plan(
        ImpressionsConfig(num_files=100, num_directories=20, fs_size_bytes=None), 4
    )
    assert all(spec.fs_size_bytes is None for spec in plan.shards)
    assert all(spec.disk_capacity_bytes is None for spec in plan.shards)


def test_plan_rejects_unpinned_timestamp_model():
    config = ImpressionsConfig(
        num_files=100,
        num_directories=20,
        timestamp_model=TimestampModel(),
    )
    with pytest.raises(ShardPlanError, match="timestamp_now"):
        build_plan(config, 2)


def test_plan_rejects_bad_shard_counts():
    config = ImpressionsConfig(num_files=10, num_directories=5)
    with pytest.raises(ShardPlanError):
        build_plan(config, 0)
    with pytest.raises(ShardPlanError, match="at least one file"):
        build_plan(config, 11)


def test_shard_configs_inherit_master_and_isolate_specials():
    master = ImpressionsConfig(num_files=100, num_directories=20, seed=9, layout_score=0.8)
    plan = build_plan(master, 3)
    configs = plan.configs()
    assert configs[0].special_directories == tuple(master.special_directories)
    for config in configs[1:]:
        assert config.special_directories == ()
    for spec, config in zip(plan.shards, configs):
        assert config.seed == spec.seed
        assert config.num_files == spec.num_files
        assert config.layout_score == 0.8


@given(
    num_files=st.integers(min_value=8, max_value=60),
    num_shards=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_generated_files_land_in_exactly_one_shard(num_files, num_shards, seed):
    """End to end: the merged image holds exactly the master's file count, at
    unique paths — no file lost to the split, none duplicated by the merge."""
    from repro.shard import generate_sharded

    if num_shards > num_files:
        num_shards = num_files
    config = ImpressionsConfig(
        num_files=num_files, num_directories=max(2, num_files // 6), seed=seed,
        fs_size_bytes=512 * 1024,
    )
    result = generate_sharded(config, num_shards=num_shards, jobs=1, digest=False)
    paths = [node.path() for node in result.image.tree.files]
    assert len(paths) == num_files
    assert len(set(paths)) == num_files
    directory_paths = [node.path() for node in result.image.tree.directories]
    assert len(set(directory_paths)) == len(directory_paths)


# --- Serialisation -------------------------------------------------------------


def test_plan_json_round_trip():
    plan = build_plan(ImpressionsConfig(num_files=100, num_directories=20, seed=3), 4)
    restored = ShardPlan.from_json(plan.to_json())
    assert restored.fingerprint() == plan.fingerprint()
    assert [spec.as_dict() for spec in restored.shards] == [
        spec.as_dict() for spec in plan.shards
    ]
    assert restored.master.to_knobs() == plan.master.to_knobs()


def test_plan_json_rejects_tampering():
    plan = build_plan(ImpressionsConfig(num_files=100, num_directories=20), 2)
    data = json.loads(plan.to_json())
    data["shards"][0]["num_files"] += 1
    with pytest.raises(ShardPlanError, match="fingerprint mismatch"):
        ShardPlan.from_dict(data)


def test_plan_json_rejects_wrong_kind_and_format():
    plan = build_plan(ImpressionsConfig(num_files=10, num_directories=2), 2)
    data = json.loads(plan.to_json())
    bad_kind = dict(data, kind="something-else")
    with pytest.raises(ShardPlanError, match="not a shard plan"):
        ShardPlan.from_dict(bad_kind)
    bad_format = dict(data, format=999)
    with pytest.raises(ShardPlanError, match="format"):
        ShardPlan.from_dict(bad_format)


def test_plan_json_refuses_knob_escaping_config():
    config = ImpressionsConfig(
        num_files=10,
        num_directories=2,
        timestamp_model=TimestampModel(),
        timestamp_now=1_600_000_000.0,
    )
    plan = build_plan(config, 2)
    with pytest.raises(ShardPlanError, match="knob"):
        plan.to_json()


def test_plan_fingerprint_depends_on_shard_count_and_seed():
    base = ImpressionsConfig(num_files=100, num_directories=20, seed=1)
    assert build_plan(base, 2).fingerprint() != build_plan(base, 4).fingerprint()
    other = ImpressionsConfig(num_files=100, num_directories=20, seed=2)
    assert build_plan(base, 4).fingerprint() != build_plan(other, 4).fingerprint()
