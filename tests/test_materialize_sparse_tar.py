"""SparseTarSink: GNU sparse archives that scale with file count, not bytes."""

from __future__ import annotations

import os
import tarfile

import pytest

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.core.impressions import Impressions
from repro.materialize import (
    SparseTarSink,
    TarSink,
    build_sink,
    materialize_image,
)
from repro.metadata.timestamps import TimestampModel


def golden_image() -> FileSystemImage:
    config = ImpressionsConfig(
        fs_size_bytes=2 * 1024 * 1024, num_files=40, num_directories=10, seed=13
    )
    return Impressions(config).generate()


class TestSparseTarRoundTrip:
    def test_tarfile_reads_members_with_apparent_sizes(self, small_image, tmp_path):
        """Python's tarfile understands the oldgnu sparse members we write."""
        archive = str(tmp_path / "img.tar")
        result = materialize_image(small_image, SparseTarSink(archive))
        with tarfile.open(archive) as tar:
            members = tar.getmembers()
            by_name = {member.name.rstrip("/"): member for member in members}
            for node in small_image.tree.files:
                info = by_name[node.path().lstrip("/")]
                # tarfile reports the *apparent* size for sparse members.
                assert info.size == node.size
                assert info.issparse() == (node.size > 0)
        assert len(members) == small_image.file_count + small_image.directory_count - 1
        assert result.extras["sparse_members"] == sum(
            1 for node in small_image.tree.files if node.size
        )
        assert result.extras["apparent_bytes"] == small_image.total_bytes

    def test_extracted_bytes_match_directory_sink_sparse_files(
        self, small_image, tmp_path
    ):
        """Extraction reproduces DirectorySink's metadata-only files exactly:
        all zeros at the full apparent size (the hole plus the final byte)."""
        archive = str(tmp_path / "img.tar")
        materialize_image(small_image, SparseTarSink(archive))
        with tarfile.open(archive) as tar:
            probe = max(small_image.tree.files, key=lambda node: node.size)
            data = tar.extractfile(probe.path().lstrip("/")).read()
        assert len(data) == probe.size
        assert data == b"\0" * probe.size

    def test_archive_is_small_relative_to_apparent_bytes(self, small_image, tmp_path):
        """The whole point: archived bytes track file count, not image size."""
        sparse = str(tmp_path / "sparse.tar")
        dense = str(tmp_path / "dense.tar")
        result = materialize_image(small_image, SparseTarSink(sparse))
        materialize_image(small_image, TarSink(dense))
        assert result.extras["archive_bytes"] < os.path.getsize(dense)
        # Headers + one 512-byte data block per file, padded to the record
        # size — nowhere near the image's nominal bytes.
        assert result.extras["archive_bytes"] < small_image.total_bytes

    def test_plan_is_downgraded_to_metadata_only(self, content_image, tmp_path):
        result = materialize_image(
            content_image, SparseTarSink(str(tmp_path / "img.tar"))
        )
        assert result.write_content is False

    def test_timestamped_entries_carry_model_mtimes(self, tmp_path):
        config = ImpressionsConfig(
            fs_size_bytes=4 * 1024 * 1024,
            num_files=80,
            num_directories=20,
            seed=5,
            timestamp_model=TimestampModel(),
            timestamp_now=1_700_000_000.0,
        )
        image = Impressions(config).generate()
        archive = str(tmp_path / "img.tar")
        materialize_image(image, SparseTarSink(archive))
        with tarfile.open(archive) as tar:
            probe = image.tree.files[0]
            info = tar.getmember(probe.path().lstrip("/"))
            assert info.mtime == int(probe.timestamps.modified)

    def test_gnu_tar_can_list_the_archive_if_available(self, small_image, tmp_path):
        import shutil
        import subprocess

        if shutil.which("tar") is None:
            pytest.skip("no tar binary on PATH")
        archive = str(tmp_path / "img.tar")
        materialize_image(small_image, SparseTarSink(archive))
        listing = subprocess.run(
            ["tar", "-tf", archive], capture_output=True, text=True
        )
        if listing.returncode != 0:  # non-GNU tar may lack sparse support
            pytest.skip(f"tar cannot read GNU sparse members: {listing.stderr}")
        names = set(listing.stdout.splitlines())
        probe = small_image.tree.files[0]
        assert probe.path().lstrip("/") in names


class TestSparseTarDeterminism:
    #: SHA-256 of the sparse .tar for the seeded golden image — pins header
    #: layout, sparse maps, entry ordering, and padding.  Recompute with this
    #: test when the materialize format version changes.
    GOLDEN_SHA256 = "ae53ab0497f3152021f80184e6ec03c795ef94673b1ca13a676b829a9ff61ff5"

    def test_seeded_image_digest_pinned(self, tmp_path):
        result = materialize_image(golden_image(), SparseTarSink(str(tmp_path / "g.tar")))
        assert result.extras["archive_sha256"] == self.GOLDEN_SHA256

    def test_two_generations_identical(self, tmp_path):
        first = materialize_image(golden_image(), SparseTarSink(str(tmp_path / "a.tar")))
        second = materialize_image(golden_image(), SparseTarSink(str(tmp_path / "b.tar")))
        assert first.extras["archive_sha256"] == second.extras["archive_sha256"]
        with open(str(tmp_path / "a.tar"), "rb") as a, open(
            str(tmp_path / "b.tar"), "rb"
        ) as b:
            assert a.read() == b.read()

    def test_gzip_variant_deterministic(self, tmp_path):
        first = materialize_image(
            golden_image(), SparseTarSink(str(tmp_path / "a.tar.gz"))
        )
        second = materialize_image(
            golden_image(), SparseTarSink(str(tmp_path / "b.tar.gz"))
        )
        assert first.extras["compressed"] is True
        assert first.extras["archive_sha256"] == second.extras["archive_sha256"]


class TestBuildSinkSpelling:
    def test_sparse_tar_spelling(self, tmp_path):
        sink = build_sink("sparse-tar", str(tmp_path / "a.tar"))
        assert isinstance(sink, SparseTarSink)

    def test_long_paths_round_trip_via_longname_members(self, tmp_path):
        """Names past the 100-byte header field use GNU 'L' longname entries."""
        from repro.namespace.tree import FileSystemTree

        tree = FileSystemTree()
        deep = tree.root
        for index in range(12):
            deep = tree.create_directory(deep, name=f"directory-{index:04d}-padding")
        node = tree.create_file(deep, size=4096, extension="txt")
        image = FileSystemImage(tree=tree)
        archive = str(tmp_path / "deep.tar")
        materialize_image(image, SparseTarSink(archive))
        expected = node.path().lstrip("/")
        assert len(expected) > 100
        with tarfile.open(archive) as tar:
            info = tar.getmember(expected)
            assert info.size == node.size
