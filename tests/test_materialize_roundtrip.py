"""Round-trip verification tests: materialize → import → distribution checks."""

from __future__ import annotations

import os

import pytest

from repro.core.config import ImpressionsConfig
from repro.dataset.importer import import_directory_tree
from repro.materialize import (
    DirectorySink,
    MaterializeError,
    NullSink,
    TarSink,
    materialize_image,
    verify_round_trip,
)


class TestDirectoryRoundTrip:
    def test_full_round_trip_passes(self, small_image, small_config, tmp_path):
        result = materialize_image(small_image, DirectorySink(str(tmp_path / "img")))
        verification = result.verify(config=small_config, record=False)
        assert verification.source == "imported"
        assert verification.passed, verification.render_text()
        names = {check.name for check in verification.checks}
        assert {
            "file_count",
            "directory_count",
            "size_ks",
            "depth_chi2",
            "extension_chi2",
            "size_model_mdcc",
        } <= names

    def test_imported_distributions_match_exactly(self, small_image, tmp_path):
        """The KS / chi-square statistics are 0 for a faithful round trip."""
        result = materialize_image(small_image, DirectorySink(str(tmp_path / "img")))
        verification = result.verify(record=False)
        by_name = {check.name: check for check in verification.checks}
        assert by_name["size_ks"].statistic == pytest.approx(0.0)
        assert by_name["depth_chi2"].statistic == pytest.approx(0.0)
        assert by_name["extension_chi2"].statistic == pytest.approx(0.0)

    def test_content_round_trip(self, content_image, tmp_path):
        result = materialize_image(content_image, DirectorySink(str(tmp_path / "img")))
        assert result.verify(record=False).passed

    def test_tampered_tree_fails(self, small_image, tmp_path):
        result = materialize_image(small_image, DirectorySink(str(tmp_path / "img")))
        victim = os.path.join(str(tmp_path / "img"), small_image.tree.files[0].path().lstrip("/"))
        os.remove(victim)
        verification = result.verify(record=False)
        assert not verification.passed
        failed = {check.name for check in verification.checks if not check.passed}
        assert "file_count" in failed

    def test_truncated_sizes_detected(self, small_image, tmp_path):
        """Rewriting files to zero length flips the size KS check."""
        result = materialize_image(small_image, DirectorySink(str(tmp_path / "img")))
        for node in small_image.tree.files[: small_image.file_count // 2]:
            path = os.path.join(str(tmp_path / "img"), node.path().lstrip("/"))
            with open(path, "wb"):
                pass
        verification = result.verify(record=False)
        by_name = {check.name: check for check in verification.checks}
        assert not by_name["size_ks"].passed

    def test_verification_recorded_in_report(self, small_config, tmp_path):
        from repro.core.impressions import Impressions

        image = Impressions(small_config).generate()
        result = materialize_image(image, DirectorySink(str(tmp_path / "img")))
        verification = result.verify(config=small_config)
        recorded = image.report.derived["materialize_verification"]
        assert recorded["passed"] is verification.passed
        assert recorded["sink"] == "dir"
        assert recorded["source"] == "imported"
        assert recorded["checks"]["size_ks"] is True

    def test_importer_sees_apparent_sizes(self, small_image, tmp_path):
        """Sparse metadata-only files still round-trip their logical sizes."""
        materialize_image(small_image, DirectorySink(str(tmp_path / "img")))
        snapshot = import_directory_tree(str(tmp_path / "img"))
        assert sorted(record.size for record in snapshot.files) == sorted(
            small_image.tree.file_sizes()
        )


class TestNonDirectoryVerification:
    def test_null_sink_verifies_against_image(self, small_image, small_config):
        verification = materialize_image(small_image, NullSink()).verify(
            config=small_config, record=False
        )
        assert verification.source == "image"
        assert verification.passed

    def test_tar_sink_verifies_against_image(self, small_image, small_config, tmp_path):
        result = materialize_image(small_image, TarSink(str(tmp_path / "img.tar")))
        verification = result.verify(config=small_config, record=False)
        assert verification.source == "image"
        assert verification.passed

    def test_size_model_check_needs_config(self, small_image):
        verification = materialize_image(small_image, NullSink()).verify(record=False)
        assert "size_model_mdcc" not in {check.name for check in verification.checks}

    def test_size_model_mdcc_tolerance_enforced(self, small_image, small_config):
        result = materialize_image(small_image, NullSink())
        strict = verify_round_trip(
            small_image, result, config=small_config, size_mdcc_tolerance=1e-9
        )
        by_name = {check.name: check for check in strict.checks}
        assert not by_name["size_model_mdcc"].passed

    def test_result_without_image_rejected(self, small_image):
        result = materialize_image(small_image, NullSink())
        result._image = None
        with pytest.raises(MaterializeError):
            result.verify()


class TestConstrainedImageRoundTrip:
    def test_enforced_size_image_still_verifies(self, tmp_path):
        """Constraint-resolved sizes stay within the (loose) MDCC gate."""
        from repro.core.impressions import Impressions

        config = ImpressionsConfig(
            fs_size_bytes=16 * 1024 * 1024,
            num_files=200,
            num_directories=40,
            seed=9,
            enforce_fs_size=True,
        )
        image = Impressions(config).generate()
        result = materialize_image(image, DirectorySink(str(tmp_path / "img")))
        verification = result.verify(config=config, record=False)
        assert verification.passed, verification.render_text()
