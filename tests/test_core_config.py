"""Unit tests for ImpressionsConfig (Table 2 defaults and derived values)."""

from __future__ import annotations

import pytest

from repro.core.config import GIB, ImpressionsConfig
from repro.stats.distributions import HybridLognormalPareto, LognormalDistribution, MixtureOfLognormals


class TestDefaults:
    def test_paper_default_shape(self):
        config = ImpressionsConfig()
        assert config.fs_size_bytes == int(4.55 * GIB)
        assert config.num_files == 20_000
        assert config.num_directories == 4_000
        assert config.layout_score == 1.0

    def test_default_models_match_table2(self):
        config = ImpressionsConfig()
        size_model = config.resolved_size_model()
        assert isinstance(size_model, HybridLognormalPareto)
        assert size_model.params()["mu"] == pytest.approx(9.48)
        bytes_model = config.resolved_bytes_model()
        assert isinstance(bytes_model, MixtureOfLognormals)
        assert config.depth_distribution.lam == pytest.approx(6.49)
        assert config.directory_file_count_model.offset == pytest.approx(2.36)

    def test_default_special_directories_enabled(self):
        config = ImpressionsConfig()
        assert len(config.special_directories) == 4

    def test_parameter_table_mentions_key_models(self):
        table = ImpressionsConfig().parameter_table()
        assert "File size by count" in table
        assert "Generative model" in table["Directory count w/ depth"]
        assert "poisson" in table["File count w/ depth"]
        assert table["Seed"] == "42"


class TestValidation:
    def test_needs_size_or_file_count(self):
        with pytest.raises(ValueError):
            ImpressionsConfig(fs_size_bytes=None, num_files=None)

    def test_positive_values_enforced(self):
        with pytest.raises(ValueError):
            ImpressionsConfig(fs_size_bytes=0)
        with pytest.raises(ValueError):
            ImpressionsConfig(num_files=0)
        with pytest.raises(ValueError):
            ImpressionsConfig(num_directories=0)
        with pytest.raises(ValueError):
            ImpressionsConfig(layout_score=0.0)
        with pytest.raises(ValueError):
            ImpressionsConfig(beta=0.0)
        with pytest.raises(ValueError):
            ImpressionsConfig(files_per_directory=0.0)
        with pytest.raises(ValueError):
            ImpressionsConfig(block_size=0)


class TestDerivedValues:
    def test_num_files_derived_from_size(self):
        config = ImpressionsConfig(fs_size_bytes=GIB, num_files=None, num_directories=None)
        derived = config.resolved_num_files()
        assert derived > 100
        # Derivation is deterministic for a given seed.
        assert derived == config.resolved_num_files()

    def test_num_directories_derived_from_files(self):
        config = ImpressionsConfig(num_files=1_000, num_directories=None, files_per_directory=10.0)
        assert config.resolved_num_directories() == 100

    def test_explicit_values_win(self):
        config = ImpressionsConfig(num_files=123, num_directories=45)
        assert config.resolved_num_files() == 123
        assert config.resolved_num_directories() == 45

    def test_simple_size_model_toggle(self):
        config = ImpressionsConfig(use_simple_size_model=True)
        assert isinstance(config.resolved_size_model(), LognormalDistribution)

    def test_custom_size_model_overrides(self):
        custom = LognormalDistribution(mu=5.0, sigma=1.0)
        config = ImpressionsConfig(file_size_model=custom)
        assert config.resolved_size_model() is custom

    def test_disk_capacity_has_headroom(self):
        config = ImpressionsConfig(fs_size_bytes=100 * 1024 * 1024)
        assert config.resolved_disk_capacity() > 100 * 1024 * 1024

    def test_disk_capacity_explicit(self):
        config = ImpressionsConfig(disk_capacity_bytes=123456789)
        assert config.resolved_disk_capacity() == 123456789

    def test_disk_capacity_without_fs_size(self):
        config = ImpressionsConfig(fs_size_bytes=None, num_files=500)
        assert config.resolved_disk_capacity() > 0

    def test_placement_model_propagates_settings(self):
        config = ImpressionsConfig(use_multiplicative_depth_model=False, special_directories=())
        model = config.placement_model()
        assert model.use_multiplicative_model is False
        assert model.special_directories == ()

    def test_with_overrides_copies(self):
        base = ImpressionsConfig()
        derived = base.with_overrides(seed=99, layout_score=0.9)
        assert derived.seed == 99
        assert derived.layout_score == 0.9
        assert base.seed == 42
        assert derived.num_files == base.num_files
