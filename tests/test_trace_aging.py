"""Tests for trace-driven aging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.layout.layout_score import layout_score
from repro.trace.aging import TraceAger, age_image_to_score
from repro.trace.ops import OperationTrace


def _fresh_image(seed: int = 7) -> "Impressions":
    config = ImpressionsConfig(
        fs_size_bytes=48 * 1024 * 1024,
        num_files=400,
        num_directories=80,
        seed=seed,
    )
    return Impressions(config).generate()


class TestTargetConvergence:
    @pytest.mark.parametrize("target", [0.9, 0.7, 0.5])
    def test_reaches_target_within_tolerance(self, target):
        image = _fresh_image()
        result = age_image_to_score(image, target, seed=5)
        assert result.error <= 0.05
        # The score the ager reports is the score the disk actually has.
        names = [f.path() for f in image.tree.files if image.disk.has_file(f.path())]
        assert layout_score(image.disk, names) == pytest.approx(result.achieved_score)

    def test_matches_fragmenter_on_same_image_config(self):
        """Trace-driven aging and the fragmenter reach the same target score."""
        target = 0.8
        aged = _fresh_image()
        aging_result = age_image_to_score(aged, target, seed=5)

        fragmented = Impressions(
            ImpressionsConfig(
                fs_size_bytes=48 * 1024 * 1024,
                num_files=400,
                num_directories=80,
                seed=7,
                layout_score=target,
            )
        ).generate()
        fragmenter_score = fragmented.achieved_layout_score()

        assert aging_result.error <= 0.05
        assert abs(fragmenter_score - target) <= 0.05
        assert abs(aging_result.achieved_score - fragmenter_score) <= 0.1

    def test_target_one_is_a_noop(self):
        image = _fresh_image()
        result = age_image_to_score(image, 1.0, seed=5)
        assert result.files_rewritten == 0
        assert result.achieved_score == pytest.approx(result.initial_score)


class TestTraceSideEffects:
    def test_trace_is_replayable_and_reaches_same_score(self):
        """Replaying the emitted trace on a fresh identical image reproduces the score."""
        image_a = _fresh_image()
        result = age_image_to_score(image_a, 0.8, seed=5)

        from repro.trace.replay import TraceReplayer

        image_b = _fresh_image()
        restored = OperationTrace.from_jsonl(result.trace.to_jsonl())
        TraceReplayer(image_b).replay(restored)
        names = [f.path() for f in image_b.tree.files if image_b.disk.has_file(f.path())]
        assert layout_score(image_b.disk, names) == pytest.approx(result.achieved_score)

    def test_no_temporaries_survive(self):
        image = _fresh_image()
        age_image_to_score(image, 0.8, seed=5)
        assert not any(name.startswith("/.aging-tmp") for name in image.disk.file_names())

    def test_tree_blocklists_synced(self):
        image = _fresh_image()
        age_image_to_score(image, 0.8, seed=5)
        for node in image.tree.files:
            if image.disk.has_file(node.path()):
                assert node.block_list == image.disk.blocks_of(node.path())

    def test_timings_and_report_recorded(self):
        image = _fresh_image()
        age_image_to_score(image, 0.9, seed=5)
        assert image.extras["timings"].extras["trace_aging"] > 0
        assert "trace_aging" in image.extras["timings"].as_dict()
        assert "trace_aging_score" in image.report.derived

    def test_determinism(self):
        result_a = age_image_to_score(_fresh_image(), 0.8, seed=5)
        result_b = age_image_to_score(_fresh_image(), 0.8, seed=5)
        assert result_a.trace.to_jsonl() == result_b.trace.to_jsonl()
        assert result_a.achieved_score == result_b.achieved_score


class TestValidation:
    def test_invalid_target_rejected(self):
        image = _fresh_image()
        with pytest.raises(ValueError):
            TraceAger(image, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            TraceAger(image, 1.5, np.random.default_rng(0))

    def test_image_without_disk_rejected(self):
        from repro.core.image import FileSystemImage
        from repro.namespace.tree import FileSystemTree

        with pytest.raises(ValueError):
            TraceAger(FileSystemImage(tree=FileSystemTree()), 0.8, np.random.default_rng(0))
