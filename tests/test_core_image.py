"""Unit tests for FileSystemImage (summary, content lookup, materialisation)."""

from __future__ import annotations

import os

import pytest

from repro.core.image import FileSystemImage
from repro.namespace.tree import FileNode, FileSystemTree


class TestSummary:
    def test_summary_fields(self, small_image):
        summary = small_image.summary()
        assert summary["files"] == small_image.file_count
        assert summary["directories"] == small_image.directory_count
        assert summary["total_bytes"] == small_image.total_bytes
        assert summary["layout_score"] == pytest.approx(1.0)
        assert summary["content"] == "metadata only"

    def test_content_label_when_enabled(self, content_image):
        assert content_image.summary()["content"] == "hybrid"

    def test_layout_score_without_disk(self):
        image = FileSystemImage(tree=FileSystemTree())
        assert image.achieved_layout_score() == 1.0


class TestContentAccess:
    def test_metadata_only_image_has_no_content(self, small_image):
        with pytest.raises(RuntimeError):
            small_image.file_content(small_image.tree.files[0])

    def test_foreign_file_rejected(self, content_image):
        foreign = FileNode(name="x", size=10, extension="txt", depth=1)
        with pytest.raises(ValueError):
            content_image.file_content(foreign)

    def test_iter_file_contents_covers_every_file(self, content_image):
        pairs = list(content_image.iter_file_contents())
        assert len(pairs) == content_image.file_count
        for file_node, content in pairs[:10]:
            assert len(content) == file_node.size


class TestMaterialisation:
    def test_metadata_only_materialisation(self, small_image, tmp_path):
        target = tmp_path / "image"
        written = small_image.materialize(str(target))
        assert written == small_image.file_count
        # Spot-check a few files: they exist with the right apparent size.
        for file_node in small_image.tree.files[:10]:
            path = target / file_node.path().lstrip("/")
            assert path.exists()
            assert path.stat().st_size == file_node.size

    def test_directories_materialised(self, small_image, tmp_path):
        target = tmp_path / "image"
        small_image.materialize(str(target))
        for directory in small_image.tree.directories[:20]:
            assert (target / directory.path().lstrip("/")).is_dir()

    def test_content_materialisation_writes_real_bytes(self, content_image, tmp_path):
        target = tmp_path / "content-image"
        written = content_image.materialize(str(target), write_content=True)
        assert written == content_image.file_count
        checked = 0
        for file_node in content_image.tree.files:
            if 0 < file_node.size <= 65_536:
                path = target / file_node.path().lstrip("/")
                data = path.read_bytes()
                assert len(data) == file_node.size
                checked += 1
            if checked >= 5:
                break
        assert checked > 0

    def test_content_requested_without_generator_rejected(self, small_image, tmp_path):
        with pytest.raises(RuntimeError):
            small_image.materialize(str(tmp_path / "x"), write_content=True)

    def test_materialisation_is_idempotent(self, small_image, tmp_path):
        target = str(tmp_path / "image")
        small_image.materialize(target)
        written = small_image.materialize(target)
        assert written == small_image.file_count

    def test_materialised_tree_matches_os_walk(self, small_image, tmp_path):
        target = tmp_path / "image"
        small_image.materialize(str(target))
        file_count = sum(len(files) for _, _, files in os.walk(target))
        assert file_count == small_image.file_count
