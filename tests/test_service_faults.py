"""Service-layer fault hardening: retries, derived lock age, HTTP backoff."""

from __future__ import annotations

import errno
import threading

import pytest

from repro.faults import FaultPlan, FaultSpec, InjectedCrash, use
from repro.service.api import FarmService, make_server
from repro.service.cli import HttpClient, ServiceCliError, _http_json
from repro.service.queue import JobQueue
from repro.service.worker import Worker, WorkerOptions, derived_lock_max_age

SPEC = {
    "name": "faulty",
    "base": {"num_directories": 4, "fs_size_bytes": 4 * 1024 * 1024, "seed": 3},
    "sweep": {"num_files": [20]},
    "steps": [{"step": "summary"}],
}


class TestDerivedLockMaxAge:
    def test_below_min_samples_uses_the_knob(self):
        assert derived_lock_max_age([1.0] * 7, 3600.0) == 3600.0

    def test_p99_times_safety_factor(self):
        # 10 samples: the p99 index lands on the slowest observed job.
        durations = [10.0] * 9 + [30.0]
        assert derived_lock_max_age(durations, 3600.0) == 30.0 * 20.0

    def test_short_jobs_clamp_to_the_floor(self):
        # Smoke scenarios finishing in ~1s must not yield a 20s lock age.
        assert derived_lock_max_age([1.0] * 50, 3600.0) == 60.0

    def test_never_exceeds_the_configured_ceiling(self):
        # Hour-long jobs: p99 x 20 would dwarf the knob; the knob wins.
        assert derived_lock_max_age([3600.0] * 20, 7200.0) == 7200.0

    def test_regression_fixed_knob_no_longer_blind_to_workload(self):
        """The ROADMAP follow-up: lock age tracks telemetry, not a constant."""
        fast_farm = derived_lock_max_age([2.0] * 100, 3600.0)
        slow_farm = derived_lock_max_age([150.0] * 100, 3600.0)
        assert fast_farm < slow_farm < 3600.0


class TestWorkerQueueIoRetry:
    @pytest.fixture
    def worker(self, tmp_path):
        options = WorkerOptions(
            queue_path=str(tmp_path / "queue.sqlite"),
            store_path=str(tmp_path / "results.jsonl"),
            worker_id="w1",
            queue_retry_backoff=0.0,
        )
        worker = Worker(options)
        yield worker
        worker.queue.close()

    def test_transient_os_errors_are_retried(self, worker):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(errno.EIO, "transient")
            return "ok"

        assert worker._queue_io("lease", flaky) == "ok"
        assert calls["n"] == 3

    def test_exhausted_retries_raise_the_original_error(self, worker):
        def always_broken():
            raise OSError(errno.EIO, "persistent")

        with pytest.raises(OSError):
            worker._queue_io("ack", always_broken)

    def test_injected_crash_is_never_retried(self, worker):
        calls = {"n": 0}

        def dies():
            calls["n"] += 1
            raise InjectedCrash("queue.lease")

        with pytest.raises(InjectedCrash):
            worker._queue_io("lease", dies)
        assert calls["n"] == 1


class TestQueueFaultPoints:
    def test_lease_and_ack_surface_injected_errors(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue.sqlite"))
        try:
            queue.submit(SPEC, str(tmp_path / "results.jsonl"))
            plan = FaultPlan(
                specs=(
                    FaultSpec(point="queue.lease", kind="enospc"),
                    FaultSpec(point="queue.ack", kind="eio"),
                )
            )
            with use(plan):
                with pytest.raises(OSError) as excinfo:
                    queue.lease("w1", 30.0)
                assert excinfo.value.errno == errno.ENOSPC
                job = queue.lease("w1", 30.0)  # fault fired once; retry works
                assert job is not None
                with pytest.raises(OSError) as excinfo:
                    queue.ack(job.job_id, "w1", duration_seconds=0.1)
                assert excinfo.value.errno == errno.EIO
                assert queue.ack(job.job_id, "w1", duration_seconds=0.1)
        finally:
            queue.close()


@pytest.fixture
def live_server(tmp_path):
    queue = JobQueue(str(tmp_path / "queue.sqlite"))
    service = FarmService(queue, str(tmp_path / "results.jsonl"))
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)
    queue.close()


class TestHttpClientRetry:
    def test_transient_request_faults_are_retried(self, live_server):
        client = HttpClient(live_server, timeout=10.0)
        plan = FaultPlan(specs=(FaultSpec(point="client.request", kind="eio"),))
        with use(plan):
            stats = client.stats()
        assert "jobs" in stats

    def test_client_errors_are_not_retried(self, live_server):
        with pytest.raises(ServiceCliError):
            _http_json(f"{live_server}/no/such/endpoint", timeout=10.0, retries=3)

    def test_resubmission_is_idempotent(self, live_server):
        client = HttpClient(live_server, timeout=10.0)
        first = client.submit({"spec": SPEC})
        # A lost response makes the client resubmit; the fingerprint-keyed
        # queue dedupes, so nothing is enqueued twice.
        second = client.submit({"spec": SPEC})
        assert first["enqueued"] == 1
        assert second["enqueued"] == 0
        assert second["deduped"] == 1

    def test_exhausted_retries_surface_a_typed_error(self):
        with pytest.raises(ServiceCliError):
            _http_json("http://127.0.0.1:9/unroutable", timeout=0.2, retries=1)
