"""Unit tests for the generative directory-tree model (Agrawal et al.)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.namespace.generative_model import (
    GenerativeTreeModel,
    build_deep_tree,
    build_flat_tree,
)


class TestGenerativeModel:
    def test_directory_count_exact(self, rng):
        tree = GenerativeTreeModel().generate(500, rng)
        assert tree.directory_count == 500

    def test_single_directory_is_just_root(self, rng):
        tree = GenerativeTreeModel().generate(1, rng)
        assert tree.directory_count == 1
        assert tree.max_depth() == 0

    def test_invalid_count_rejected(self, rng):
        with pytest.raises(ValueError):
            GenerativeTreeModel().generate(0, rng)

    def test_invalid_offset_rejected(self):
        with pytest.raises(ValueError):
            GenerativeTreeModel(attachment_offset=0.0)

    def test_grow_existing_tree(self, rng):
        model = GenerativeTreeModel()
        tree = model.generate(50, rng)
        model.grow(tree, 25, rng)
        assert tree.directory_count == 75

    def test_grow_zero_is_noop(self, rng):
        model = GenerativeTreeModel()
        tree = model.generate(10, rng)
        model.grow(tree, 0, rng)
        assert tree.directory_count == 10

    def test_reproducible_from_seed(self):
        a = GenerativeTreeModel().generate(200, np.random.default_rng(1))
        b = GenerativeTreeModel().generate(200, np.random.default_rng(1))
        assert a.directories_by_depth() == b.directories_by_depth()
        assert sorted(a.directory_subdir_counts()) == sorted(b.directory_subdir_counts())

    def test_depth_distribution_is_moderate(self, rng):
        """The generative model produces bushy trees, not chains."""
        tree = GenerativeTreeModel().generate(1_000, rng)
        assert 3 <= tree.max_depth() <= 40
        depths = tree.directories_by_depth()
        # Most mass is at shallow-to-middle depths.
        shallow = sum(count for depth, count in depths.items() if depth <= 6)
        assert shallow / tree.directory_count > 0.5

    def test_subdirectory_counts_are_heavy_tailed(self, rng):
        tree = GenerativeTreeModel().generate(2_000, rng)
        counts = np.asarray(tree.directory_subdir_counts())
        # Most directories have no subdirectories, a few have many.
        assert (counts == 0).mean() > 0.4
        assert counts.max() >= 10

    def test_higher_offset_flattens_tree(self):
        """A larger attachment offset weakens preferential attachment, so the
        root (and other low-C(d) directories) win more children."""
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        skewed = GenerativeTreeModel(attachment_offset=0.5).generate(800, rng_a)
        flat = GenerativeTreeModel(attachment_offset=50.0).generate(800, rng_b)
        max_subdirs_skewed = max(skewed.directory_subdir_counts())
        max_subdirs_flat = max(flat.directory_subdir_counts())
        assert max_subdirs_skewed > max_subdirs_flat


class TestDeterministicTrees:
    def test_flat_tree_shape(self):
        tree = build_flat_tree(100)
        assert tree.directory_count == 100
        assert tree.max_depth() == 1
        assert tree.root.subdirectory_count == 99

    def test_deep_tree_shape(self):
        tree = build_deep_tree(100)
        assert tree.directory_count == 100
        assert tree.max_depth() == 99
        assert all(d.subdirectory_count <= 1 for d in tree.directories)

    def test_single_directory_trees(self):
        assert build_flat_tree(1).directory_count == 1
        assert build_deep_tree(1).max_depth() == 0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            build_flat_tree(0)
        with pytest.raises(ValueError):
            build_deep_tree(0)
