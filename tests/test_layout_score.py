"""Unit tests for the layout-score metric (Smith & Seltzer)."""

from __future__ import annotations

import pytest

from repro.layout.disk import SimulatedDisk
from repro.layout.layout_score import (
    file_layout_score,
    layout_score,
    layout_score_from_blockmaps,
    per_file_scores,
)


class TestFileLayoutScore:
    def test_contiguous_file_scores_one(self):
        assert file_layout_score([5, 6, 7, 8]) == 1.0

    def test_fully_scattered_file(self):
        blocks = [0, 10, 20, 30]
        assert file_layout_score(blocks) == pytest.approx(1 / 4)

    def test_single_block_and_empty_files_score_one(self):
        assert file_layout_score([3]) == 1.0
        assert file_layout_score([]) == 1.0

    def test_partial_fragmentation(self):
        # one discontinuity among 3 transitions -> (2 optimal + first) / 4
        assert file_layout_score([0, 1, 5, 6]) == pytest.approx(0.75)


class TestAggregateScore:
    def test_all_contiguous_scores_one(self):
        assert layout_score_from_blockmaps([[0, 1, 2], [10, 11]]) == 1.0

    def test_no_adjacency_scores_zero(self):
        assert layout_score_from_blockmaps([[0, 2, 4], [10, 20]]) == 0.0

    def test_weighted_by_block_count(self):
        # File A: 9 optimal of 9 candidates; file B: 0 of 1 candidate.
        maps = [list(range(10)), [100, 200]]
        assert layout_score_from_blockmaps(maps) == pytest.approx(9 / 10)

    def test_only_small_files_scores_one(self):
        assert layout_score_from_blockmaps([[1], [], [7]]) == 1.0

    def test_layout_score_over_disk(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("a", 10 * 4096)
        disk.allocate("b", 10 * 4096)
        assert layout_score(disk) == 1.0

    def test_layout_score_subset_of_files(self):
        disk = SimulatedDisk(num_blocks=200)
        disk.allocate("a", 4 * 4096)
        disk.allocate("gap", 4096)
        disk.allocate("b", 4 * 4096)
        disk.delete("gap")
        disk.allocate("fragmented", 8 * 4096)
        full = layout_score(disk)
        only_a = layout_score(disk, ["a"])
        assert only_a == 1.0
        assert full < 1.0

    def test_per_file_scores(self):
        disk = SimulatedDisk(num_blocks=100)
        disk.allocate("a", 3 * 4096)
        scores = per_file_scores(disk)
        assert scores == {"a": 1.0}

    def test_empty_disk_scores_one(self):
        disk = SimulatedDisk(num_blocks=10)
        assert layout_score(disk) == 1.0
