"""Unit tests for the buffer-cache model."""

from __future__ import annotations

import pytest

from repro.workloads.cache import BufferCache


class TestBufferCache:
    def test_miss_then_hit(self):
        cache = BufferCache()
        assert cache.access("a", 100) is False
        assert cache.access("a", 100) is True
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio() == 0.5

    def test_unbounded_cache_never_evicts(self):
        cache = BufferCache()
        for index in range(1_000):
            cache.access(f"k{index}", 1_000_000)
        assert len(cache) == 1_000

    def test_capacity_evicts_lru(self):
        cache = BufferCache(capacity_bytes=300)
        cache.access("a", 100)
        cache.access("b", 100)
        cache.access("c", 100)
        cache.access("a", 100)  # refresh a
        cache.access("d", 100)  # evicts b (least recently used)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_object_larger_than_cache_not_cached(self):
        cache = BufferCache(capacity_bytes=100)
        cache.access("huge", 500)
        assert "huge" not in cache
        assert cache.used_bytes == 0

    def test_warm_does_not_count_statistics(self):
        cache = BufferCache()
        cache.warm({"a": 10, "b": 20})
        assert cache.hits == 0 and cache.misses == 0
        assert cache.access("a", 10) is True

    def test_invalidate_empties_cache(self):
        cache = BufferCache()
        cache.access("a", 10)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.used_bytes == 0
        assert cache.access("a", 10) is False

    def test_reaccess_updates_size(self):
        cache = BufferCache(capacity_bytes=1_000)
        cache.access("a", 100)
        cache.access("a", 100)
        assert cache.used_bytes == 100

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferCache(capacity_bytes=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BufferCache().access("a", -1)

    def test_hit_ratio_empty(self):
        assert BufferCache().hit_ratio() == 0.0
