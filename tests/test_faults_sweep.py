"""The chaos harness and its CLI: seeded sweeps, verdicts, artifacts."""

from __future__ import annotations

import json

import pytest

from repro.core.cli import main as impressions_main
from repro.faults.cli import main as faults_main
from repro.faults.harness import SweepReport, flow_for_point, run_sweep
from repro.faults.plan import INJECTION_POINTS, FaultPlan

# Flows that need no pipeline generation — fast enough for unit tests.
FAST_POINTS = ["store.append", "client.request"]


class TestFlowRouting:
    def test_every_injection_point_has_a_flow(self):
        for point in INJECTION_POINTS:
            assert flow_for_point(point) in ("cache", "store", "sink", "farm", "client")


class TestSweep:
    def test_fast_sweep_heals_everything(self):
        report = run_sweep(23, points=FAST_POINTS)
        assert isinstance(report, SweepReport)
        assert report.passed
        assert report.deterministic
        assert len(report.outcomes) == len(FAST_POINTS)
        for outcome in report.outcomes:
            assert outcome.verdict in ("healed", "dead_letter")
            assert outcome.error == ""

    def test_plan_fingerprint_reproduces_bit_for_bit(self):
        first = run_sweep(99, points=["client.request"])
        second = run_sweep(99, points=["client.request"])
        assert first.plan_fingerprint == second.plan_fingerprint
        assert first.plan_fingerprint == FaultPlan.generate(
            99, points=["client.request"]
        ).fingerprint()

    def test_report_dict_carries_counters_and_outcomes(self):
        report = run_sweep(23, points=["store.append"])
        document = report.as_dict()
        assert document["passed"] is True
        assert document["seed"] == 23
        assert set(document["counters"]) == {
            "faults_injected_total",
            "corruption_detected_total",
            "quarantine_total",
            "heal_total",
        }
        assert document["outcomes"][0]["flow"] == "store"


class TestCli:
    def test_plan_json_is_deterministic(self, capsys):
        assert faults_main(["plan", "--seed", "5", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert faults_main(["plan", "--seed", "5", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert len(first["fingerprint"]) == 64

    def test_plan_text_lists_every_fault(self, capsys):
        assert faults_main(["plan", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        for point in INJECTION_POINTS:
            assert point in out

    def test_sweep_writes_report_and_obs_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        code = faults_main(
            ["sweep", "--seed", "23", "--points", *FAST_POINTS, "--out", str(out_dir), "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["passed"] is True
        with open(out_dir / "report.json", encoding="utf-8") as handle:
            saved = json.load(handle)
        assert saved["plan_fingerprint"] == document["plan_fingerprint"]
        for artifact in ("events.jsonl", "metrics.prom", "summary.txt", "trace.json"):
            assert (out_dir / "obs" / artifact).exists()

    def test_dispatch_through_the_impressions_entry_point(self, capsys):
        assert impressions_main(["faults", "plan", "--seed", "1"]) == 0
        assert "fault(s)" in capsys.readouterr().out

    def test_restricting_kinds(self, capsys):
        assert faults_main(
            ["plan", "--seed", "2", "--kinds", "enospc", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert {spec["kind"] for spec in document["plan"]["specs"]} == {"enospc"}
