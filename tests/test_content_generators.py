"""Unit tests for the content generator dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.content.generators import ContentGenerator, ContentPolicy
from repro.content.headers import typed_header_footer
from repro.content.wordmodel import SingleWordModel


class TestContentPolicy:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            ContentPolicy(text_model="markov")

    @pytest.mark.parametrize(
        "name", ["single-word", "word-popularity", "word-length", "hybrid"]
    )
    def test_build_word_model(self, name):
        policy = ContentPolicy(text_model=name)
        assert policy.build_word_model() is not None

    def test_force_kind_overrides_extension(self):
        generator = ContentGenerator(ContentPolicy(force_kind="text"))
        assert generator.content_kind("dll") == "text"

    def test_default_kind_follows_extension(self):
        generator = ContentGenerator()
        assert generator.content_kind("txt") == "text"
        assert generator.content_kind("dll") == "binary"


class TestGeneration:
    @pytest.mark.parametrize("extension", ["txt", "htm", "jpg", "mp3", "dll", "zip", "xyz", ""])
    def test_exact_size(self, extension, rng):
        generator = ContentGenerator()
        for size in (0, 1, 64, 4_096, 100_000):
            content = generator.generate(size, extension, rng)
            assert len(content) == size

    def test_text_content_is_ascii_words(self, rng):
        generator = ContentGenerator(ContentPolicy(text_model="word-popularity"))
        content = generator.generate(5_000, "txt", rng)
        text = content.decode("ascii")
        assert all(ch.isalpha() or ch.isspace() for ch in text)

    def test_single_word_model_repeats(self, rng):
        generator = ContentGenerator(ContentPolicy(text_model="single-word"))
        content = generator.generate(2_000, "txt", rng).decode("ascii")
        # The final word may be cut by the exact-size truncation; every
        # complete word is the same one.
        words = set(content.split()[:-1])
        assert len(words) == 1

    def test_typed_binary_gets_header(self, rng):
        generator = ContentGenerator()
        content = generator.generate(10_000, "jpg", rng)
        header, footer = typed_header_footer("jpg")
        assert content.startswith(header)
        assert content.endswith(footer)

    def test_html_gets_markup(self, rng):
        generator = ContentGenerator()
        content = generator.generate(4_000, "htm", rng)
        assert content.startswith(b"<!DOCTYPE html>")
        assert content.endswith(b"</html>\n")

    def test_tiny_typed_file_skips_header(self, rng):
        generator = ContentGenerator()
        content = generator.generate(4, "jpg", rng)
        assert len(content) == 4
        assert not content.startswith(b"\xff\xd8\xff\xe0")

    def test_headers_can_be_disabled(self, rng):
        generator = ContentGenerator(ContentPolicy(typed_headers=False))
        content = generator.generate(1_000, "gif", rng)
        assert not content.startswith(b"GIF89a")

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ValueError):
            ContentGenerator().generate(-1, "txt", rng)

    def test_binary_repeating_pattern_mode(self, rng):
        generator = ContentGenerator(
            ContentPolicy(binary_random_seed_per_file=False, typed_headers=False)
        )
        a = generator.generate(512, "bin", rng)
        b = generator.generate(512, "bin", rng)
        assert a == b  # degenerate dedup-able content

    def test_random_binary_differs_between_files(self):
        generator = ContentGenerator(ContentPolicy(typed_headers=False))
        a = generator.generate(512, "bin", np.random.default_rng(1))
        b = generator.generate(512, "bin", np.random.default_rng(2))
        assert a != b

    def test_reproducible_from_seed(self):
        generator = ContentGenerator()
        a = generator.generate(2_048, "txt", np.random.default_rng(9))
        b = generator.generate(2_048, "txt", np.random.default_rng(9))
        assert a == b


class TestChunkedGeneration:
    def test_chunks_concatenate_to_exact_size(self, rng):
        generator = ContentGenerator()
        total = sum(
            len(chunk) for chunk in generator.iter_chunks(3_000_000, "dll", rng, chunk_size=1 << 18)
        )
        assert total == 3_000_000

    def test_small_file_single_chunk(self, rng):
        generator = ContentGenerator()
        chunks = list(generator.iter_chunks(100, "txt", rng))
        assert len(chunks) == 1 and len(chunks[0]) == 100

    def test_chunked_typed_file_keeps_header_and_footer(self, rng):
        generator = ContentGenerator()
        chunks = list(generator.iter_chunks(5_000_000, "jpg", rng, chunk_size=1 << 20))
        header, footer = typed_header_footer("jpg")
        assert chunks[0].startswith(header) or chunks[0] == header
        assert chunks[-1].endswith(footer)

    def test_invalid_chunk_size_rejected(self, rng):
        with pytest.raises(ValueError):
            list(ContentGenerator().iter_chunks(10, "txt", rng, chunk_size=0))


class TestUniqueWordEstimate:
    def test_single_word_estimate_is_one(self):
        generator = ContentGenerator(ContentPolicy(text_model="single-word"))
        assert generator.unique_word_estimate(1_000_000) == 1.0

    def test_popularity_estimate_bounded_by_vocabulary(self):
        generator = ContentGenerator(ContentPolicy(text_model="word-popularity"))
        assert generator.unique_word_estimate(10_000_000) <= 100

    def test_hybrid_estimate_grows_with_size(self):
        generator = ContentGenerator(ContentPolicy(text_model="hybrid"))
        assert generator.unique_word_estimate(1_000_000) > generator.unique_word_estimate(10_000)

    def test_word_model_attribute_matches_policy(self):
        generator = ContentGenerator(ContentPolicy(text_model="single-word"))
        assert isinstance(generator.word_model, SingleWordModel)
