"""Unit tests for the materialization sinks (repro.materialize)."""

from __future__ import annotations

import json
import os
import tarfile

import numpy as np
import pytest

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.core.impressions import Impressions
from repro.layout.disk import SimulatedDisk
from repro.materialize import (
    DirectorySink,
    FileStream,
    ManifestSink,
    MaterializeError,
    NullSink,
    TarSink,
    build_sink,
    derived_directory_times,
    materialize_image,
    ordered_files,
)
from repro.metadata.timestamps import TimestampModel
from repro.namespace.tree import FileSystemTree


def legacy_materialize(image: FileSystemImage, root_path: str, write_content: bool) -> int:
    """The pre-refactor monolithic materializer, verbatim (the golden oracle)."""
    os.makedirs(root_path, exist_ok=True)
    for directory in image.tree.walk_depth_first():
        os.makedirs(os.path.join(root_path, directory.path().lstrip("/")), exist_ok=True)
    written = 0
    for file_node in image.tree.files:
        path = os.path.join(root_path, file_node.path().lstrip("/"))
        if write_content:
            rng = np.random.default_rng((image.content_seed, file_node.file_id))
            with open(path, "wb") as handle:
                for chunk in image.content_generator.iter_chunks(
                    file_node.size, file_node.extension, rng
                ):
                    handle.write(chunk)
        else:
            with open(path, "wb") as handle:
                if file_node.size:
                    handle.seek(file_node.size - 1)
                    handle.write(b"\0")
        if file_node.timestamps is not None:
            os.utime(path, (file_node.timestamps.accessed, file_node.timestamps.modified))
        written += 1
    return written


def tree_bytes(root: str) -> dict[str, bytes]:
    out: dict[str, bytes] = {}
    for current, directories, files in os.walk(root):
        rel = os.path.relpath(current, root)
        out[rel + "/"] = b""
        for name in files:
            path = os.path.join(current, name)
            with open(path, "rb") as handle:
                out[os.path.relpath(path, root)] = handle.read()
    return out


@pytest.fixture(scope="module")
def timestamp_image():
    config = ImpressionsConfig(
        fs_size_bytes=4 * 1024 * 1024,
        num_files=80,
        num_directories=20,
        seed=5,
        timestamp_model=TimestampModel(),
        timestamp_now=1_700_000_000.0,
    )
    return Impressions(config).generate()


class TestDirectorySink:
    def test_facade_byte_identical_to_legacy(self, content_image, tmp_path):
        """The extracted DirectorySink reproduces the monolith byte for byte."""
        legacy_materialize(content_image, str(tmp_path / "legacy"), write_content=True)
        content_image.materialize(str(tmp_path / "facade"))
        assert tree_bytes(str(tmp_path / "legacy")) == tree_bytes(str(tmp_path / "facade"))

    def test_facade_metadata_only_identical(self, small_image, tmp_path):
        legacy_materialize(small_image, str(tmp_path / "legacy"), write_content=False)
        small_image.materialize(str(tmp_path / "facade"))
        assert tree_bytes(str(tmp_path / "legacy")) == tree_bytes(str(tmp_path / "facade"))

    def test_parallel_jobs_identical_output_and_digest(self, content_image, tmp_path):
        serial = materialize_image(content_image, DirectorySink(str(tmp_path / "serial")))
        parallel = materialize_image(
            content_image, DirectorySink(str(tmp_path / "parallel"), jobs=2)
        )
        assert tree_bytes(str(tmp_path / "serial")) == tree_bytes(str(tmp_path / "parallel"))
        assert parallel.content_digest == serial.content_digest
        assert parallel.extras["jobs"] == 2

    def test_result_counts_and_phases(self, small_image, tmp_path):
        result = materialize_image(small_image, DirectorySink(str(tmp_path / "img")))
        assert result.files == small_image.file_count
        assert result.directories == small_image.directory_count
        assert result.total_bytes == small_image.total_bytes
        assert result.path == str(tmp_path / "img")
        assert set(result.phase_seconds) == {"begin", "directories", "files", "finalize"}
        assert result.seconds >= 0.0

    def test_jobs_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            DirectorySink(str(tmp_path), jobs=0)

    def test_file_timestamps_applied(self, timestamp_image, tmp_path):
        timestamp_image.materialize(str(tmp_path / "img"))
        probe = timestamp_image.tree.files[0]
        mtime = os.path.getmtime(str(tmp_path / "img" / probe.path().lstrip("/")))
        assert mtime == pytest.approx(probe.timestamps.modified, abs=1.0)


class TestDirectoryTimestampBugfix:
    def test_directory_mtimes_derived_from_subtree(self, timestamp_image, tmp_path):
        """Regression: directories get utime'd (deepest first) after children.

        The legacy materializer never touched directory timestamps, so every
        directory carried the wall-clock time of the run and file creation
        clobbered any parent mtime.  Now each timestamped directory's mtime
        equals the max modified time over its subtree's files.
        """
        root = str(tmp_path / "img")
        timestamp_image.materialize(root)
        rows = derived_directory_times(timestamp_image.tree)
        assert rows, "timestamped image must yield derived directory times"
        for _, dirpath, (accessed, modified) in rows:
            host = os.path.join(root, dirpath.lstrip("/") or ".")
            assert os.path.getmtime(host) == pytest.approx(modified, abs=1.0), dirpath
            assert os.path.getatime(host) == pytest.approx(accessed, abs=1.0), dirpath

    def test_derived_times_deepest_first_and_monotone(self, timestamp_image):
        rows = derived_directory_times(timestamp_image.tree)
        depths = [depth for depth, _, _ in rows]
        assert depths == sorted(depths, reverse=True)
        by_path = {path: times for _, path, times in rows}
        for _, path, (accessed, modified) in rows:
            parent = path.rsplit("/", 1)[0] or "/"
            if parent in by_path:
                assert by_path[parent][0] >= accessed
                assert by_path[parent][1] >= modified

    def test_no_timestamps_no_directory_rows(self, small_image):
        assert derived_directory_times(small_image.tree) == []


class TestTarSink:
    def test_archive_members_match_tree(self, content_image, tmp_path):
        archive = str(tmp_path / "img.tar")
        result = materialize_image(content_image, TarSink(archive))
        with tarfile.open(archive) as tar:
            members = tar.getmembers()
            by_name = {member.name.rstrip("/"): member for member in members}
            probe = content_image.tree.files[0]
            extracted = tar.extractfile(by_name[probe.path().lstrip("/")]).read()
        # Every directory except the implicit root, plus every file.
        assert len(members) == content_image.file_count + content_image.directory_count - 1
        assert len(extracted) == probe.size
        assert extracted == content_image.file_content(probe)
        assert result.extras["archive_bytes"] == os.path.getsize(archive)
        assert result.extras["compressed"] is False

    def test_gzip_archive_deterministic(self, content_image, tmp_path):
        first = materialize_image(content_image, TarSink(str(tmp_path / "a.tar.gz")))
        second = materialize_image(content_image, TarSink(str(tmp_path / "b.tar.gz")))
        assert first.extras["compressed"] is True
        assert first.extras["archive_sha256"] == second.extras["archive_sha256"]
        with open(str(tmp_path / "a.tar.gz"), "rb") as a, open(
            str(tmp_path / "b.tar.gz"), "rb"
        ) as b:
            assert a.read() == b.read()

    def test_content_digest_matches_directory_sink(self, content_image, tmp_path):
        tar_result = materialize_image(content_image, TarSink(str(tmp_path / "img.tar")))
        dir_result = materialize_image(content_image, DirectorySink(str(tmp_path / "img")))
        assert tar_result.content_digest == dir_result.content_digest

    def test_metadata_only_zero_payload(self, small_image, tmp_path):
        archive = str(tmp_path / "img.tar")
        materialize_image(small_image, TarSink(archive))
        with tarfile.open(archive) as tar:
            probe = next(f for f in small_image.tree.files if f.size)
            data = tar.extractfile(probe.path().lstrip("/")).read()
        assert data == b"\0" * probe.size

    def test_timestamped_entries_carry_model_mtimes(self, timestamp_image, tmp_path):
        archive = str(tmp_path / "img.tar")
        materialize_image(timestamp_image, TarSink(archive))
        with tarfile.open(archive) as tar:
            probe = timestamp_image.tree.files[0]
            info = tar.getmember(probe.path().lstrip("/"))
            assert info.mtime == int(probe.timestamps.modified)


class TestGoldenTarDigest:
    #: SHA-256 of the .tar produced for the seeded golden image below — pins
    #: the whole export stack (tree generation, entry ordering, tar headers).
    #: Recompute with tests/test_materialize_sinks.py::TestGoldenTarDigest
    #: when the materialize format version changes.
    GOLDEN_SHA256 = "d6068cca4162c979351efa1d743be03055bcfd875d3834616a3090b6acbf5541"

    @staticmethod
    def golden_image() -> FileSystemImage:
        config = ImpressionsConfig(
            fs_size_bytes=2 * 1024 * 1024, num_files=40, num_directories=10, seed=13
        )
        return Impressions(config).generate()

    def test_seeded_image_digest_pinned(self, tmp_path):
        result = materialize_image(self.golden_image(), TarSink(str(tmp_path / "golden.tar")))
        assert result.extras["archive_sha256"] == self.GOLDEN_SHA256

    def test_two_generations_identical(self, tmp_path):
        first = materialize_image(self.golden_image(), TarSink(str(tmp_path / "a.tar")))
        second = materialize_image(self.golden_image(), TarSink(str(tmp_path / "b.tar")))
        assert first.extras["archive_sha256"] == second.extras["archive_sha256"]
        assert first.content_digest == second.content_digest


class TestManifestSink:
    def test_manifest_lines(self, small_image, tmp_path):
        path = str(tmp_path / "img.jsonl")
        result = materialize_image(small_image, ManifestSink(path))
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        header, entries = lines[0], lines[1:]
        assert header["type"] == "header"
        assert header["files"] == small_image.file_count
        assert header["directories"] == small_image.directory_count
        assert result.extras["lines"] == len(lines)
        files = [entry for entry in entries if entry["type"] == "file"]
        dirs = [entry for entry in entries if entry["type"] == "dir"]
        assert len(files) == small_image.file_count
        assert len(dirs) == small_image.directory_count
        probe = small_image.tree.files[0]
        row = next(entry for entry in files if entry["file_id"] == probe.file_id)
        assert row["size"] == probe.size
        assert row["path"] == probe.path().lstrip("/")
        assert row["extents"] == [list(extent) for extent in probe.extents]

    def test_manifest_never_generates_content(self, content_image, tmp_path):
        """writes_content=False downgrades the plan: huge images stay cheap."""
        result = materialize_image(content_image, ManifestSink(str(tmp_path / "m.jsonl")))
        assert result.write_content is False

    def test_digest_content_rows(self, content_image, tmp_path):
        import hashlib

        path = str(tmp_path / "digests.jsonl")
        materialize_image(content_image, ManifestSink(path, digest_content=True))
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0]["digest_content"] is True
        files = [entry for entry in lines[1:] if entry["type"] == "file"]
        assert all("content_sha256" in row for row in files)
        # Spot-check one row against the chunked content stream the sink hashed.
        probe = content_image.tree.files[0]
        row = next(entry for entry in files if entry["file_id"] == probe.file_id)
        rng = np.random.default_rng((content_image.content_seed, probe.file_id))
        digest = hashlib.sha256()
        for chunk in content_image.content_generator.iter_chunks(
            probe.size, probe.extension, rng
        ):
            digest.update(chunk)
        assert row["content_sha256"] == digest.hexdigest()

    def test_digest_content_is_path_independent(self, content_image, tmp_path):
        """The content hash covers bytes only — rows from differently named
        trees with the same content compare equal (the shard-merge reuse)."""
        path = str(tmp_path / "digests.jsonl")
        materialize_image(content_image, ManifestSink(path, digest_content=True))
        with open(path, "r", encoding="utf-8") as handle:
            rows = [json.loads(line) for line in handle][1:]
        by_path = {row["path"]: row for row in rows if row["type"] == "file"}
        # Entry digest covers the path; content digest must not.
        probe = content_image.tree.files[0]
        row = by_path[probe.path().lstrip("/")]
        assert row["digest"] != row["content_sha256"]

    def test_digest_content_default_off(self, content_image, tmp_path):
        path = str(tmp_path / "plain.jsonl")
        materialize_image(content_image, ManifestSink(path))
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0]["digest_content"] is False
        assert all("content_sha256" not in row for row in lines[1:])

    def test_digest_content_requires_content_image(self, small_image, tmp_path):
        sink = ManifestSink(str(tmp_path / "m.jsonl"), digest_content=True)
        with pytest.raises(MaterializeError, match="metadata-only"):
            materialize_image(small_image, sink)

    def test_build_sink_digest_content(self, tmp_path):
        sink = build_sink("manifest", str(tmp_path / "m.jsonl"), digest_content=True)
        assert isinstance(sink, ManifestSink)
        assert sink.digest_content is True
        with pytest.raises(MaterializeError, match="manifest-sink option"):
            build_sink("tar", str(tmp_path / "a.tar"), digest_content=True)


class TestNullSink:
    def test_digest_matches_directory_sink(self, content_image, tmp_path):
        null_result = materialize_image(content_image, NullSink())
        dir_result = materialize_image(content_image, DirectorySink(str(tmp_path / "img")))
        assert null_result.content_digest == dir_result.content_digest
        assert null_result.path is None

    def test_metadata_only_digest_differs_from_content(self, content_image):
        with_content = materialize_image(content_image, NullSink())
        without = materialize_image(content_image, NullSink(), write_content=False)
        assert with_content.content_digest != without.content_digest

    def test_content_without_generator_rejected(self, small_image):
        with pytest.raises(MaterializeError):
            materialize_image(small_image, NullSink(), write_content=True)


def synthetic_fragmented_image() -> FileSystemImage:
    """A hand-built image whose disk order deliberately inverts file order."""
    tree = FileSystemTree()
    disk = SimulatedDisk(num_blocks=1024)
    nodes = [tree.create_file(tree.root, size=4096, extension="txt") for _ in range(4)]
    for node in reversed(nodes):  # allocate last file first: inverse layout
        node.extents = disk.allocate_extents(node.path(), node.size)
        node.first_block = node.extents[0][0]
    return FileSystemImage(tree=tree, disk=disk)


class TestOrderingPolicies:
    def test_extent_order_sorts_by_first_block(self):
        image = synthetic_fragmented_image()
        namespace = [node.file_id for node in ordered_files(image, "namespace")]
        extent = [node.file_id for node in ordered_files(image, "extent")]
        assert namespace == [0, 1, 2, 3]
        assert extent == [3, 2, 1, 0]

    def test_extent_order_streams_sinks_in_disk_order(self, tmp_path):
        image = synthetic_fragmented_image()
        archive = str(tmp_path / "img.tar")
        materialize_image(image, TarSink(archive), order="extent")
        with tarfile.open(archive) as tar:
            file_names = [m.name for m in tar.getmembers() if m.isfile()]
        assert file_names == [node.path().lstrip("/") for node in ordered_files(image, "extent")]

    def test_extent_order_digest_equals_namespace_order(self, tmp_path):
        """The combined digest is order-independent by construction."""
        image = synthetic_fragmented_image()
        one = materialize_image(image, NullSink(), order="extent")
        two = materialize_image(image, NullSink(), order="namespace")
        assert one.content_digest == two.content_digest

    def test_extent_order_without_disk_rejected(self):
        image = FileSystemImage(tree=FileSystemTree())
        with pytest.raises(MaterializeError):
            ordered_files(image, "extent")

    def test_unknown_order_rejected(self, small_image):
        with pytest.raises(MaterializeError):
            materialize_image(small_image, NullSink(), order="bogus")


class TestFileStream:
    def test_double_consume_rejected(self, content_image):
        node = content_image.tree.files[0]
        stream = FileStream(content_image, node, node.path().lstrip("/"), True)
        list(stream.chunks())
        with pytest.raises(MaterializeError):
            list(stream.chunks())

    def test_partial_consume_detected(self, content_image):
        node = next(f for f in content_image.tree.files if f.size > 0)
        stream = FileStream(content_image, node, node.path().lstrip("/"), True)
        next(stream.chunks())
        with pytest.raises(MaterializeError):
            stream.ensure_digest()

    def test_digest_same_consumed_or_lazy(self, content_image):
        node = content_image.tree.files[0]
        consumed = FileStream(content_image, node, node.path().lstrip("/"), True)
        list(consumed.chunks())
        lazy = FileStream(content_image, node, node.path().lstrip("/"), True)
        assert consumed.ensure_digest() == lazy.ensure_digest()


class TestBuildSink:
    def test_spellings(self, tmp_path):
        assert isinstance(build_sink("null"), NullSink)
        assert isinstance(build_sink("dir", str(tmp_path / "d"), jobs=3), DirectorySink)
        assert isinstance(build_sink("tar", str(tmp_path / "a.tar")), TarSink)
        assert isinstance(build_sink("manifest", str(tmp_path / "m.jsonl")), ManifestSink)

    def test_path_required(self):
        with pytest.raises(MaterializeError):
            build_sink("dir")

    def test_unknown_kind(self, tmp_path):
        with pytest.raises(MaterializeError):
            build_sink("zip", str(tmp_path / "x"))
