"""The stage-cache directory lock and the generate() facade's use of it."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.pipeline.cache import CacheBusyError, cache_lock


def _lock_path(root) -> str:
    return os.path.join(str(root), ".lock")


class TestCacheLock:
    def test_acquire_and_release(self, tmp_path):
        with cache_lock(str(tmp_path), owner="test"):
            data = json.loads(open(_lock_path(tmp_path), encoding="utf-8").read())
            assert data["pid"] == os.getpid()
            assert data["owner"] == "test"
        assert not os.path.exists(_lock_path(tmp_path))

    def test_released_on_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with cache_lock(str(tmp_path)):
                raise RuntimeError("boom")
        assert not os.path.exists(_lock_path(tmp_path))

    def test_live_holder_raises_clear_error(self, tmp_path):
        with cache_lock(str(tmp_path), owner="first"):
            with pytest.raises(CacheBusyError, match="in use by pid"):
                with cache_lock(str(tmp_path), owner="second"):
                    pass

    def test_error_names_owner_and_suggests_slices(self, tmp_path):
        with cache_lock(str(tmp_path), owner="worker-7"):
            with pytest.raises(CacheBusyError, match="worker-7") as info:
                with cache_lock(str(tmp_path)):
                    pass
            assert "per-worker cache slices" in str(info.value)

    def test_stale_lock_is_reclaimed(self, tmp_path):
        # A pid that cannot exist: beyond pid_max on Linux.
        with open(_lock_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"pid": 2**22 + 12345, "owner": "crashed"}))
        with cache_lock(str(tmp_path), owner="reclaimer"):
            data = json.loads(open(_lock_path(tmp_path), encoding="utf-8").read())
            assert data["owner"] == "reclaimer"
        assert not os.path.exists(_lock_path(tmp_path))

    def test_ignore_mode_proceeds_without_acquiring(self, tmp_path):
        with cache_lock(str(tmp_path), owner="first"):
            with cache_lock(str(tmp_path), owner="second", on_busy="ignore"):
                pass
            # The first holder's lock must survive the inner scope.
            data = json.loads(open(_lock_path(tmp_path), encoding="utf-8").read())
            assert data["owner"] == "first"

    def test_rejects_unknown_on_busy(self, tmp_path):
        with pytest.raises(ValueError, match="on_busy"):
            with cache_lock(str(tmp_path), on_busy="retry"):
                pass

    def test_corrupt_lock_is_treated_as_unknown_holder(self, tmp_path):
        with open(_lock_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write("not json")
        with pytest.raises(CacheBusyError, match="unknown process"):
            with cache_lock(str(tmp_path)):
                pass


class TestCacheLockMaxAge:
    """Age-based staleness: recycled-pid insurance for long-lived farms."""

    def _write_lock(self, tmp_path, *, pid=None, created=None) -> None:
        record = {"pid": os.getpid() if pid is None else pid, "owner": "old"}
        if created is not None:
            record["created"] = created
        with open(_lock_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record))

    def test_live_pid_past_max_age_is_reclaimed(self, tmp_path):
        # Our own pid is alive, so only the age bound can free this lock —
        # exactly the recycled-pid scenario.
        self._write_lock(tmp_path, created=time.time() - 120.0)
        with cache_lock(str(tmp_path), owner="reclaimer", max_age_seconds=60.0):
            data = json.loads(open(_lock_path(tmp_path), encoding="utf-8").read())
            assert data["owner"] == "reclaimer"

    def test_young_lock_is_not_reclaimed(self, tmp_path):
        self._write_lock(tmp_path, created=time.time() - 5.0)
        with pytest.raises(CacheBusyError):
            with cache_lock(str(tmp_path), max_age_seconds=60.0):
                pass

    def test_without_max_age_live_pid_still_blocks(self, tmp_path):
        self._write_lock(tmp_path, created=time.time() - 10_000.0)
        with pytest.raises(CacheBusyError):
            with cache_lock(str(tmp_path)):
                pass

    def test_corrupt_old_lock_falls_back_to_mtime(self, tmp_path):
        with open(_lock_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write("not json")
        old = time.time() - 120.0
        os.utime(_lock_path(tmp_path), (old, old))
        with cache_lock(str(tmp_path), owner="reclaimer", max_age_seconds=60.0):
            pass
        assert not os.path.exists(_lock_path(tmp_path))

    def test_corrupt_young_lock_still_blocks(self, tmp_path):
        with open(_lock_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write("not json")
        with pytest.raises(CacheBusyError, match="unknown process"):
            with cache_lock(str(tmp_path), max_age_seconds=60.0):
                pass

    def test_rejects_nonpositive_max_age(self, tmp_path):
        with pytest.raises(ValueError, match="max_age_seconds"):
            with cache_lock(str(tmp_path), max_age_seconds=0.0):
                pass

    def test_reclaims_are_counted_on_bound_telemetry(self, tmp_path):
        from repro import obs

        telemetry = obs.Telemetry(run_id="lock-test")
        self._write_lock(tmp_path, pid=2**22 + 12345)
        with obs.use(telemetry):
            with cache_lock(str(tmp_path), max_age_seconds=60.0):
                pass
            self._write_lock(tmp_path, created=time.time() - 120.0)
            with cache_lock(str(tmp_path), max_age_seconds=60.0):
                pass
        family = telemetry.counter(
            "cache_lock_reclaims_total", "stale stage-cache locks reclaimed", ("reason",)
        )
        series = {labels["reason"]: state.value for labels, state in family.series_items()}
        assert series == {"dead_pid": 1.0, "max_age": 1.0}


class TestGenerateFacade:
    CONFIG = ImpressionsConfig(num_files=40, num_directories=8, seed=2,
                               fs_size_bytes=1024 * 1024)

    def test_generate_without_cache_unchanged(self):
        image = Impressions(self.CONFIG).generate()
        assert image.file_count == 40

    def test_generate_with_cache_locks_and_caches(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        image = Impressions(self.CONFIG).generate(cache_dir=cache_dir)
        assert image.file_count == 40
        assert not os.path.exists(os.path.join(cache_dir, ".lock"))
        # Entries were stored; a second run restores from them.
        again = Impressions(self.CONFIG).generate(cache_dir=cache_dir)
        assert again.summary() == image.summary()

    def test_concurrent_generate_surfaces_clear_error(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with cache_lock(cache_dir, owner="another-worker"):
            with pytest.raises(CacheBusyError, match="another-worker"):
                Impressions(self.CONFIG).generate(cache_dir=cache_dir)

    def test_concurrent_generate_can_opt_into_sharing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with cache_lock(cache_dir, owner="another-worker"):
            image = Impressions(self.CONFIG).generate(
                cache_dir=cache_dir, on_cache_busy="ignore"
            )
        assert image.file_count == 40
