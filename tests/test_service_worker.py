"""Farm workers end to end: drain a queue, dedupe, fail, share the cache."""

from __future__ import annotations

import json

import pytest

from repro.campaign.registry import register_step
from repro.campaign.runner import run_scenario
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, deterministic_view
from repro.pipeline.cache import cache_lock
from repro.service.queue import DEAD, DONE, JobQueue
from repro.service.worker import Worker, WorkerOptions, run_worker

SPEC_DOC = {
    "name": "farm",
    "base": {"num_directories": 6, "fs_size_bytes": 8 * 1024 * 1024},
    "sweep": {"num_files": [30, 40], "seed": [1]},
    "steps": [{"step": "summary"}],
}


@register_step("service_test_explode")
def _explode(image, config, params):
    raise RuntimeError("scenario exploded on purpose")


FAILING_DOC = {
    "name": "doomed",
    "base": {"num_directories": 6, "fs_size_bytes": 8 * 1024 * 1024, "num_files": 30},
    "steps": [{"step": "service_test_explode"}],
}


@pytest.fixture()
def paths(tmp_path):
    return str(tmp_path / "q.sqlite"), str(tmp_path / "r.jsonl")


def _drain(queue_path: str, store_path: str, **overrides):
    options = WorkerOptions(
        queue_path=queue_path,
        store_path=store_path,
        drain=True,
        lease_ttl=30.0,
        poll_interval=0.05,
        **overrides,
    )
    return run_worker(options)


class TestWorkerDrain:
    def test_drains_queue_and_appends_rows(self, paths):
        queue_path, store_path = paths
        with JobQueue(queue_path) as queue:
            queue.submit(SPEC_DOC, store_path)
        result = _drain(queue_path, store_path)
        assert result.jobs_done == 2
        assert result.jobs_failed == 0
        store = ResultStore(store_path)
        assert len(store.latest_rows()) == 2
        with JobQueue(queue_path) as queue:
            assert all(job.state == DONE for job in queue.jobs())
            assert queue.counters()["jobs_done"] == 2.0

    def test_rows_match_direct_run_scenario(self, paths):
        queue_path, store_path = paths
        spec = CampaignSpec.from_dict(SPEC_DOC)
        with JobQueue(queue_path) as queue:
            queue.submit(spec, store_path)
        _drain(queue_path, store_path)
        stored = {
            row["fingerprint"]: deterministic_view(row)
            for row in ResultStore(store_path)
        }
        for scenario in spec.expand():
            clean = run_scenario(scenario.payload())
            # The store's rows crossed a JSON round-trip; canonicalize both.
            canon = lambda row: json.loads(
                json.dumps(deterministic_view(row), sort_keys=True)
            )
            assert canon(clean) == canon(stored[scenario.fingerprint])

    def test_duplicate_submissions_execute_once(self, paths):
        queue_path, store_path = paths
        with JobQueue(queue_path) as queue:
            queue.submit(SPEC_DOC, store_path)
            queue.submit(SPEC_DOC, store_path)  # second tenant, same sweep
        result = _drain(queue_path, store_path)
        assert result.jobs_done == 2  # not 4
        assert len(ResultStore(store_path).rows()) == 2

    def test_max_jobs_caps_the_loop(self, paths):
        queue_path, store_path = paths
        with JobQueue(queue_path) as queue:
            queue.submit(SPEC_DOC, store_path)
        result = _drain(queue_path, store_path, max_jobs=1)
        assert result.jobs_done == 1
        with JobQueue(queue_path) as queue:
            assert queue.stats()["depth"] == 1

    def test_worker_telemetry_counts_jobs(self, paths):
        queue_path, store_path = paths
        with JobQueue(queue_path) as queue:
            queue.submit(SPEC_DOC, store_path)
        worker = Worker(
            WorkerOptions(
                queue_path=queue_path,
                store_path=store_path,
                drain=True,
                poll_interval=0.05,
            )
        )
        try:
            worker.run()
            family = worker.telemetry.counter(
                "service_jobs_done_total", "jobs completed by this worker"
            )
            assert [state.value for _, state in family.series_items()] == [2.0]
        finally:
            worker.queue.close()


class TestWorkerFailure:
    def test_failing_scenario_retries_then_dead_letters(self, paths):
        queue_path, store_path = paths
        with JobQueue(queue_path, backoff_base=0.05, backoff_cap=0.1) as queue:
            queue.submit(FAILING_DOC, store_path, max_attempts=2)
        result = _drain(queue_path, store_path)
        assert result.jobs_done == 0
        assert result.jobs_failed == 2
        with JobQueue(queue_path) as queue:
            (job,) = queue.jobs()
            assert job.state == DEAD
            assert job.attempts == 2
            assert "scenario exploded on purpose" in job.error
            assert queue.counters()["jobs_dead"] == 1.0
        assert not ResultStore(store_path).exists()


class TestCacheNegotiation:
    def test_busy_cache_retries_then_shares(self, paths, tmp_path):
        queue_path, store_path = paths
        cache_dir = str(tmp_path / "cache")
        with JobQueue(queue_path) as queue:
            queue.submit(SPEC_DOC, store_path)
        # Another process-alike holds the lock for the whole drain: the
        # worker must retry with jitter, then fall back to sharing.
        with cache_lock(cache_dir, owner="squatter"):
            result = _drain(
                queue_path,
                store_path,
                cache_dir=cache_dir,
                cache_busy_retries=2,
                cache_busy_backoff=0.01,
            )
        assert result.jobs_done == 2
        assert result.cache_busy_retries == 2 * 2  # per job: retries before sharing
        assert len(ResultStore(store_path).latest_rows()) == 2

    def test_free_cache_is_used_and_released(self, paths, tmp_path):
        queue_path, store_path = paths
        cache_dir = str(tmp_path / "cache")
        with JobQueue(queue_path) as queue:
            queue.submit(SPEC_DOC, store_path)
        result = _drain(queue_path, store_path, cache_dir=cache_dir)
        assert result.jobs_done == 2
        assert result.cache_busy_retries == 0
        import os

        assert not os.path.exists(os.path.join(cache_dir, ".lock"))
