"""The ``impressions shard`` subcommand."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.cli import main
from repro.shard import ShardPlan

BASE = ["--files", "120", "--dirs", "24", "--seed", "17", "--size-bytes", str(4 << 20)]


class TestShardPlanCli:
    def test_plan_to_stdout(self, capsys):
        code = main(["shard", "plan", *BASE, "--shards", "3"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "impressions-shard-plan"
        assert payload["num_shards"] == 3
        assert sum(spec["num_files"] for spec in payload["shards"]) == 120

    def test_plan_to_file_round_trips(self, tmp_path, capsys):
        out = str(tmp_path / "plan.json")
        code = main(["shard", "plan", *BASE, "--shards", "4", "--out", out])
        assert code == 0
        assert "4 shards" in capsys.readouterr().out
        with open(out, encoding="utf-8") as handle:
            plan = ShardPlan.from_json(handle.read())
        assert plan.num_shards == 4

    def test_plan_rejects_too_many_shards(self, capsys):
        with pytest.raises(SystemExit):
            main(["shard", "plan", "--files", "3", "--dirs", "2", "--shards", "5"])
        assert "at least one file" in capsys.readouterr().err


class TestShardGenerateCli:
    def test_generate_human_output(self, capsys):
        code = main(["shard", "generate", *BASE, "--shards", "3", "--jobs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "generated 120 files" in out
        assert "fingerprint" in out
        assert "shard walls" in out

    def test_generate_json_matches_across_jobs(self, capsys):
        code = main(["shard", "generate", *BASE, "--shards", "3", "--jobs", "1", "--json"])
        assert code == 0
        serial = json.loads(capsys.readouterr().out)
        code = main(["shard", "generate", *BASE, "--shards", "3", "--jobs", "2", "--json"])
        assert code == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial["fingerprint"] == parallel["fingerprint"]
        assert serial["content_digest"] == parallel["content_digest"]
        assert serial["jobs"] == 1 and parallel["jobs"] == 2
        assert len(serial["shards"]) == 3

    def test_generate_from_plan_file_with_cache(self, tmp_path, capsys):
        plan_path = str(tmp_path / "plan.json")
        main(["shard", "plan", *BASE, "--shards", "2", "--out", plan_path])
        capsys.readouterr()
        cache_dir = str(tmp_path / "cache")
        code = main(
            ["shard", "generate", "--plan", plan_path, "--jobs", "1",
             "--cache-dir", cache_dir, "--json"]
        )
        assert code == 0
        first = json.loads(capsys.readouterr().out)
        code = main(
            ["shard", "generate", "--plan", plan_path, "--jobs", "1",
             "--cache-dir", cache_dir, "--json"]
        )
        assert code == 0
        second = json.loads(capsys.readouterr().out)
        assert second["fingerprint"] == first["fingerprint"]
        assert all(shard["cache"]["hits"] > 0 for shard in second["shards"])

    def test_generate_obs_export(self, tmp_path, capsys):
        obs_dir = str(tmp_path / "obs")
        code = main(
            ["shard", "generate", *BASE, "--shards", "2", "--jobs", "2",
             "--obs-dir", obs_dir, "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "obs" in payload
        summary_path = os.path.join(obs_dir, "summary.txt")
        assert os.path.exists(summary_path)
        with open(summary_path, encoding="utf-8") as handle:
            text = handle.read()
        # Per-shard series survived the cross-process snapshot merge.
        assert "shard_files_total" in text
        assert 'shard="1"' in text

    def test_missing_plan_file_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["shard", "generate", "--plan", str(tmp_path / "nope.json")])
        assert "cannot read plan" in capsys.readouterr().err


class TestShardVerifyCli:
    def test_verify_passes(self, capsys):
        code = main(["shard", "verify", *BASE, "--shards", "3", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verification PASSED" in out
        assert "MISMATCH" not in out

    def test_verify_json(self, capsys):
        code = main(["shard", "verify", *BASE, "--shards", "2", "--jobs", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["fingerprint_match"] is True
        assert payload["content_digest_match"] is True
        assert payload["fingerprint"]["serial"] == payload["fingerprint"]["parallel"]
