"""End-to-end integration tests across modules.

These tests exercise full paths a user of the library would take: generate an
image with several knobs turned at once, check that all the pieces are
mutually consistent, and run the downstream consumers (analysis, workloads,
search engines) against the same image.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.content.generators import ContentPolicy
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.dataset.study import analyze_image, compare_distribution_sets
from repro.layout.layout_score import layout_score
from repro.workloads.find import FindSimulator
from repro.workloads.grep import GrepSimulator
from repro.workloads.search.beagle import BeagleSearchEngine
from repro.workloads.search.gdl import GoogleDesktopSearchEngine


@pytest.fixture(scope="module")
def full_image():
    """An image with content, constraints and fragmentation all enabled."""
    config = ImpressionsConfig(
        fs_size_bytes=24 * 1024 * 1024,
        num_files=300,
        num_directories=60,
        seed=99,
        enforce_fs_size=True,
        beta=0.1,
        layout_score=0.9,
        generate_content=True,
        content=ContentPolicy(text_model="hybrid"),
    )
    return Impressions(config).generate()


class TestEndToEndConsistency:
    def test_all_knobs_respected_simultaneously(self, full_image):
        assert full_image.file_count == 300
        target = 24 * 1024 * 1024
        assert abs(full_image.total_bytes - target) / target <= 0.12
        assert full_image.achieved_layout_score() == pytest.approx(0.9, abs=0.04)

    def test_tree_disk_and_metadata_agree(self, full_image):
        disk = full_image.disk
        total_blocks = 0
        for file_node in full_image.tree.files:
            if file_node.size == 0:
                continue
            blocks = disk.blocks_of(file_node.path())
            assert blocks == file_node.block_list
            assert len(blocks) == disk.blocks_needed(file_node.size)
            total_blocks += len(blocks)
        assert disk.used_blocks == total_blocks

    def test_layout_score_consistent_between_views(self, full_image):
        names = [f.path() for f in full_image.tree.files if f.size > 0]
        assert layout_score(full_image.disk, names) == pytest.approx(
            full_image.achieved_layout_score(), abs=1e-9
        )

    def test_analysis_matches_tree_statistics(self, full_image):
        distributions = analyze_image(full_image)
        assert distributions.total_files == full_image.file_count
        assert distributions.total_bytes == full_image.total_bytes
        assert distributions.file_size_histogram.total_bytes == full_image.total_bytes

    def test_self_comparison_is_exact(self, full_image):
        distributions = analyze_image(full_image)
        diffs = compare_distribution_sets(distributions, distributions)
        assert all(value == pytest.approx(0.0, abs=1e-9) for value in diffs.values())

    def test_workloads_run_against_the_same_image(self, full_image):
        find_result = FindSimulator(full_image).run()
        grep_result = GrepSimulator(full_image).run()
        assert find_result.directories_visited == full_image.directory_count
        assert (
            grep_result.files_scanned + grep_result.files_skipped_binary
            == full_image.file_count
        )

    def test_search_engines_index_the_image(self, full_image):
        beagle = BeagleSearchEngine().index(full_image)
        gdl = GoogleDesktopSearchEngine().index(full_image)
        assert beagle.files_seen == gdl.files_seen == full_image.file_count
        assert beagle.index_size_bytes > 0 and gdl.index_size_bytes > 0

    def test_report_parameters_regenerate_identical_image(self, full_image):
        report = full_image.report
        config = ImpressionsConfig(
            fs_size_bytes=24 * 1024 * 1024,
            num_files=300,
            num_directories=60,
            seed=report.seed,
            enforce_fs_size=True,
            beta=0.1,
            layout_score=0.9,
            generate_content=True,
            content=ContentPolicy(text_model="hybrid"),
        )
        clone = Impressions(config).generate()
        assert clone.tree.file_sizes() == full_image.tree.file_sizes()
        assert [f.path() for f in clone.tree.files] == [f.path() for f in full_image.tree.files]
        sample = full_image.tree.files[0]
        assert clone.file_content(clone.tree.files[0]) == full_image.file_content(sample)


class TestScalingBehaviour:
    def test_larger_images_have_more_of_everything(self):
        small = Impressions(
            ImpressionsConfig(fs_size_bytes=None, num_files=100, num_directories=20, seed=1)
        ).generate()
        large = Impressions(
            ImpressionsConfig(fs_size_bytes=None, num_files=1_000, num_directories=200, seed=1)
        ).generate()
        assert large.file_count > small.file_count
        assert large.total_bytes > small.total_bytes
        assert large.tree.max_depth() >= small.tree.max_depth()

    def test_depth_distribution_stays_plausible_across_scales(self):
        for num_files, num_dirs in ((200, 40), (800, 160)):
            image = Impressions(
                ImpressionsConfig(
                    fs_size_bytes=None, num_files=num_files, num_directories=num_dirs, seed=2
                )
            ).generate()
            depths = np.asarray([f.depth for f in image.tree.files])
            assert 2.0 <= depths.mean() <= 10.0
