"""Unit tests for the fixed-cardinality subset-sum approximation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constraints.subset_sum import solve_fixed_size_subset_sum


class TestSolveFixedSizeSubsetSum:
    def test_exact_subset_found_for_easy_instance(self, rng):
        values = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        solution = solve_fixed_size_subset_sum(values, subset_size=3, target_sum=9.0, rng=rng)
        assert solution.size == 3
        assert solution.achieved_sum == pytest.approx(9.0, abs=1.0)

    def test_cardinality_always_respected(self, rng):
        values = rng.lognormal(5.0, 2.0, size=300)
        solution = solve_fixed_size_subset_sum(values, subset_size=120, target_sum=float(values.sum() / 3), rng=rng)
        assert solution.size == 120
        assert len(set(solution.indices.tolist())) == 120

    def test_indices_point_into_pool(self, rng):
        values = rng.lognormal(3.0, 1.0, size=50)
        solution = solve_fixed_size_subset_sum(values, subset_size=10, target_sum=100.0, rng=rng)
        assert solution.indices.min() >= 0
        assert solution.indices.max() < 50
        assert solution.achieved_sum == pytest.approx(values[solution.indices].sum())

    def test_relative_error_definition(self, rng):
        values = np.asarray([10.0, 20.0, 30.0])
        solution = solve_fixed_size_subset_sum(values, subset_size=2, target_sum=40.0, rng=rng)
        assert solution.relative_error == pytest.approx(
            abs(solution.achieved_sum - 40.0) / 40.0
        )

    def test_improvement_reduces_error(self, rng):
        """With improvement passes the error is no worse than without."""
        values = np.random.default_rng(3).lognormal(6.0, 2.0, size=400)
        target = float(np.sort(values)[:150].sum() * 1.2)
        without = solve_fixed_size_subset_sum(
            values, 150, target, np.random.default_rng(7), max_improvement_passes=0
        )
        with_improvement = solve_fixed_size_subset_sum(
            values, 150, target, np.random.default_rng(7), max_improvement_passes=3
        )
        assert with_improvement.relative_error <= without.relative_error + 1e-12

    def test_close_target_reached_with_heavy_tailed_pool(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(4.0, 2.46, size=1_000)
        target = float(np.median(values) * 500)
        solution = solve_fixed_size_subset_sum(values, 500, target, rng)
        assert solution.relative_error < 0.05

    def test_subset_size_larger_than_pool_rejected(self, rng):
        with pytest.raises(ValueError):
            solve_fixed_size_subset_sum(np.asarray([1.0, 2.0]), 3, 3.0, rng)

    def test_non_positive_subset_size_rejected(self, rng):
        with pytest.raises(ValueError):
            solve_fixed_size_subset_sum(np.asarray([1.0]), 0, 1.0, rng)

    def test_non_positive_target_rejected(self, rng):
        with pytest.raises(ValueError):
            solve_fixed_size_subset_sum(np.asarray([1.0]), 1, 0.0, rng)

    def test_whole_pool_selection(self, rng):
        values = np.asarray([5.0, 5.0, 5.0])
        solution = solve_fixed_size_subset_sum(values, 3, 15.0, rng)
        assert solution.relative_error == pytest.approx(0.0)

    def test_swaps_counted(self):
        rng = np.random.default_rng(2)
        values = rng.lognormal(5.0, 2.0, size=200)
        target = float(np.sort(values)[:80].sum() * 1.3)
        solution = solve_fixed_size_subset_sum(values, 80, target, rng)
        assert solution.swaps >= 0

    def test_deterministic_given_rng_state(self):
        values = np.random.default_rng(0).lognormal(5.0, 1.5, size=120)
        a = solve_fixed_size_subset_sum(values, 40, 2_000.0, np.random.default_rng(5))
        b = solve_fixed_size_subset_sum(values, 40, 2_000.0, np.random.default_rng(5))
        assert np.array_equal(a.indices, b.indices)
        assert a.achieved_sum == b.achieved_sum
