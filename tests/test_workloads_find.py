"""Unit tests for the find simulator (Figure 1 mechanics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.fig1_find import _reshaped_image
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.namespace.generative_model import build_deep_tree, build_flat_tree
from repro.workloads.find import FindCostModel, FindSimulator


@pytest.fixture(scope="module")
def figure1_image():
    config = ImpressionsConfig(
        fs_size_bytes=None, num_files=400, num_directories=100, seed=13, special_directories=()
    )
    return Impressions(config).generate()


class TestFindBasics:
    def test_visits_every_directory_and_entry(self, figure1_image):
        result = FindSimulator(figure1_image).run()
        assert result.directories_visited == figure1_image.directory_count
        assert result.entries_examined == (
            figure1_image.file_count + figure1_image.directory_count - 1
        )

    def test_matches_counted(self, figure1_image):
        result = FindSimulator(figure1_image).run(name_substring="file0000")
        assert result.matches >= 1
        none = FindSimulator(figure1_image).run(name_substring="no-such-name")
        assert none.matches == 0

    def test_elapsed_positive(self, figure1_image):
        assert FindSimulator(figure1_image).run().elapsed_ms > 0


class TestCacheEffect:
    def test_warm_cache_is_much_faster(self, figure1_image):
        cold = FindSimulator(figure1_image).run().elapsed_ms
        warm_simulator = FindSimulator(figure1_image)
        warm_simulator.warm_cache()
        warm = warm_simulator.run().elapsed_ms
        assert warm < cold / 10
        assert warm_simulator.cache.hit_ratio() == 1.0

    def test_second_run_hits_cache(self, figure1_image):
        simulator = FindSimulator(figure1_image)
        first = simulator.run().elapsed_ms
        second = simulator.run().elapsed_ms
        assert second < first


class TestTreeShapeEffect:
    def test_deep_tree_slower_than_flat_tree(self, figure1_image):
        flat = _reshaped_image(figure1_image, build_flat_tree(100), seed=13)
        deep = _reshaped_image(figure1_image, build_deep_tree(100), seed=13)
        flat_time = FindSimulator(flat).run().elapsed_ms
        deep_time = FindSimulator(deep).run().elapsed_ms
        # The paper reports roughly a 3x spread between flat and deep.
        assert deep_time > 2.0 * flat_time

    def test_flat_tree_faster_than_generated_tree(self, figure1_image):
        flat = _reshaped_image(figure1_image, build_flat_tree(100), seed=13)
        original_time = FindSimulator(figure1_image).run().elapsed_ms
        flat_time = FindSimulator(flat).run().elapsed_ms
        assert flat_time < original_time


class TestFragmentationEffect:
    def test_fragmented_image_is_slower(self):
        base = ImpressionsConfig(
            fs_size_bytes=None, num_files=300, num_directories=80, seed=21, special_directories=()
        )
        clean = Impressions(base).generate()
        fragmented = Impressions(base.with_overrides(layout_score=0.93)).generate()
        clean_time = FindSimulator(clean).run().elapsed_ms
        fragmented_time = FindSimulator(fragmented).run().elapsed_ms
        assert fragmented_time > clean_time


class TestCostModel:
    def test_zero_depth_penalty_removes_depth_effect(self, figure1_image):
        flat = _reshaped_image(figure1_image, build_flat_tree(100), seed=13)
        deep = _reshaped_image(figure1_image, build_deep_tree(100), seed=13)
        costs = FindCostModel(depth_penalty_ms=0.0, sibling_locality_discount=1.0)
        flat_time = FindSimulator(flat, cost_model=costs).run().elapsed_ms
        deep_time = FindSimulator(deep, cost_model=costs).run().elapsed_ms
        assert deep_time == pytest.approx(flat_time, rel=0.05)

    def test_custom_cost_model_is_used(self, figure1_image):
        cheap = FindCostModel(per_entry_cpu_ms=0.0, depth_penalty_ms=0.0)
        default_time = FindSimulator(figure1_image).run().elapsed_ms
        cheap_time = FindSimulator(figure1_image, cost_model=cheap).run().elapsed_ms
        assert cheap_time < default_time
