"""Multi-client trace interleaving and per-client replay statistics."""

from __future__ import annotations

import pytest

from repro.trace.ops import Operation, OperationTrace, merge_traces
from repro.trace.replay import TraceReplayer
from repro.trace.synthesize import ChurnSpec, synthesize_churn


def _tiny_trace(prefix: str, batches: int, per_batch: int) -> OperationTrace:
    trace = OperationTrace()
    for batch in range(batches):
        for index in range(per_batch):
            trace.add("create", f"{prefix}/b{batch}i{index}", size=4096, batch=batch)
    return trace


class TestMergeTraces:
    def test_arrival_order_by_batch(self):
        merged = merge_traces(_tiny_trace("/a", 3, 2), _tiny_trace("/b", 3, 2))
        batches = [operation.batch for operation in merged]
        assert batches == sorted(batches)
        # within a batch, clients rotate in tag order
        first_batch = [op for op in merged if op.batch == 0]
        assert [op.client for op in first_batch] == ["client0"] * 2 + ["client1"] * 2

    def test_per_client_order_preserved(self):
        left = _tiny_trace("/a", 2, 3)
        merged = merge_traces(left, _tiny_trace("/b", 2, 3))
        left_paths = [op.path for op in merged if op.client == "client0"]
        assert left_paths == [op.path for op in left]

    def test_custom_tags(self):
        merged = merge_traces(
            _tiny_trace("/a", 1, 1), _tiny_trace("/b", 1, 1), tags=("web", "db")
        )
        assert merged.client_tags() == ("web", "db")

    def test_existing_client_tags_are_kept(self):
        tagged = OperationTrace([Operation(kind="stat", path="/x", client="preset")])
        merged = merge_traces(tagged, _tiny_trace("/b", 1, 1))
        assert merged.operations[0].client == "preset"

    def test_metadata_records_sources(self):
        left = synthesize_churn(ChurnSpec(num_ops=50, name_prefix="/c0/f"), seed=1)
        right = synthesize_churn(ChurnSpec(num_ops=70, name_prefix="/c1/f"), seed=2)
        merged = merge_traces(left, right)
        assert merged.metadata["clients"] == ["client0", "client1"]
        assert merged.metadata["operations_per_client"] == [50, 70]
        assert merged.metadata["sources"][0]["synthesizer"] == "churn"

    def test_inputs_unmodified(self):
        left = _tiny_trace("/a", 1, 2)
        merge_traces(left, _tiny_trace("/b", 1, 2))
        assert all(op.client == "" for op in left)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_traces()
        with pytest.raises(ValueError, match="tags"):
            merge_traces(_tiny_trace("/a", 1, 1), tags=("one", "two"))
        with pytest.raises(ValueError, match="unique"):
            merge_traces(
                _tiny_trace("/a", 1, 1), _tiny_trace("/b", 1, 1), tags=("x", "x")
            )
        with pytest.raises(ValueError, match="non-empty"):
            merge_traces(_tiny_trace("/a", 1, 1), tags=("",))

    def test_jsonl_round_trip_keeps_client_tags(self):
        merged = merge_traces(_tiny_trace("/a", 2, 2), _tiny_trace("/b", 2, 2))
        round_tripped = OperationTrace.from_jsonl(merged.to_jsonl())
        assert round_tripped.operations == merged.operations

    def test_untagged_serialization_is_unchanged(self):
        # Single-client traces serialize exactly as before the client field
        # existed (no "client" key), so old trace files stay byte-compatible.
        operation = Operation(kind="stat", path="/x")
        assert "client" not in operation.to_json_line()
        parsed = Operation.from_json_line('{"op":"stat","path":"/x"}')
        assert parsed.client == ""

    def test_merge_determinism(self):
        make = lambda: merge_traces(
            synthesize_churn(ChurnSpec(num_ops=200, name_prefix="/c0/f"), seed=3),
            synthesize_churn(ChurnSpec(num_ops=200, name_prefix="/c1/f"), seed=4),
        )
        assert make().to_jsonl() == make().to_jsonl()


class TestPerClientReplayStats:
    def test_per_client_stats_partition_totals(self):
        merged = merge_traces(
            synthesize_churn(ChurnSpec(num_ops=300, name_prefix="/c0/f"), seed=1),
            synthesize_churn(ChurnSpec(num_ops=300, name_prefix="/c1/f"), seed=2),
        )
        result = TraceReplayer().replay(merged)
        assert set(result.per_client) == {"client0", "client1"}
        assert (
            sum(stats.count for stats in result.per_client.values()) == result.executed
        )
        assert (
            sum(stats.skipped for stats in result.per_client.values()) == result.skipped
        )
        total_ms = sum(stats.total_ms for stats in result.per_client.values())
        assert total_ms == pytest.approx(result.simulated_ms)

    def test_per_client_in_as_dict_only_when_tagged(self):
        untagged = TraceReplayer().replay(_tiny_trace("/a", 2, 2))
        assert "per_client" not in untagged.as_dict()
        tagged = TraceReplayer().replay(
            merge_traces(_tiny_trace("/a", 2, 2), _tiny_trace("/b", 2, 2))
        )
        assert set(tagged.as_dict()["per_client"]) == {"client0", "client1"}

    def test_single_trace_merge_tags_everything(self):
        merged = merge_traces(_tiny_trace("/solo", 2, 2))
        result = TraceReplayer().replay(merged)
        assert set(result.per_client) == {"client0"}
        assert result.per_client["client0"].count == result.executed
