"""Unit tests for the multi-constraint resolver (Section 3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constraints.resolver import (
    ConstraintResolutionError,
    ConstraintResolver,
    ConstraintSpec,
    summarize_trials,
)
from repro.stats.distributions import LognormalDistribution

#: Rescaled Figure 3 example: E[sum of num_values samples] ≈ 60 per value.
EXAMPLE_DISTRIBUTION = LognormalDistribution(mu=1.07, sigma=2.46)


def _spec(**overrides) -> ConstraintSpec:
    defaults = dict(
        num_values=200,
        target_sum=200 * 60.0,
        distribution=EXAMPLE_DISTRIBUTION,
        beta=0.05,
        max_oversampling_factor=1.0,
        max_restarts=3,
    )
    defaults.update(overrides)
    return ConstraintSpec(**defaults)


class TestConstraintSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            _spec(num_values=0)
        with pytest.raises(ValueError):
            _spec(target_sum=0.0)
        with pytest.raises(ValueError):
            _spec(beta=1.5)
        with pytest.raises(ValueError):
            _spec(max_oversampling_factor=0.0)
        with pytest.raises(ValueError):
            _spec(max_restarts=0)


class TestResolution:
    def test_resolves_reachable_target(self, rng):
        result = ConstraintResolver(_spec(), rng).resolve()
        assert result.converged
        assert result.final_beta <= 0.05
        assert result.values.size == 200
        assert abs(result.values.sum() - 200 * 60.0) <= 0.05 * 200 * 60.0

    def test_constrained_sample_still_follows_distribution(self):
        # The realistic use case: the requested FS size is plausible for the
        # requested file count (here: 5% above what this seed's own sample
        # sums to), so the resolver only needs mild adjustments and must not
        # distort the distribution while making them.
        seed = 12345
        typical_sum = float(EXAMPLE_DISTRIBUTION.sample(np.random.default_rng(seed), 400).sum())
        result = ConstraintResolver(
            _spec(num_values=400, target_sum=typical_sum * 1.05),
            np.random.default_rng(seed),
        ).resolve()
        assert result.converged
        assert result.ks_passed
        assert result.ks_statistic_vs_initial < 0.15

    def test_initial_beta_recorded(self, rng):
        result = ConstraintResolver(_spec(), rng).resolve()
        assert result.initial_beta >= 0.0

    def test_oversampling_factor_bounded_by_lambda(self, rng):
        spec = _spec(max_oversampling_factor=0.2)
        result = ConstraintResolver(spec, rng).resolve()
        assert result.oversampling_factor <= 0.2 + 1e-9

    def test_trace_records_convergence(self, rng):
        result = ConstraintResolver(_spec(), rng).resolve()
        assert len(result.trace.sums) >= 1
        assert result.trace.sums[0] > 0
        # The initial beta corresponds to the first recorded sum.
        target = 200 * 60.0
        assert abs(result.trace.sums[0] - target) / target == pytest.approx(
            result.initial_beta, abs=1e-9
        )

    def test_easy_target_converges_without_oversampling(self, rng):
        # Target equal to whatever the raw sample sums to converges instantly.
        sample = EXAMPLE_DISTRIBUTION.sample(np.random.default_rng(1), 100)
        spec = _spec(num_values=100, target_sum=float(sample.sum()), beta=0.5)
        result = ConstraintResolver(spec, np.random.default_rng(1)).resolve()
        assert result.converged
        assert result.oversampling_factor == 0.0

    def test_unreachable_target_reports_failure(self):
        # A target 100x above the expected sum cannot be met within lambda=0.05.
        spec = _spec(
            num_values=50,
            target_sum=50 * 60.0 * 100,
            max_oversampling_factor=0.05,
            max_restarts=2,
        )
        result = ConstraintResolver(spec, np.random.default_rng(3)).resolve()
        assert not result.converged
        assert result.final_beta > 0.05

    def test_unreachable_target_raises_when_asked(self):
        spec = _spec(
            num_values=50,
            target_sum=50 * 60.0 * 100,
            max_oversampling_factor=0.05,
            max_restarts=2,
        )
        with pytest.raises(ConstraintResolutionError):
            ConstraintResolver(spec, np.random.default_rng(3)).resolve(raise_on_failure=True)

    def test_values_are_positive(self, rng):
        result = ConstraintResolver(_spec(), rng).resolve()
        assert np.all(result.values > 0)

    def test_reproducible_given_seed(self):
        a = ConstraintResolver(_spec(), np.random.default_rng(42)).resolve()
        b = ConstraintResolver(_spec(), np.random.default_rng(42)).resolve()
        assert np.array_equal(a.values, b.values)
        assert a.final_beta == b.final_beta


class TestSummarizeTrials:
    def test_aggregates_over_trials(self):
        results = [
            ConstraintResolver(_spec(num_values=100, target_sum=100 * 60.0), np.random.default_rng(seed)).resolve()
            for seed in range(4)
        ]
        summary = summarize_trials(results)
        assert summary["trials"] == 4
        assert 0.0 <= summary["success_rate"] <= 1.0
        assert summary["avg_final_beta"] <= summary["avg_initial_beta"] + 1e-9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_trials([])
