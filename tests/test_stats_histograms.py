"""Unit tests for repro.stats.histograms (power-of-two binning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.histograms import PowerOfTwoHistogram, depth_histogram, power_of_two_bins


class TestBinEdges:
    def test_includes_zero_bin_by_default(self):
        edges = power_of_two_bins(100)
        assert edges[0] == 0.0
        assert edges[1] == 1.0
        assert edges[-1] >= 100

    def test_without_zero_bin(self):
        edges = power_of_two_bins(100, include_zero=False)
        assert edges[0] == 1.0

    def test_edges_are_powers_of_two(self):
        edges = power_of_two_bins(1_000_000)[2:]
        assert np.allclose(np.log2(edges), np.round(np.log2(edges)))

    def test_small_max_value_still_valid(self):
        edges = power_of_two_bins(0.5)
        assert len(edges) >= 3


class TestHistogram:
    def test_counts_and_bytes(self):
        values = [0, 1, 1, 3, 1024]
        hist = PowerOfTwoHistogram.from_values(values)
        assert hist.total_count == 5
        assert hist.total_bytes == sum(values)
        # zero bin holds exactly the zero value
        assert hist.counts[0] == 1

    def test_count_fractions_sum_to_one(self):
        hist = PowerOfTwoHistogram.from_values([1, 2, 4, 8, 16, 10_000])
        assert hist.count_fractions().sum() == pytest.approx(1.0)

    def test_byte_fractions_weighted_by_size(self):
        hist = PowerOfTwoHistogram.from_values([1, 1, 1, 1021])
        byte_fracs = hist.byte_fractions()
        assert byte_fracs.max() == pytest.approx(1021 / 1024)

    def test_empty_histogram(self):
        hist = PowerOfTwoHistogram.from_values([])
        assert hist.total_count == 0
        assert np.all(hist.count_fractions() == 0)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            PowerOfTwoHistogram.from_values([-1.0])

    def test_cumulative_reaches_one(self):
        hist = PowerOfTwoHistogram.from_values([3, 9, 200, 5000])
        assert hist.cumulative_count_fractions()[-1] == pytest.approx(1.0)
        assert hist.cumulative_byte_fractions()[-1] == pytest.approx(1.0)

    def test_bin_boundaries_left_inclusive(self):
        hist = PowerOfTwoHistogram.from_values([4.0])
        # 4 falls in [4, 8), which is the bin after [2, 4).
        edges = hist.edges
        index = int(np.flatnonzero(hist.counts)[0])
        assert edges[index] == 4.0

    def test_bin_labels(self):
        hist = PowerOfTwoHistogram.from_values([0, 3, 3000])
        labels = hist.bin_labels()
        assert labels[0] == "0"
        assert any("K" in label for label in labels)

    def test_aligned_with_pads_shorter(self):
        small = PowerOfTwoHistogram.from_values([1, 2, 3])
        large = PowerOfTwoHistogram.from_values([1, 2, 3, 10_000_000])
        a, b = small.aligned_with(large)
        assert a.num_bins == b.num_bins
        assert a.total_count == small.total_count

    def test_aligned_with_is_symmetric(self):
        small = PowerOfTwoHistogram.from_values([5])
        large = PowerOfTwoHistogram.from_values([5, 1e9])
        a1, b1 = small.aligned_with(large)
        b2, a2 = large.aligned_with(small)
        assert a1.num_bins == a2.num_bins == b1.num_bins == b2.num_bins
        assert a1.total_count == a2.total_count

    def test_explicit_max_value(self):
        hist = PowerOfTwoHistogram.from_values([1, 2], max_value=1 << 20)
        assert hist.edges[-1] >= 1 << 20


class TestDepthHistogram:
    def test_counts_per_depth(self):
        counts = depth_histogram([0, 1, 1, 3])
        assert counts.tolist() == [1, 2, 0, 1]

    def test_max_depth_clips(self):
        counts = depth_histogram([0, 5, 50], max_depth=10)
        assert counts[10] == 1.0
        assert counts.sum() == 3

    def test_empty_input(self):
        counts = depth_histogram([], max_depth=4)
        assert counts.tolist() == [0, 0, 0, 0, 0]

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            depth_histogram([-1])
