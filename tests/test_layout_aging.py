"""Unit tests for the workload-driven aging mode (Section 3.7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layout.aging import AgingWorkload, WorkloadOperation
from repro.layout.disk import SimulatedDisk


class TestWorkloadOperation:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkloadOperation(kind="truncate", name="x")

    def test_negative_create_size_rejected(self):
        with pytest.raises(ValueError):
            WorkloadOperation(kind="create", name="x", size_bytes=-1)


class TestRandomWorkload:
    def test_requested_length(self, rng):
        workload = AgingWorkload.random(num_operations=500, rng=rng)
        assert len(workload) == 500

    def test_delete_fraction_roughly_respected(self, rng):
        workload = AgingWorkload.random(num_operations=4_000, rng=rng, delete_fraction=0.4)
        deletes = sum(1 for op in workload.operations if op.kind == "delete")
        assert deletes / len(workload) == pytest.approx(0.4, abs=0.05)

    def test_deletes_only_refer_to_live_files(self, rng):
        workload = AgingWorkload.random(num_operations=1_000, rng=rng, delete_fraction=0.5)
        live: set[str] = set()
        for op in workload.operations:
            if op.kind == "create":
                live.add(op.name)
            else:
                assert op.name in live
                live.remove(op.name)

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            AgingWorkload.random(num_operations=0, rng=rng)
        with pytest.raises(ValueError):
            AgingWorkload.random(num_operations=10, rng=rng, delete_fraction=1.0)


class TestReplay:
    def test_replay_without_deletes_keeps_perfect_layout(self, rng):
        workload = AgingWorkload.random(num_operations=300, rng=rng, delete_fraction=0.0)
        disk = SimulatedDisk(num_blocks=500_000)
        assert workload.replay(disk) == 1.0

    def test_replay_with_deletes_fragments(self):
        rng = np.random.default_rng(8)
        workload = AgingWorkload.random(
            num_operations=2_000, rng=rng, delete_fraction=0.45, mean_file_size=64 * 1024
        )
        disk = SimulatedDisk(num_blocks=1_000_000)
        score = workload.replay(disk)
        assert score < 1.0

    def test_more_deletes_fragment_more(self):
        heavy = AgingWorkload.random(
            num_operations=2_000, rng=np.random.default_rng(8), delete_fraction=0.45
        )
        light = AgingWorkload.random(
            num_operations=2_000, rng=np.random.default_rng(8), delete_fraction=0.05
        )
        heavy_score = heavy.replay(SimulatedDisk(num_blocks=1_000_000))
        light_score = light.replay(SimulatedDisk(num_blocks=1_000_000))
        assert heavy_score < light_score

    def test_oversized_creates_are_skipped(self, rng):
        operations = [
            WorkloadOperation(kind="create", name="huge", size_bytes=10**12),
            WorkloadOperation(kind="create", name="small", size_bytes=4096),
        ]
        disk = SimulatedDisk(num_blocks=100)
        score = AgingWorkload(operations).replay(disk)
        assert score == 1.0
        assert disk.has_file("small")
        assert not disk.has_file("huge")

    def test_delete_of_missing_file_ignored(self):
        operations = [WorkloadOperation(kind="delete", name="ghost")]
        disk = SimulatedDisk(num_blocks=10)
        assert AgingWorkload(operations).replay(disk) == 1.0

    def test_empty_workload_scores_one(self):
        disk = SimulatedDisk(num_blocks=10)
        assert AgingWorkload([]).replay(disk) == 1.0

    def test_extended_with(self):
        base = AgingWorkload([WorkloadOperation(kind="create", name="a", size_bytes=1)])
        extended = base.extended_with([WorkloadOperation(kind="delete", name="a")])
        assert len(base) == 1
        assert len(extended) == 2
