"""Tests for the Figure 6 assumption measurements."""

from __future__ import annotations

import pytest

from repro.core.image import FileSystemImage
from repro.namespace.tree import FileSystemTree
from repro.workloads.search.assumptions import (
    DEFAULT_ASSUMPTIONS,
    AssumptionReport,
    evaluate_assumptions,
)


def _image_with(files: list[tuple[int, int, str]]) -> FileSystemImage:
    """Build a tiny image with (size, depth, kind) files at controlled depths."""
    tree = FileSystemTree()
    parents = {0: tree.root}
    for size, depth, kind in files:
        if depth - 1 not in parents:
            current = tree.root
            for level in range(1, depth):
                if level not in parents:
                    parents[level] = tree.create_directory(current)
                current = parents[level]
        parent = parents[depth - 1]
        node = tree.create_file(parent, size=size, extension="x", content_kind=kind)
        node.depth = depth
    return FileSystemImage(tree=tree)


class TestDefaultAssumptions:
    def test_five_assumptions_defined(self):
        assert len(DEFAULT_ASSUMPTIONS) == 5
        applications = {spec.application for spec in DEFAULT_ASSUMPTIONS}
        assert applications == {"GDL", "Beagle"}


class TestEvaluation:
    def test_gdl_depth_assumption_counts_deep_files(self):
        image = _image_with(
            [(1024, 2, "text"), (1024, 12, "text"), (1024, 15, "binary"), (1024, 3, "binary")]
        )
        reports = evaluate_assumptions(image)
        depth_report = next(r for r in reports if "deep" in r.parameter)
        assert depth_report.affected_files == 4
        assert depth_report.missed_files == 2
        assert depth_report.missed_file_fraction == pytest.approx(0.5)

    def test_text_size_assumption_only_counts_text(self):
        image = _image_with(
            [
                (500 * 1024, 2, "text"),     # above the 200 KB GDL cutoff
                (10 * 1024, 2, "text"),      # below
                (900 * 1024 * 1024, 2, "binary"),  # not text: ignored
            ]
        )
        reports = evaluate_assumptions(image)
        gdl_text = next(r for r in reports if r.application == "GDL" and "Text" in r.parameter)
        assert gdl_text.affected_files == 2
        assert gdl_text.missed_files == 1
        assert gdl_text.missed_byte_fraction > 0.9

    def test_empty_categories_report_zero(self):
        image = _image_with([(1024, 2, "text")])
        reports = evaluate_assumptions(image)
        archive = next(r for r in reports if "Archive" in r.parameter)
        assert archive.affected_files == 0
        assert archive.missed_file_fraction == 0.0

    def test_render_mentions_fractions(self):
        report = AssumptionReport(
            application="GDL",
            parameter="File content < 10 deep",
            affected_files=100,
            missed_files=10,
            affected_bytes=1000,
            missed_bytes=50,
        )
        rendered = report.render()
        assert "10.0%" in rendered
        assert "5.0%" in rendered

    def test_representative_image_misses_meaningful_fractions(self, small_image):
        """On a default image the cutoffs miss a non-trivial share of bytes,
        which is the paper's point in Figure 6."""
        reports = evaluate_assumptions(small_image)
        beagle_text = next(
            r for r in reports if r.application == "Beagle" and "Text" in r.parameter
        )
        # Very few *files* are above 5 MB, but they carry a large share of bytes.
        assert beagle_text.missed_file_fraction < 0.2
        if beagle_text.missed_files:
            assert beagle_text.missed_byte_fraction > beagle_text.missed_file_fraction
