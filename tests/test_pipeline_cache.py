"""Content-addressed stage cache: hits, resume, corruption, safety gating."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ImpressionsConfig
from repro.metadata.timestamps import TimestampModel
from repro.pipeline import StageCache, config_cache_safe, default_pipeline, image_fingerprint
from repro.stats.distributions import LognormalDistribution

CONFIG = ImpressionsConfig(fs_size_bytes=None, num_files=150, num_directories=30, seed=9)


@pytest.fixture
def cache(tmp_path) -> StageCache:
    return StageCache(str(tmp_path / "stage-cache"))


class TestCacheLifecycle:
    def test_first_run_stores_every_generation_stage(self, cache):
        result = default_pipeline().run(CONFIG, cache=cache)
        assert result.cache_summary() == {
            "enabled": True,
            "hits": 0,
            "misses": 6,
            "stores": 6,
            "generated": True,
        }
        assert cache.entry_count() == 6

    def test_second_run_is_a_full_hit_with_identical_image(self, cache):
        first = default_pipeline().run(CONFIG, cache=cache)
        second = default_pipeline().run(CONFIG, cache=cache)
        assert second.generation_cached
        assert second.cache_summary()["hits"] == 6
        assert second.cache_summary()["stores"] == 0
        assert image_fingerprint(first.image) == image_fingerprint(second.image)

    def test_cached_run_matches_cacheless_run(self, cache):
        default_pipeline().run(CONFIG, cache=cache)
        cached = default_pipeline().run(CONFIG, cache=cache)
        plain = default_pipeline().run(CONFIG)
        assert image_fingerprint(cached.image) == image_fingerprint(plain.image)

    def test_layout_sweep_reuses_prefix_and_stays_correct(self, cache):
        default_pipeline().run(CONFIG, cache=cache)
        swept_config = CONFIG.with_overrides(layout_score=0.7)
        swept = default_pipeline().run(swept_config, cache=cache)
        flags = [execution.cached for execution in swept.generation_executions]
        assert flags == [True, True, True, True, True, False]
        plain = default_pipeline().run(swept_config)
        assert image_fingerprint(swept.image) == image_fingerprint(plain.image)

    def test_different_seed_shares_nothing(self, cache):
        default_pipeline().run(CONFIG, cache=cache)
        other = default_pipeline().run(CONFIG.with_overrides(seed=10), cache=cache)
        assert other.cache_summary()["hits"] == 0
        assert cache.entry_count() == 12

    def test_report_and_timings_survive_a_cache_restore(self, cache):
        default_pipeline().run(CONFIG, cache=cache)
        restored = default_pipeline().run(CONFIG, cache=cache)
        report = restored.image.report
        assert report is not None
        assert report.derived["file_count"] == 150
        assert "layout_score" in report.derived
        assert set(report.phase_timings) >= {"directory_structure", "on_disk_creation", "total"}
        timings = restored.image.extras["timings"]
        assert "total" in timings.as_dict()


class TestCacheRobustness:
    def test_corrupt_entry_is_evicted_and_treated_as_miss(self, cache):
        result = default_pipeline().run(CONFIG, cache=cache)
        # Truncate the deepest entry; the run must fall back to the previous one.
        deepest = result.generation_executions[-1].fingerprint
        with open(cache._path(deepest), "wb") as handle:
            handle.write(b"\x80corrupt")
        rerun = default_pipeline().run(CONFIG, cache=cache)
        flags = [execution.cached for execution in rerun.generation_executions]
        assert flags == [True, True, True, True, True, False]
        assert cache.stats.evicted_corrupt == 1
        assert image_fingerprint(rerun.image) == image_fingerprint(result.image)

    def test_store_is_atomic_no_tmp_litter(self, cache, tmp_path):
        default_pipeline().run(CONFIG, cache=cache)
        leftovers = list((tmp_path / "stage-cache").rglob("*.tmp"))
        assert leftovers == []


class TestCacheSafety:
    def test_plain_knob_config_is_safe(self):
        assert config_cache_safe(CONFIG)

    def test_model_override_disables_the_cache(self, cache):
        custom = CONFIG.with_overrides(
            file_size_model=LognormalDistribution(mu=8.0, sigma=2.0)
        )
        assert not config_cache_safe(custom)
        result = default_pipeline().run(custom, cache=cache)
        assert result.cache_summary()["enabled"] is False
        assert cache.entry_count() == 0

    def test_timestamp_model_disables_the_cache(self):
        stamped = CONFIG.with_overrides(timestamp_model=TimestampModel())
        assert not config_cache_safe(stamped)

    def test_from_knobs_round_trip_is_safe(self):
        rebuilt = ImpressionsConfig.from_knobs(CONFIG.to_knobs())
        assert config_cache_safe(rebuilt)


class TestDeterministicFingerprints:
    def test_same_spec_and_seed_identical_fingerprints(self):
        runs = [default_pipeline().fingerprints(CONFIG) for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]

    def test_rng_stream_continues_exactly_after_restore(self, cache):
        # The snapshot carries the rng state: a restored run must draw the
        # same content seed the uncached run drew.
        plain = default_pipeline().run(CONFIG.with_overrides(generate_content=True))
        default_pipeline().run(CONFIG.with_overrides(generate_content=True), cache=cache)
        cached = default_pipeline().run(
            CONFIG.with_overrides(generate_content=True), cache=cache
        )
        assert cached.image.content_seed == plain.image.content_seed
        probe = cached.image.tree.files[0]
        assert cached.image.file_content(probe) == plain.image.file_content(probe)
