"""Unit tests for the target-score fragmenter (Section 3.7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.layout.disk import SimulatedDisk
from repro.layout.fragmenter import Fragmenter
from repro.layout.layout_score import layout_score


def _populate(fragmenter: Fragmenter, rng: np.random.Generator, count: int = 400) -> list[str]:
    names = []
    for index in range(count):
        size = int(max(4096, rng.lognormal(9.5, 1.6)))
        name = f"file{index}"
        fragmenter.allocate_regular_file(name, size)
        names.append(name)
    return names


class TestValidation:
    def test_invalid_target_rejected(self, rng):
        disk = SimulatedDisk(num_blocks=1_000)
        with pytest.raises(ValueError):
            Fragmenter(disk, target_score=0.0, rng=rng)
        with pytest.raises(ValueError):
            Fragmenter(disk, target_score=1.5, rng=rng)

    def test_invalid_temp_blocks_rejected(self, rng):
        disk = SimulatedDisk(num_blocks=1_000)
        with pytest.raises(ValueError):
            Fragmenter(disk, target_score=0.9, rng=rng, temp_file_blocks=0)
        with pytest.raises(ValueError):
            Fragmenter(disk, target_score=0.9, rng=rng, max_splits_per_file=0)


class TestPerfectLayout:
    def test_target_one_produces_perfect_layout(self, rng):
        disk = SimulatedDisk(num_blocks=300_000)
        fragmenter = Fragmenter(disk, target_score=1.0, rng=rng)
        names = _populate(fragmenter, rng, count=200)
        report = fragmenter.finish()
        assert report.achieved_score == 1.0
        assert report.temporary_operations == 0
        assert layout_score(disk, names) == 1.0


class TestTargetScores:
    @pytest.mark.parametrize("target", [0.98, 0.95, 0.9, 0.7])
    def test_achieves_requested_score(self, target):
        rng = np.random.default_rng(17)
        disk = SimulatedDisk(num_blocks=500_000)
        fragmenter = Fragmenter(disk, target_score=target, rng=rng)
        names = _populate(fragmenter, rng, count=400)
        report = fragmenter.finish()
        assert report.achieved_score == pytest.approx(target, abs=0.02)
        # The incremental score matches a full recomputation over the disk.
        assert layout_score(disk, names) == pytest.approx(report.achieved_score, abs=1e-9)

    def test_report_error_field(self):
        rng = np.random.default_rng(3)
        disk = SimulatedDisk(num_blocks=200_000)
        fragmenter = Fragmenter(disk, target_score=0.9, rng=rng)
        _populate(fragmenter, rng, count=150)
        report = fragmenter.finish()
        assert report.error == pytest.approx(abs(report.achieved_score - 0.9))

    def test_temporary_files_are_cleaned_up(self):
        rng = np.random.default_rng(5)
        disk = SimulatedDisk(num_blocks=200_000)
        fragmenter = Fragmenter(disk, target_score=0.9, rng=rng)
        names = _populate(fragmenter, rng, count=100)
        fragmenter.finish()
        assert set(disk.file_names()) == set(names)
        assert fragmenter.temporary_operations > 0

    def test_no_files_scores_one(self, rng):
        disk = SimulatedDisk(num_blocks=1_000)
        fragmenter = Fragmenter(disk, target_score=0.8, rng=rng)
        report = fragmenter.finish()
        assert report.achieved_score == 1.0
        assert report.regular_files == 0

    def test_single_block_files_cannot_fragment(self, rng):
        disk = SimulatedDisk(num_blocks=10_000)
        fragmenter = Fragmenter(disk, target_score=0.5, rng=rng)
        for index in range(100):
            fragmenter.allocate_regular_file(f"tiny{index}", 100)
        report = fragmenter.finish()
        # All files are single-block: the layout score is 1.0 by definition.
        assert report.achieved_score == 1.0

    def test_extents_returned_in_logical_order(self, rng):
        disk = SimulatedDisk(num_blocks=100_000)
        fragmenter = Fragmenter(disk, target_score=0.6, rng=rng)
        extents = fragmenter.allocate_regular_file("f", 50 * 4096)
        assert extents == disk.extents_of("f")
        blocks = [b for start, length in extents for b in range(start, start + length)]
        assert len(blocks) == 50
        assert len(set(blocks)) == 50
        assert blocks == disk.blocks_of("f")
