"""Unit tests for file placement (depth model + parent selection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.namespace.generative_model import GenerativeTreeModel, build_deep_tree
from repro.namespace.placement import DEFAULT_MEAN_BYTES_BY_DEPTH, FilePlacer, PlacementModel
from repro.namespace.special_dirs import SpecialDirectorySpec, install_special_directories
from repro.stats.distributions import ShiftedPoissonDistribution


@pytest.fixture
def tree(rng):
    return GenerativeTreeModel().generate(300, rng)


class TestPlacementModel:
    def test_defaults_match_table2(self):
        model = PlacementModel()
        assert model.depth_distribution.lam == pytest.approx(6.49)
        assert model.directory_file_count.degree == 2.0
        assert model.directory_file_count.offset == pytest.approx(2.36)

    def test_mean_bytes_fallback(self):
        model = PlacementModel(mean_bytes_by_depth={1: 1000.0})
        assert model.mean_bytes_at(1) == 1000.0
        assert model.mean_bytes_at(99) == 1000.0  # falls back to the mapping mean

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            PlacementModel(affinity_sigma=0.0)

    def test_excessive_special_bias_rejected(self):
        specials = (
            SpecialDirectorySpec(name="A", depth=1, file_bias=0.6),
            SpecialDirectorySpec(name="B", depth=1, file_bias=0.6),
        )
        with pytest.raises(ValueError):
            PlacementModel(special_directories=specials)


class TestDepthSelection:
    def test_depths_within_tree_bounds(self, tree, rng):
        placer = FilePlacer(tree, PlacementModel(), rng)
        for size in (100, 10_000, 50_000_000):
            depth = placer.choose_depth(size)
            assert 1 <= depth <= tree.max_depth() + 1

    def test_depth_distribution_tracks_poisson(self, tree, rng):
        model = PlacementModel(use_multiplicative_model=False)
        placer = FilePlacer(tree, model, rng)
        depths = np.asarray([placer.choose_depth(10_000) for _ in range(2_000)])
        # With the pure Poisson model (λ=6.49) clipped to the tree, the mean
        # depth lands near min(λ, max usable depth).
        expected = min(6.49, tree.max_depth() + 1)
        assert depths.mean() == pytest.approx(expected, abs=1.5)

    def test_multiplicative_model_pulls_large_files_to_big_mean_depths(self, tree, rng):
        model = PlacementModel(affinity_sigma=0.8)
        placer = FilePlacer(tree, model, rng)
        big_depth_target = max(
            DEFAULT_MEAN_BYTES_BY_DEPTH, key=lambda d: DEFAULT_MEAN_BYTES_BY_DEPTH[d]
        )
        small = np.asarray([placer.choose_depth(2_000) for _ in range(600)])
        large = np.asarray([placer.choose_depth(2 * 1024 * 1024) for _ in range(600)])
        usable_max = tree.max_depth() + 1
        if big_depth_target <= usable_max:
            # Large files should sit, on average, nearer the large-mean depth.
            assert abs(large.mean() - big_depth_target) <= abs(small.mean() - big_depth_target) + 0.5

    def test_poisson_only_when_multiplicative_disabled(self, tree):
        model_on = PlacementModel(use_multiplicative_model=True, affinity_sigma=0.5)
        model_off = PlacementModel(use_multiplicative_model=False)
        placer_on = FilePlacer(tree, model_on, np.random.default_rng(1))
        placer_off = FilePlacer(tree, model_off, np.random.default_rng(1))
        # With the affinity disabled file size has no effect on depth choice.
        off_small = [placer_off.choose_depth(100) for _ in range(400)]
        off_large = [placer_off.choose_depth(10**8) for _ in range(400)]
        assert np.mean(off_small) == pytest.approx(np.mean(off_large), abs=1.0)
        # Sanity: the enabled model still produces valid depths.
        assert 1 <= placer_on.choose_depth(10**8) <= tree.max_depth() + 1


class TestParentSelection:
    def test_parent_depth_matches_request(self, tree, rng):
        placer = FilePlacer(tree, PlacementModel(), rng)
        parent = placer.choose_parent(3)
        assert parent.depth == 2

    def test_missing_depth_falls_back_shallower(self, rng):
        deep_tree = build_deep_tree(3)  # depths 0..2 exist
        placer = FilePlacer(deep_tree, PlacementModel(), rng)
        parent = placer.choose_parent(50)
        assert parent.depth <= deep_tree.max_depth()

    def test_root_used_when_no_candidates(self, rng):
        from repro.namespace.tree import FileSystemTree

        lone = FileSystemTree()
        placer = FilePlacer(lone, PlacementModel(), rng)
        assert placer.choose_parent(1) is lone.root

    def test_place_returns_directory_of_tree(self, tree, rng):
        placer = FilePlacer(tree, PlacementModel(), rng)
        parent = placer.place(10_000)
        assert parent in tree.directories

    def test_directory_file_counts_skewed(self, tree, rng):
        """Parent selection concentrates files: many dirs few files, few dirs many."""
        placer = FilePlacer(tree, PlacementModel(), rng)
        for _ in range(1_500):
            parent = placer.place(8_192)
            tree.create_file(parent, size=8_192, extension="txt")
        counts = np.asarray(tree.directory_file_counts())
        assert np.median(counts) <= counts.mean()


class TestSpecialDirectoryBias:
    def test_special_directories_receive_biased_share(self, rng):
        tree = GenerativeTreeModel().generate(200, rng)
        specs = (
            SpecialDirectorySpec(name="Web Cache", depth=4, file_bias=0.25),
            SpecialDirectorySpec(name="Windows", depth=2, file_bias=0.10),
        )
        nodes = install_special_directories(tree, specs, rng)
        model = PlacementModel(special_directories=specs)
        placer = FilePlacer(tree, model, rng, special_nodes=nodes)
        hits = {"Web Cache": 0, "Windows": 0}
        total = 3_000
        for _ in range(total):
            parent = placer.place(4_096)
            if parent.special_label in hits:
                hits[parent.special_label] += 1
        assert hits["Web Cache"] / total == pytest.approx(0.25, abs=0.03)
        assert hits["Windows"] / total == pytest.approx(0.10, abs=0.03)

    def test_no_bias_without_special_nodes(self, tree, rng):
        model = PlacementModel(
            special_directories=(SpecialDirectorySpec(name="X", depth=2, file_bias=0.5),)
        )
        # Special spec configured but the node was never installed/passed in:
        # placement silently ignores the bias.
        placer = FilePlacer(tree, model, rng, special_nodes={})
        parent = placer.place(1_000)
        assert parent.special_label is None
