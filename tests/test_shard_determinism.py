"""The sharding contract: jobs=1 ≡ jobs=N, bit-identically, and plans differ
when their seeds do."""

from __future__ import annotations

import pytest

from repro.core.config import ImpressionsConfig
from repro.content.generators import ContentPolicy
from repro.shard import build_plan, generate_sharded, shard_cache_slice

CONFIG = ImpressionsConfig(
    num_files=160, num_directories=32, seed=13, fs_size_bytes=12 * 1024 * 1024
)


class TestJobsEquivalence:
    def test_fingerprint_and_digest_identical_across_jobs_1_2_4(self):
        results = {jobs: generate_sharded(CONFIG, num_shards=4, jobs=jobs) for jobs in (1, 2, 4)}
        fingerprints = {result.fingerprint for result in results.values()}
        digests = {result.content_digest for result in results.values()}
        assert len(fingerprints) == 1
        assert len(digests) == 1
        assert None not in digests
        summaries = [result.image.summary() for result in results.values()]
        assert summaries[0] == summaries[1] == summaries[2]

    def test_content_bearing_images_equivalent_across_jobs(self):
        config = ImpressionsConfig(
            num_files=50,
            num_directories=10,
            seed=3,
            fs_size_bytes=2 * 1024 * 1024,
            generate_content=True,
            content=ContentPolicy(text_model="word-length"),
        )
        serial = generate_sharded(config, num_shards=3, jobs=1)
        parallel = generate_sharded(config, num_shards=3, jobs=3)
        assert serial.fingerprint == parallel.fingerprint
        assert serial.content_digest == parallel.content_digest

    def test_shard_results_report_per_shard_fingerprints(self):
        result = generate_sharded(CONFIG, num_shards=4, jobs=1)
        assert len(result.shards) == 4
        assert [shard.index for shard in result.shards] == [0, 1, 2, 3]
        assert len({shard.fingerprint for shard in result.shards}) == 4
        assert sum(shard.files for shard in result.shards) == CONFIG.num_files
        payload = result.as_dict()
        assert payload["fingerprint"] == result.fingerprint
        assert payload["num_shards"] == 4


class TestPlanSensitivity:
    def test_different_seed_changes_the_image(self):
        other = ImpressionsConfig(
            num_files=160, num_directories=32, seed=14, fs_size_bytes=12 * 1024 * 1024
        )
        a = generate_sharded(CONFIG, num_shards=4, jobs=1)
        b = generate_sharded(other, num_shards=4, jobs=1)
        assert a.fingerprint != b.fingerprint
        assert a.content_digest != b.content_digest

    def test_different_shard_count_changes_the_image(self):
        a = generate_sharded(CONFIG, num_shards=2, jobs=1)
        b = generate_sharded(CONFIG, num_shards=4, jobs=1)
        assert a.fingerprint != b.fingerprint

    def test_prebuilt_plan_equals_config_path(self):
        plan = build_plan(CONFIG, 4)
        a = generate_sharded(plan=plan, jobs=1)
        b = generate_sharded(CONFIG, num_shards=4, jobs=1)
        assert a.fingerprint == b.fingerprint


class TestCacheSlices:
    def test_cached_rerun_restores_identically(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = generate_sharded(CONFIG, num_shards=3, jobs=1, cache_dir=cache_dir)
        second = generate_sharded(CONFIG, num_shards=3, jobs=1, cache_dir=cache_dir)
        assert second.fingerprint == first.fingerprint
        assert second.content_digest == first.content_digest
        assert all(shard.cache["hits"] > 0 for shard in second.shards)
        assert all(not shard.cache["generated"] for shard in second.shards)
        # Each shard cached under its own slice.
        for index in range(3):
            assert (tmp_path / "cache" / f"shard-{index:04d}").is_dir()

    def test_slice_paths_are_stable(self):
        assert shard_cache_slice("/tmp/c", 0) == "/tmp/c/shard-0000"
        assert shard_cache_slice("/tmp/c", 12) == "/tmp/c/shard-0012"


class TestCampaignStep:
    def test_sharded_generate_step_rows_are_jobs_invariant(self):
        from repro.campaign.registry import get_step, step_names

        assert "sharded_generate" in step_names()
        step = get_step("sharded_generate")
        serial = step(None, CONFIG, {"shards": 3, "jobs": 1})
        parallel = step(None, CONFIG, {"shards": 3, "jobs": 2})
        assert serial == parallel
        assert serial["files"] == CONFIG.num_files
        assert serial["shards"] == 3
        assert serial["fingerprint"] and serial["content_digest"]

    def test_sharded_generate_step_in_a_campaign(self):
        import json as json_module

        from repro.campaign.runner import run_scenario
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec.from_dict(
            {
                "name": "shard",
                "base": {"num_files": 60, "num_directories": 12, "fs_size_bytes": 2 << 20},
                "sweep": {"seed": [1, 2]},
                "steps": [{"step": "sharded_generate", "shards": 3}],
            }
        )
        rows = [run_scenario(scenario.payload()) for scenario in spec.expand()]
        fingerprints = [row["metrics"]["sharded_generate.fingerprint"] for row in rows]
        assert len(set(fingerprints)) == 2  # different seeds, different images
        for row in rows:
            assert row["metrics"]["sharded_generate.files"] == 60
            json_module.dumps(row)  # rows stay JSON-serializable for the store


class TestValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            generate_sharded(CONFIG, num_shards=2, jobs=0)

    def test_requires_config_or_plan(self):
        with pytest.raises(ValueError, match="config or a plan"):
            generate_sharded(jobs=1)

    def test_digest_can_be_disabled(self):
        result = generate_sharded(CONFIG, num_shards=2, jobs=1, digest=False)
        assert result.content_digest is None
