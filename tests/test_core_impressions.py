"""Unit and integration tests for the Impressions generation pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.content.generators import ContentPolicy
from repro.core.config import ImpressionsConfig
from repro.core.impressions import GenerationTimings, Impressions
from repro.layout.layout_score import layout_score


class TestPipelineBasics:
    def test_requested_counts_are_honoured(self, small_image, small_config):
        assert small_image.file_count == small_config.num_files
        # Special directories may add a handful of extra directories.
        assert small_image.directory_count >= small_config.num_directories
        assert small_image.directory_count <= small_config.num_directories + 10

    def test_every_file_has_blocks_on_disk(self, small_image):
        disk = small_image.disk
        assert disk is not None
        for file_node in small_image.tree.files:
            if file_node.size > 0:
                assert file_node.block_list
                assert disk.has_file(file_node.path())
                assert file_node.first_block == file_node.block_list[0]

    def test_default_layout_is_perfect(self, small_image):
        assert small_image.achieved_layout_score() == 1.0

    def test_file_sizes_are_non_negative_ints(self, small_image):
        for file_node in small_image.tree.files:
            assert isinstance(file_node.size, int)
            assert file_node.size >= 0

    def test_extensions_come_from_model_or_are_random(self, small_image, small_config):
        popular = set(small_config.extension_model.popular_extensions) | {""}
        for file_node in small_image.tree.files:
            extension = file_node.extension
            assert extension in popular or (len(extension) == 3 and extension.isalpha())

    def test_report_is_complete(self, small_image, small_config):
        report = small_image.report
        assert report is not None
        assert report.seed == small_config.seed
        assert "file_size_by_count" in report.distributions
        assert report.derived["file_count"] == small_image.file_count
        assert report.phase_timings["total"] > 0

    def test_timings_recorded(self, small_image):
        timings = small_image.extras["timings"]
        assert isinstance(timings, GenerationTimings)
        assert timings.total == pytest.approx(sum(
            [
                timings.directory_structure,
                timings.file_sizes,
                timings.extensions,
                timings.depth_and_placement,
                timings.content,
                timings.on_disk_creation,
            ]
        ))
        assert set(timings.as_dict()) >= {"directory_structure", "on_disk_creation", "total"}


class TestGenerationTimingsDict:
    def test_extras_merge_into_as_dict(self):
        timings = GenerationTimings(extras={"trace_replay": 1.5})
        assert timings.as_dict()["trace_replay"] == 1.5

    def test_extras_cannot_shadow_core_phase_keys(self):
        timings = GenerationTimings(
            directory_structure=2.0, extras={"directory_structure": 0.1}
        )
        with pytest.raises(ValueError, match="shadow"):
            timings.as_dict()

    def test_extras_cannot_shadow_the_total(self):
        timings = GenerationTimings(extras={"total": 99.0})
        with pytest.raises(ValueError, match="total"):
            timings.as_dict()

    def test_total_excludes_extras(self):
        timings = GenerationTimings(file_sizes=1.0, extras={"trace_replay": 5.0})
        assert timings.total == 1.0


class TestReproducibility:
    def test_same_seed_same_image(self):
        config = ImpressionsConfig(fs_size_bytes=None, num_files=300, num_directories=60, seed=5)
        a = Impressions(config).generate()
        b = Impressions(config).generate()
        assert a.tree.file_sizes() == b.tree.file_sizes()
        assert [f.path() for f in a.tree.files] == [f.path() for f in b.tree.files]
        assert a.tree.directories_by_depth() == b.tree.directories_by_depth()

    def test_different_seed_different_image(self):
        base = ImpressionsConfig(fs_size_bytes=None, num_files=300, num_directories=60, seed=5)
        a = Impressions(base).generate()
        b = Impressions(base.with_overrides(seed=6)).generate()
        assert a.tree.file_sizes() != b.tree.file_sizes()


class TestFragmentedGeneration:
    def test_layout_score_target_respected(self):
        config = ImpressionsConfig(
            fs_size_bytes=None, num_files=400, num_directories=80, seed=9, layout_score=0.92
        )
        image = Impressions(config).generate()
        assert image.achieved_layout_score() == pytest.approx(0.92, abs=0.03)
        # Cross-check against a full recomputation on the simulated disk.
        names = [f.path() for f in image.tree.files if f.size > 0]
        assert layout_score(image.disk, names) == pytest.approx(
            image.achieved_layout_score(), abs=1e-9
        )


class TestConstrainedGeneration:
    def test_enforce_fs_size_converges(self):
        target = 48 * 1024 * 1024
        config = ImpressionsConfig(
            fs_size_bytes=target,
            num_files=400,
            num_directories=80,
            seed=3,
            enforce_fs_size=True,
            beta=0.1,
        )
        image = Impressions(config).generate()
        assert abs(image.total_bytes - target) / target <= 0.12
        assert "constraint_final_beta" in image.report.derived

    def test_unconstrained_size_can_drift(self):
        config = ImpressionsConfig(
            fs_size_bytes=16 * 1024 * 1024, num_files=400, num_directories=80, seed=3
        )
        image = Impressions(config).generate()
        # Without enforcement the total is whatever the samples sum to.
        assert image.total_bytes != config.fs_size_bytes


class TestContentGeneration:
    def test_content_kinds_assigned(self, content_image):
        kinds = {f.content_kind for f in content_image.tree.files}
        assert "text" in kinds or "binary" in kinds

    def test_content_bytes_reproducible(self, content_image):
        target = next(f for f in content_image.tree.files if f.size > 0)
        assert content_image.file_content(target) == content_image.file_content(target)

    def test_content_size_matches_metadata(self, content_image):
        for file_node in content_image.tree.files[:20]:
            assert len(content_image.file_content(file_node)) == file_node.size

    def test_forced_kind_applies_to_all_files(self):
        config = ImpressionsConfig(
            fs_size_bytes=None,
            num_files=60,
            num_directories=12,
            seed=2,
            generate_content=True,
            content=ContentPolicy(text_model="hybrid", force_kind="text"),
        )
        image = Impressions(config).generate()
        assert {f.content_kind for f in image.tree.files} == {"text"}


class TestDepthModelAblationPath:
    def test_poisson_only_placement_runs(self):
        config = ImpressionsConfig(
            fs_size_bytes=None,
            num_files=200,
            num_directories=50,
            seed=4,
            use_multiplicative_depth_model=False,
        )
        image = Impressions(config).generate()
        depths = np.asarray([f.depth for f in image.tree.files])
        assert depths.min() >= 1
        assert depths.max() <= image.tree.max_depth() + 1

    def test_simple_size_model_runs(self):
        config = ImpressionsConfig(
            fs_size_bytes=None, num_files=200, num_directories=50, seed=4, use_simple_size_model=True
        )
        image = Impressions(config).generate()
        assert image.file_count == 200
