"""Unit tests for the desktop-search indexer machinery."""

from __future__ import annotations

import pytest

from repro.namespace.tree import FileNode
from repro.workloads.search.engine import DesktopSearchEngine, IndexingPolicy


def _file(size: int, depth: int, kind: str) -> FileNode:
    return FileNode(name="f", size=size, extension="x", depth=depth, content_kind=kind)


@pytest.fixture
def policy() -> IndexingPolicy:
    return IndexingPolicy(
        name="test-engine",
        max_content_depth=10,
        size_cutoffs={"text": 200 * 1024},
        content_kinds=("text", "html"),
    )


class TestIndexingDecisions:
    def test_text_below_cutoff_indexed(self, policy):
        engine = DesktopSearchEngine(policy)
        assert engine.indexes_content_of(_file(50 * 1024, 3, "text"))

    def test_text_at_cutoff_skipped(self, policy):
        engine = DesktopSearchEngine(policy)
        assert not engine.indexes_content_of(_file(200 * 1024, 3, "text"))

    def test_deep_file_skipped(self, policy):
        engine = DesktopSearchEngine(policy)
        assert not engine.indexes_content_of(_file(1024, 11, "text"))

    def test_binary_not_indexed_without_binary_terms(self, policy):
        engine = DesktopSearchEngine(policy)
        assert not engine.indexes_content_of(_file(1024, 2, "binary"))

    def test_binary_indexed_when_engine_extracts_strings(self, policy):
        engine = DesktopSearchEngine(policy.with_options(binary_terms_per_kb=2.0))
        assert engine.indexes_content_of(_file(1024, 2, "binary"))

    def test_filtering_disabled_indexes_nothing(self, policy):
        engine = DesktopSearchEngine(policy.with_options(content_filtering=False))
        assert not engine.indexes_content_of(_file(1024, 2, "text"))

    def test_no_depth_limit(self, policy):
        engine = DesktopSearchEngine(policy.with_options(max_content_depth=None))
        assert engine.indexes_content_of(_file(1024, 99, "text"))


class TestIndexingAnImage:
    def test_result_accounts_for_every_file(self, content_image, policy):
        result = DesktopSearchEngine(policy).index(content_image)
        assert result.files_seen == content_image.file_count
        assert (
            result.files_content_indexed + result.files_attribute_only + result.files_skipped
            == result.files_seen
        )
        assert result.index_size_bytes > 0
        assert result.indexing_time_ms > 0
        assert result.fs_size_bytes == content_image.total_bytes

    def test_index_to_fs_ratio(self, content_image, policy):
        result = DesktopSearchEngine(policy).index(content_image)
        assert result.index_to_fs_ratio == pytest.approx(
            result.index_size_bytes / content_image.total_bytes
        )
        assert 0.0 <= result.content_coverage <= 1.0

    def test_directory_indexing_toggle(self, content_image, policy):
        with_dirs = DesktopSearchEngine(policy).index(content_image)
        without_dirs = DesktopSearchEngine(
            policy.with_options(index_directories=False)
        ).index(content_image)
        assert without_dirs.directories_indexed == 0
        assert without_dirs.index_size_bytes < with_dirs.index_size_bytes

    def test_text_cache_increases_index_size(self, content_image, policy):
        base = DesktopSearchEngine(policy).index(content_image)
        cached = DesktopSearchEngine(policy.with_options(text_cache=True)).index(content_image)
        assert cached.index_size_bytes > base.index_size_bytes

    def test_disable_filtering_shrinks_index_and_time(self, content_image, policy):
        base = DesktopSearchEngine(policy).index(content_image)
        attributes_only = DesktopSearchEngine(
            policy.with_options(content_filtering=False)
        ).index(content_image)
        assert attributes_only.index_size_bytes < base.index_size_bytes
        assert attributes_only.indexing_time_ms < base.indexing_time_ms
        assert attributes_only.files_content_indexed == 0

    def test_with_options_returns_new_policy(self, policy):
        modified = policy.with_options(text_cache=True)
        assert modified is not policy
        assert modified.text_cache is True
        assert policy.text_cache is False
