"""Synthetic typed-file headers and footers.

The original Impressions shells out to third-party tools (Id3v2 for mp3,
GraphApp for gif/jpeg, MPlayer for video, asciidoc/ascii2pdf for html/pdf) to
produce valid typed files.  Those tools are not available offline, so this
module synthesises the *structural* parts itself: correct magic numbers,
minimal valid header fields, and trailers where the format requires one.  That
is sufficient for anything that type-sniffs files (desktop search filters,
`file`, MIME detectors) to classify them correctly, which is all the paper
relies on.

Each builder returns ``(header, footer)`` byte strings; the content generator
fills the middle with payload bytes so the total file size is exact.
"""

from __future__ import annotations

import struct
import zlib

__all__ = ["typed_header_footer", "SUPPORTED_TYPED_EXTENSIONS", "minimum_typed_size"]


def _id3v2_header() -> bytes:
    """Minimal ID3v2.3 tag header (10 bytes) followed by an MPEG frame sync."""
    # "ID3", version 2.3.0, no flags, tag size 0 (synchsafe).
    id3 = b"ID3" + bytes([0x03, 0x00, 0x00]) + bytes([0x00, 0x00, 0x00, 0x00])
    # MPEG-1 Layer III frame sync header (0xFFFB), 128 kbps, 44.1 kHz.
    frame_sync = bytes([0xFF, 0xFB, 0x90, 0x00])
    return id3 + frame_sync


def _gif_header() -> bytes:
    """GIF89a header with a 1x1 logical screen."""
    return b"GIF89a" + struct.pack("<HH", 1, 1) + bytes([0x80, 0x00, 0x00]) + b"\x00\x00\x00\xff\xff\xff"


def _gif_footer() -> bytes:
    return b"\x3b"  # GIF trailer


def _jpeg_header() -> bytes:
    """JPEG SOI + JFIF APP0 marker."""
    app0 = b"\xff\xe0" + struct.pack(">H", 16) + b"JFIF\x00" + bytes([1, 1, 0]) + struct.pack(">HH", 72, 72) + bytes([0, 0])
    return b"\xff\xd8" + app0


def _jpeg_footer() -> bytes:
    return b"\xff\xd9"  # EOI


def _png_header() -> bytes:
    """PNG signature plus a minimal IHDR chunk for a 1x1 grayscale image."""
    signature = b"\x89PNG\r\n\x1a\n"
    ihdr_data = struct.pack(">IIBBBBB", 1, 1, 8, 0, 0, 0, 0)
    ihdr = struct.pack(">I", len(ihdr_data)) + b"IHDR" + ihdr_data
    ihdr += struct.pack(">I", zlib.crc32(b"IHDR" + ihdr_data) & 0xFFFFFFFF)
    return signature + ihdr


def _png_footer() -> bytes:
    iend = struct.pack(">I", 0) + b"IEND"
    iend += struct.pack(">I", zlib.crc32(b"IEND") & 0xFFFFFFFF)
    return iend


def _pdf_header() -> bytes:
    return b"%PDF-1.4\n%\xe2\xe3\xcf\xd3\n1 0 obj\n<< /Type /Catalog >>\nendobj\n"


def _pdf_footer() -> bytes:
    return b"\ntrailer\n<< /Size 2 /Root 1 0 R >>\nstartxref\n0\n%%EOF\n"


def _html_header() -> bytes:
    return b"<!DOCTYPE html>\n<html>\n<head><title>impressions</title></head>\n<body>\n<p>"


def _html_footer() -> bytes:
    return b"</p>\n</body>\n</html>\n"


def _mp4_header() -> bytes:
    """MP4/ISO-BMFF ftyp box."""
    ftyp_payload = b"isom" + struct.pack(">I", 512) + b"isomiso2avc1mp41"
    return struct.pack(">I", 8 + len(ftyp_payload)) + b"ftyp" + ftyp_payload


def _avi_header() -> bytes:
    return b"RIFF" + struct.pack("<I", 0) + b"AVI LIST"


def _wav_header() -> bytes:
    fmt = struct.pack("<IHHIIHH", 16, 1, 1, 44100, 88200, 2, 16)
    return b"RIFF" + struct.pack("<I", 36) + b"WAVE" + b"fmt " + fmt + b"data" + struct.pack("<I", 0)


def _zip_header() -> bytes:
    """Local file header for an empty stored entry."""
    return b"PK\x03\x04" + struct.pack("<HHHHHIIIHH", 20, 0, 0, 0, 0, 0, 0, 0, 0, 0)


def _zip_footer() -> bytes:
    """End-of-central-directory record for an empty archive."""
    return b"PK\x05\x06" + struct.pack("<HHHHIIH", 0, 0, 0, 0, 0, 0, 0)


def _exe_header() -> bytes:
    """MZ DOS stub header followed by a tiny PE signature."""
    mz = b"MZ" + bytes(58) + struct.pack("<I", 64)
    return mz + b"PE\x00\x00"


def _doc_header() -> bytes:
    """OLE2 compound document signature (legacy .doc)."""
    return b"\xd0\xcf\x11\xe0\xa1\xb1\x1a\xe1" + bytes(24)


_BUILDERS: dict[str, tuple[bytes, bytes]] = {}


def _register(extensions: tuple[str, ...], header: bytes, footer: bytes = b"") -> None:
    for extension in extensions:
        _BUILDERS[extension] = (header, footer)


_register(("mp3",), _id3v2_header())
_register(("gif",), _gif_header(), _gif_footer())
_register(("jpg", "jpeg"), _jpeg_header(), _jpeg_footer())
_register(("png",), _png_header(), _png_footer())
_register(("pdf",), _pdf_header(), _pdf_footer())
_register(("htm", "html"), _html_header(), _html_footer())
_register(("mp4", "mpg", "mpeg"), _mp4_header())
_register(("avi",), _avi_header())
_register(("wav", "wma"), _wav_header())
_register(("zip", "cab", "iso"), _zip_header(), _zip_footer())
_register(("exe", "dll", "lib", "obj", "pdb"), _exe_header())
_register(("doc", "mdb", "pst", "vhd"), _doc_header())

SUPPORTED_TYPED_EXTENSIONS: tuple[str, ...] = tuple(sorted(_BUILDERS.keys()))


def typed_header_footer(extension: str) -> tuple[bytes, bytes]:
    """Header and footer bytes for a typed extension.

    Unknown extensions get empty header/footer (pure payload files).
    """
    return _BUILDERS.get(extension.lower().lstrip("."), (b"", b""))


def minimum_typed_size(extension: str) -> int:
    """Smallest file size (bytes) that can carry the full header and footer."""
    header, footer = typed_header_footer(extension)
    return len(header) + len(footer)
