"""Content generation dispatch.

:class:`ContentGenerator` turns a file's metadata (size, extension, content
kind) into actual bytes.  A :class:`ContentPolicy` selects which word model to
use for human-readable files and whether typed files get structural headers.
Content can be produced eagerly (returning the bytes) or streamed to disk when
an image is materialised; both paths produce exactly ``size`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.content.headers import typed_header_footer
from repro.content.similarity import SimilarityContentGenerator, SimilarityProfile
from repro.content.wordmodel import (
    HybridWordModel,
    SingleWordModel,
    WordLengthFrequencyModel,
    WordModel,
    WordPopularityModel,
)
from repro.metadata.extensions import content_kind_for_extension

__all__ = ["ContentPolicy", "ContentGenerator"]

#: Content model names accepted by :class:`ContentPolicy`.
WORD_MODEL_NAMES = ("single-word", "word-popularity", "word-length", "hybrid")


@dataclass
class ContentPolicy:
    """How file content should be generated.

    Attributes:
        text_model: word model for human-readable files — one of
            ``single-word``, ``word-popularity``, ``word-length`` or
            ``hybrid`` (the default, as in the paper).
        typed_headers: write structural headers/footers for typed files
            (images, audio, archives, binaries); disabling this yields pure
            random payloads for every non-text file.
        binary_random_seed_per_file: give every binary file distinct random
            bytes; when False all binary files share one repeated pattern
            (the degenerate case content-addressable storage would dedupe).
        force_kind: when set, every file is generated as this content kind
            regardless of its extension (used by Figures 7 and 8 to build
            all-text / all-image / all-binary images).
        similarity: optional cross-file similarity profile; when set, binary
            payloads draw a controlled fraction of their chunks from a shared
            pool so the corpus has a predictable deduplication ratio (the
            paper's suggested content-similarity extension, §3.6).
    """

    text_model: str = "hybrid"
    typed_headers: bool = True
    binary_random_seed_per_file: bool = True
    force_kind: str | None = None
    similarity: "SimilarityProfile | None" = None

    def __post_init__(self) -> None:
        if self.text_model not in WORD_MODEL_NAMES:
            raise ValueError(
                f"unknown text model {self.text_model!r}; expected one of {WORD_MODEL_NAMES}"
            )

    def build_word_model(self) -> WordModel:
        if self.text_model == "single-word":
            return SingleWordModel()
        if self.text_model == "word-popularity":
            return WordPopularityModel()
        if self.text_model == "word-length":
            return WordLengthFrequencyModel()
        return HybridWordModel()


@dataclass
class ContentGenerator:
    """Generates file content bytes according to a :class:`ContentPolicy`."""

    policy: ContentPolicy = field(default_factory=ContentPolicy)
    _word_model: WordModel = field(init=False, repr=False)
    _similarity: SimilarityContentGenerator | None = field(init=False, repr=False, default=None)

    #: text-like kinds that go through the word model
    _TEXT_KINDS = ("text", "html", "script", "document")

    def __post_init__(self) -> None:
        self._word_model = self.policy.build_word_model()
        if self.policy.similarity is not None:
            self._similarity = SimilarityContentGenerator(self.policy.similarity)

    @property
    def word_model(self) -> WordModel:
        return self._word_model

    def content_kind(self, extension: str) -> str:
        """Resolve the content kind for a file, honouring ``force_kind``."""
        if self.policy.force_kind is not None:
            return self.policy.force_kind
        return content_kind_for_extension(extension)

    def generate(self, size: int, extension: str, rng: np.random.Generator) -> bytes:
        """Produce exactly ``size`` bytes of content for one file."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return b""
        kind = self.content_kind(extension)
        if kind in self._TEXT_KINDS:
            return self._text_content(size, extension, rng)
        return self._binary_content(size, extension, rng)

    def iter_chunks(
        self, size: int, extension: str, rng: np.random.Generator, chunk_size: int = 1 << 20
    ) -> Iterator[bytes]:
        """Stream content in chunks of at most ``chunk_size`` bytes.

        Used when materialising large images to disk so memory stays bounded.
        The concatenation of the chunks equals :meth:`generate` in length (but
        not necessarily byte-for-byte for text, since words are drawn per
        chunk).
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if size <= chunk_size:
            yield self.generate(size, extension, rng)
            return
        kind = self.content_kind(extension)
        header, footer = (b"", b"")
        if kind not in self._TEXT_KINDS and self.policy.typed_headers:
            header, footer = typed_header_footer(extension)
            if len(header) + len(footer) > size:
                header, footer = b"", b""
        remaining = size - len(header) - len(footer)
        if header:
            yield header
        while remaining > 0:
            piece = min(chunk_size, remaining)
            if kind in self._TEXT_KINDS:
                yield self._word_model.text(rng, piece).encode("ascii", errors="replace")
            else:
                yield self._random_bytes(piece, rng)
            remaining -= piece
        if footer:
            yield footer

    # Internal helpers -------------------------------------------------------

    def _text_content(self, size: int, extension: str, rng: np.random.Generator) -> bytes:
        kind = content_kind_for_extension(extension)
        header, footer = (b"", b"")
        if self.policy.typed_headers and kind in ("html", "document"):
            header, footer = typed_header_footer(extension)
            if len(header) + len(footer) > size:
                header, footer = b"", b""
        payload_size = size - len(header) - len(footer)
        payload = self._word_model.text(rng, payload_size).encode("ascii", errors="replace")
        return header + payload + footer

    def _binary_content(self, size: int, extension: str, rng: np.random.Generator) -> bytes:
        header, footer = (b"", b"")
        if self.policy.typed_headers:
            header, footer = typed_header_footer(extension)
            if len(header) + len(footer) > size:
                header, footer = b"", b""
        payload_size = size - len(header) - len(footer)
        payload = self._random_bytes(payload_size, rng)
        return header + payload + footer

    def _random_bytes(self, size: int, rng: np.random.Generator) -> bytes:
        if size <= 0:
            return b""
        if self._similarity is not None:
            return self._similarity.generate(size, rng)
        if self.policy.binary_random_seed_per_file:
            return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        pattern = bytes(range(256))
        repeats = size // len(pattern) + 1
        return (pattern * repeats)[:size]

    # Measurement helpers used by the search workloads -----------------------

    def unique_word_estimate(self, size: int) -> float:
        """Rough number of distinct words a text file of ``size`` bytes holds.

        The search-index size model needs this: a single-word file contributes
        one posting regardless of size, a popularity-model file contributes up
        to the vocabulary size, and length-model words are effectively all
        unique.
        """
        approx_words = max(size // 6, 1)
        if isinstance(self._word_model, SingleWordModel):
            return 1.0
        if isinstance(self._word_model, WordPopularityModel):
            return float(min(approx_words, self._word_model.vocabulary_size))
        if isinstance(self._word_model, HybridWordModel):
            popular = min(approx_words * self._word_model.popular_fraction, 100.0)
            rare = approx_words * (1.0 - self._word_model.popular_fraction)
            return float(popular + rare)
        return float(approx_words)
