"""File content generation (Section 3.6).

Actual file content can dominate application behaviour (the paper's examples:
content-addressable storage and desktop search), so Impressions can fill files
with:

* a **single repeated word** (the Postmark-style degenerate baseline),
* words drawn from a **word-popularity model** of common English words,
* words built from a **word-length frequency model** (Sigurd et al.) for the
  long tail,
* a **hybrid** of the two (popularity for the body, length-frequency for the
  tail),
* **random binary** bytes, and
* **typed files** with structurally valid headers/footers (mp3, gif, jpeg,
  png, pdf, html, …) so that type-sniffing applications classify them
  correctly.

The public entry point is :class:`repro.content.generators.ContentGenerator`.
"""

from repro.content.generators import ContentGenerator, ContentPolicy
from repro.content.similarity import SimilarityContentGenerator, SimilarityProfile
from repro.content.wordmodel import (
    HybridWordModel,
    SingleWordModel,
    WordLengthFrequencyModel,
    WordPopularityModel,
)

__all__ = [
    "ContentGenerator",
    "ContentPolicy",
    "WordPopularityModel",
    "WordLengthFrequencyModel",
    "HybridWordModel",
    "SingleWordModel",
    "SimilarityProfile",
    "SimilarityContentGenerator",
]
