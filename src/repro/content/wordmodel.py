"""Word models for human-readable file content (Section 3.6).

Three models, mirroring the paper:

* :class:`WordPopularityModel` — a Monte-Carlo generator driven by the
  relative popularity of the most common English words (a Zipf-like head).
* :class:`WordLengthFrequencyModel` — generates the long tail of rare words
  from the empirical distribution of English word lengths (Sigurd,
  Eeg-Olofsson & van de Weijer, 2004): the popularity list stays short, so
  content generation stays fast.
* :class:`HybridWordModel` — popularity model for the body of the stream,
  length-frequency model for a configurable tail fraction; this is the
  paper's performance compromise and the default for text content.
* :class:`SingleWordModel` — the degenerate "same word over and over"
  baseline that Postmark effectively uses; kept because Figure 7 compares
  single-word text against model text.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

__all__ = [
    "WordModel",
    "WordPopularityModel",
    "WordLengthFrequencyModel",
    "HybridWordModel",
    "SingleWordModel",
    "TOP_ENGLISH_WORDS",
    "WORD_LENGTH_FREQUENCIES",
]

#: The most common English words with relative frequencies (per million words,
#: rescaled).  A Zipf-like head: "the" alone is ~6–7% of running text.
TOP_ENGLISH_WORDS: tuple[tuple[str, float], ...] = (
    ("the", 6.90), ("of", 3.59), ("and", 2.84), ("to", 2.57), ("a", 2.27),
    ("in", 2.11), ("is", 1.12), ("it", 0.99), ("you", 0.92), ("that", 0.91),
    ("he", 0.88), ("was", 0.83), ("for", 0.79), ("on", 0.73), ("are", 0.68),
    ("with", 0.66), ("as", 0.64), ("i", 0.62), ("his", 0.60), ("they", 0.59),
    ("be", 0.58), ("at", 0.52), ("one", 0.50), ("have", 0.49), ("this", 0.48),
    ("from", 0.47), ("or", 0.45), ("had", 0.44), ("by", 0.43), ("not", 0.42),
    ("word", 0.41), ("but", 0.40), ("what", 0.39), ("some", 0.37), ("we", 0.36),
    ("can", 0.35), ("out", 0.34), ("other", 0.33), ("were", 0.33), ("all", 0.32),
    ("there", 0.31), ("when", 0.30), ("up", 0.29), ("use", 0.28), ("your", 0.27),
    ("how", 0.26), ("said", 0.26), ("an", 0.25), ("each", 0.24), ("she", 0.24),
    ("which", 0.23), ("do", 0.23), ("their", 0.22), ("time", 0.22), ("if", 0.21),
    ("will", 0.21), ("way", 0.20), ("about", 0.20), ("many", 0.19), ("then", 0.19),
    ("them", 0.18), ("write", 0.18), ("would", 0.18), ("like", 0.17), ("so", 0.17),
    ("these", 0.16), ("her", 0.16), ("long", 0.16), ("make", 0.15), ("thing", 0.15),
    ("see", 0.15), ("him", 0.14), ("two", 0.14), ("has", 0.14), ("look", 0.13),
    ("more", 0.13), ("day", 0.13), ("could", 0.12), ("go", 0.12), ("come", 0.12),
    ("did", 0.12), ("number", 0.11), ("sound", 0.11), ("no", 0.11), ("most", 0.11),
    ("people", 0.10), ("my", 0.10), ("over", 0.10), ("know", 0.10), ("water", 0.10),
    ("than", 0.09), ("call", 0.09), ("first", 0.09), ("who", 0.09), ("may", 0.09),
    ("down", 0.09), ("side", 0.08), ("been", 0.08), ("now", 0.08), ("find", 0.08),
)

#: Empirical distribution of English word lengths (letters → relative
#: frequency), after Sigurd et al. (2004): the distribution peaks at 3 letters
#: and has a gamma-like tail.
WORD_LENGTH_FREQUENCIES: tuple[tuple[int, float], ...] = (
    (1, 0.0316), (2, 0.1695), (3, 0.2140), (4, 0.1587), (5, 0.1091),
    (6, 0.0844), (7, 0.0734), (8, 0.0537), (9, 0.0432), (10, 0.0284),
    (11, 0.0166), (12, 0.0093), (13, 0.0049), (14, 0.0021), (15, 0.0008),
    (16, 0.0003),
)

_LETTER_FREQUENCIES: tuple[tuple[str, float], ...] = (
    ("e", 12.70), ("t", 9.06), ("a", 8.17), ("o", 7.51), ("i", 6.97),
    ("n", 6.75), ("s", 6.33), ("h", 6.09), ("r", 5.99), ("d", 4.25),
    ("l", 4.03), ("c", 2.78), ("u", 2.76), ("m", 2.41), ("w", 2.36),
    ("f", 2.23), ("g", 2.02), ("y", 1.97), ("p", 1.93), ("b", 1.49),
    ("v", 0.98), ("k", 0.77), ("j", 0.15), ("x", 0.15), ("q", 0.10),
    ("z", 0.07),
)


class WordModel(abc.ABC):
    """Common interface for the word generators."""

    name: str = "word-model"

    @abc.abstractmethod
    def words(self, rng: np.random.Generator, count: int) -> list[str]:
        """Generate ``count`` words."""

    def text(self, rng: np.random.Generator, num_bytes: int) -> str:
        """Generate approximately ``num_bytes`` of space-separated text.

        The result is truncated (or padded with spaces) to exactly
        ``num_bytes`` characters so file sizes stay exact.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return ""
        pieces: list[str] = []
        generated = 0
        # Draw in chunks to avoid per-word Python overhead on large files.
        while generated < num_bytes:
            needed_words = max(8, (num_bytes - generated) // 6)
            chunk = self.words(rng, needed_words)
            for word in chunk:
                pieces.append(word)
                generated += len(word) + 1
                if generated >= num_bytes:
                    break
        text = " ".join(pieces)
        if len(text) < num_bytes:
            text = text + " " * (num_bytes - len(text))
        return text[:num_bytes]


class WordPopularityModel(WordModel):
    """Monte-Carlo word generation from a popularity table."""

    name = "word-popularity"

    def __init__(self, vocabulary: Sequence[tuple[str, float]] = TOP_ENGLISH_WORDS) -> None:
        if not vocabulary:
            raise ValueError("vocabulary must be non-empty")
        self._words = [word for word, _ in vocabulary]
        weights = np.asarray([weight for _, weight in vocabulary], dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("word weights must be non-negative and not all zero")
        self._probabilities = weights / weights.sum()

    @property
    def vocabulary_size(self) -> int:
        return len(self._words)

    def words(self, rng: np.random.Generator, count: int) -> list[str]:
        if count < 0:
            raise ValueError("count must be non-negative")
        indices = rng.choice(len(self._words), size=count, p=self._probabilities)
        return [self._words[index] for index in indices]


class WordLengthFrequencyModel(WordModel):
    """Generates synthetic words whose lengths follow English statistics.

    Letters within a word are drawn from English letter frequencies, so the
    output is pronounceable-ish gibberish with a realistic length profile —
    exactly what is needed to model the heavy tail of rare words without
    storing a huge vocabulary.
    """

    name = "word-length-frequency"

    def __init__(
        self, length_table: Sequence[tuple[int, float]] = WORD_LENGTH_FREQUENCIES
    ) -> None:
        if not length_table:
            raise ValueError("length_table must be non-empty")
        self._lengths = np.asarray([length for length, _ in length_table], dtype=int)
        weights = np.asarray([weight for _, weight in length_table], dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("length weights must be non-negative and not all zero")
        self._length_probabilities = weights / weights.sum()
        self._letters = np.asarray([letter for letter, _ in _LETTER_FREQUENCIES])
        letter_weights = np.asarray([weight for _, weight in _LETTER_FREQUENCIES], dtype=float)
        self._letter_probabilities = letter_weights / letter_weights.sum()

    def mean_word_length(self) -> float:
        return float(np.dot(self._lengths, self._length_probabilities))

    def words(self, rng: np.random.Generator, count: int) -> list[str]:
        if count < 0:
            raise ValueError("count must be non-negative")
        lengths = rng.choice(self._lengths, size=count, p=self._length_probabilities)
        total_letters = int(lengths.sum())
        letters = rng.choice(self._letters, size=total_letters, p=self._letter_probabilities)
        out: list[str] = []
        cursor = 0
        for length in lengths:
            out.append("".join(letters[cursor : cursor + int(length)]))
            cursor += int(length)
        return out


class HybridWordModel(WordModel):
    """Popularity model for the body of the text, length model for the tail.

    ``popular_fraction`` of generated words come from the popularity table and
    the rest from the length-frequency model, matching the paper's hybrid that
    trades a little realism for much faster generation.
    """

    name = "hybrid-word-model"

    def __init__(
        self,
        popularity: WordPopularityModel | None = None,
        length_model: WordLengthFrequencyModel | None = None,
        popular_fraction: float = 0.8,
    ) -> None:
        if not 0.0 <= popular_fraction <= 1.0:
            raise ValueError("popular_fraction must lie in [0, 1]")
        self._popularity = popularity or WordPopularityModel()
        self._length_model = length_model or WordLengthFrequencyModel()
        self._popular_fraction = popular_fraction

    @property
    def popular_fraction(self) -> float:
        return self._popular_fraction

    def words(self, rng: np.random.Generator, count: int) -> list[str]:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        from_popular = rng.random(count) < self._popular_fraction
        popular_count = int(from_popular.sum())
        popular_words = iter(self._popularity.words(rng, popular_count))
        rare_words = iter(self._length_model.words(rng, count - popular_count))
        return [next(popular_words) if flag else next(rare_words) for flag in from_popular]


class SingleWordModel(WordModel):
    """Fills content with one repeated word — the Postmark anti-pattern."""

    name = "single-word"

    def __init__(self, word: str = "impressions") -> None:
        if not word:
            raise ValueError("word must be non-empty")
        self._word = word

    def words(self, rng: np.random.Generator, count: int) -> list[str]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self._word] * count
