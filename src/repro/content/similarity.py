"""Controlled content similarity across files (Section 3.6, future extension).

The paper motivates realistic content with content-addressable storage (CAS):
Postmark fills every file with identical bytes, so a CAS system deduplicates
everything and the evaluation becomes meaningless.  The paper notes that "an
example of such an extension is one that carefully controls the degree of
content similarity across files" — this module is that extension.

:class:`SimilarityProfile` specifies what fraction of each file's chunks
should be drawn from a shared pool (duplicated across files) versus generated
uniquely.  :class:`SimilarityContentGenerator` produces file contents honouring
the profile; the resulting corpus has a predictable deduplication ratio that
the CAS workload (:mod:`repro.workloads.cas`) can measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimilarityProfile", "SimilarityContentGenerator"]


@dataclass(frozen=True)
class SimilarityProfile:
    """How similar file contents should be across a generated corpus.

    Attributes:
        duplicate_fraction: target fraction of chunks (by count) drawn from
            the shared pool; 0.0 gives fully unique content, 1.0 makes every
            chunk a duplicate of some pool chunk.
        chunk_size: granularity of sharing, in bytes (4 KB default, matching
            a typical CAS block size).
        pool_chunks: number of distinct chunks in the shared pool; a smaller
            pool concentrates duplicates on fewer distinct blocks.
    """

    duplicate_fraction: float = 0.3
    chunk_size: int = 4096
    pool_chunks: int = 256

    def __post_init__(self) -> None:
        if not 0.0 <= self.duplicate_fraction <= 1.0:
            raise ValueError("duplicate_fraction must lie in [0, 1]")
        if self.chunk_size < 16:
            raise ValueError("chunk_size must be at least 16 bytes")
        if self.pool_chunks < 1:
            raise ValueError("pool_chunks must be at least 1")


class SimilarityContentGenerator:
    """Generates file contents with a controlled cross-file duplicate fraction.

    The shared chunk pool is derived deterministically from ``pool_seed``, so
    two images generated with the same profile and seed share bytes exactly —
    which is what makes CAS experiments reproducible.
    """

    def __init__(self, profile: SimilarityProfile | None = None, pool_seed: int = 0) -> None:
        self._profile = profile or SimilarityProfile()
        self._pool_seed = pool_seed
        pool_rng = np.random.default_rng((pool_seed, 0xC0FFEE))
        self._pool = [
            pool_rng.integers(0, 256, size=self._profile.chunk_size, dtype=np.uint8).tobytes()
            for _ in range(self._profile.pool_chunks)
        ]

    @property
    def profile(self) -> SimilarityProfile:
        return self._profile

    @property
    def pool_seed(self) -> int:
        return self._pool_seed

    def generate(self, size: int, rng: np.random.Generator) -> bytes:
        """Produce exactly ``size`` bytes honouring the similarity profile."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return b""
        chunk_size = self._profile.chunk_size
        pieces: list[bytes] = []
        remaining = size
        while remaining > 0:
            piece = min(chunk_size, remaining)
            if rng.random() < self._profile.duplicate_fraction:
                chunk = self._pool[int(rng.integers(len(self._pool)))][:piece]
            else:
                chunk = rng.integers(0, 256, size=piece, dtype=np.uint8).tobytes()
            pieces.append(chunk)
            remaining -= piece
        return b"".join(pieces)

    def expected_duplicate_fraction(self) -> float:
        """The configured duplicate fraction (for reporting)."""
        return self._profile.duplicate_fraction
