"""Monte Carlo sampling helpers.

The paper falls back to Monte Carlo methods "for cases where standard
probability distributions are infeasible": the generative directory model, the
multiplicative file-depth model and word generation all draw repeatedly from
discrete weight vectors that change as generation proceeds.  This module
provides the small, well-tested primitives those loops rely on:

* :func:`sample_discrete` — one draw from an (unnormalised) weight vector;
* :func:`sample_discrete_many` — vectorised draws from a fixed weight vector;
* :class:`DynamicWeightedSampler` — draws from a weight vector that supports
  incremental weight updates in O(log n) via a Fenwick (binary-indexed) tree,
  which keeps namespace generation close to linear in the number of
  directories.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["sample_discrete", "sample_discrete_many", "DynamicWeightedSampler"]


def sample_discrete(rng: np.random.Generator, weights: Sequence[float]) -> int:
    """Sample a single index with probability proportional to ``weights``."""
    w = np.asarray(weights, dtype=float)
    if w.size == 0:
        raise ValueError("weights must be non-empty")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return int(rng.choice(w.size, p=w / total))


def sample_discrete_many(
    rng: np.random.Generator, weights: Sequence[float], size: int
) -> np.ndarray:
    """Sample ``size`` independent indices from a fixed weight vector."""
    w = np.asarray(weights, dtype=float)
    if size < 0:
        raise ValueError("size must be non-negative")
    if w.size == 0:
        raise ValueError("weights must be non-empty")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return rng.choice(w.size, size=size, p=w / total)


class DynamicWeightedSampler:
    """Weighted sampling with O(log n) updates backed by a Fenwick tree.

    Items are integer indices ``0 .. capacity-1``; each carries a non-negative
    weight.  ``sample`` draws an index with probability proportional to its
    weight, ``update``/``add`` adjust weights incrementally.  The namespace
    generator uses this to re-weight a parent directory (C(d)+2 grows by one)
    after every insertion without rebuilding the whole probability vector.
    """

    def __init__(self, initial_weights: Sequence[float] | None = None, capacity: int = 0) -> None:
        if initial_weights is not None:
            weights = np.asarray(initial_weights, dtype=float)
            if np.any(weights < 0):
                raise ValueError("weights must be non-negative")
            capacity = max(capacity, weights.size)
        else:
            weights = np.empty(0, dtype=float)
        self._capacity = max(capacity, 1)
        self._size = weights.size
        self._weights = np.zeros(self._capacity, dtype=float)
        self._tree = np.zeros(self._capacity + 1, dtype=float)
        for index, weight in enumerate(weights):
            if weight:
                self._tree_update(index, float(weight))
            self._weights[index] = float(weight)

    def __len__(self) -> int:
        return self._size

    @property
    def total_weight(self) -> float:
        return self._prefix_sum(self._size)

    def weight(self, index: int) -> float:
        self._check_index(index)
        return float(self._weights[index])

    def add(self, weight: float) -> int:
        """Append a new item and return its index."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        if self._size == self._capacity:
            self._grow()
        index = self._size
        self._size += 1
        self._weights[index] = 0.0
        if weight:
            self.update(index, weight)
        return index

    def update(self, index: int, weight: float) -> None:
        """Set item ``index`` to ``weight``."""
        self._check_index(index)
        if weight < 0:
            raise ValueError("weights must be non-negative")
        delta = weight - self._weights[index]
        if delta:
            self._tree_update(index, delta)
            self._weights[index] = weight

    def increment(self, index: int, delta: float) -> None:
        """Add ``delta`` to item ``index`` (the common C(d)+2 += 1 case)."""
        self.update(index, self._weights[index] + delta)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one index with probability proportional to its weight."""
        total = self.total_weight
        if total <= 0:
            raise ValueError("cannot sample: total weight is zero")
        target = rng.random() * total
        return self._find_prefix(target)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range (size {self._size})")

    def _grow(self) -> None:
        new_capacity = max(self._capacity * 2, 16)
        weights = self._weights[: self._size].copy()
        self._capacity = new_capacity
        self._weights = np.zeros(new_capacity, dtype=float)
        self._tree = np.zeros(new_capacity + 1, dtype=float)
        self._weights[: weights.size] = weights
        for index, weight in enumerate(weights):
            if weight:
                self._tree_update(index, float(weight))

    # Fenwick tree internals (1-based under the hood).
    def _tree_update(self, index: int, delta: float) -> None:
        i = index + 1
        while i <= self._capacity:
            self._tree[i] += delta
            i += i & (-i)

    def _prefix_sum(self, count: int) -> float:
        total = 0.0
        i = count
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def _find_prefix(self, target: float) -> int:
        """Smallest index whose cumulative weight exceeds ``target``."""
        position = 0
        remaining = target
        bit = 1
        while bit * 2 <= self._capacity:
            bit *= 2
        while bit:
            next_position = position + bit
            if next_position <= self._capacity and self._tree[next_position] <= remaining:
                remaining -= self._tree[next_position]
                position = next_position
            bit //= 2
        index = min(position, self._size - 1)
        # Skip zero-weight items that can be landed on due to float round-off.
        while index < self._size - 1 and self._weights[index] == 0.0:
            index += 1
        return index
