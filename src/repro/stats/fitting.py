"""Automatic curve fitting of empirical data.

The paper allows a user to supply their own dataset instead of the built-in
defaults; Impressions then performs *automatic curve-fitting* to obtain
parameterised models.  This module provides maximum-likelihood (and, for the
mixture, expectation-maximisation) fitters for every model family used by the
framework, plus a model-selection helper (:func:`fit_best_model`) that fits
all candidate families and picks the one with the smallest K-S distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.distributions import (
    Distribution,
    HybridLognormalPareto,
    InversePolynomialDistribution,
    LognormalDistribution,
    MixtureOfLognormals,
    ParetoDistribution,
    ShiftedPoissonDistribution,
)
from repro.stats.goodness_of_fit import ks_test_one_sample

__all__ = [
    "FitResult",
    "fit_lognormal",
    "fit_pareto",
    "fit_hybrid_lognormal_pareto",
    "fit_mixture_of_lognormals",
    "fit_poisson",
    "fit_inverse_polynomial",
    "fit_best_model",
]


@dataclass(frozen=True)
class FitResult:
    """A fitted distribution together with its quality of fit."""

    distribution: Distribution
    ks_statistic: float
    log_likelihood: float

    def describe(self) -> str:
        return (
            f"{self.distribution.describe()} "
            f"(K-S D={self.ks_statistic:.4f}, logL={self.log_likelihood:.2f})"
        )


def fit_lognormal(values: Sequence[float]) -> LognormalDistribution:
    """Maximum-likelihood lognormal fit (mean/std of log values)."""
    data = _positive_array(values)
    logs = np.log(data)
    sigma = float(logs.std(ddof=0))
    if sigma <= 0:
        sigma = 1e-6
    return LognormalDistribution(mu=float(logs.mean()), sigma=sigma)


def fit_pareto(values: Sequence[float], xm: float | None = None) -> ParetoDistribution:
    """Maximum-likelihood Pareto fit.

    If ``xm`` is not given the smallest observation is used as the scale, which
    is the MLE for the location of a type-I Pareto.
    """
    data = _positive_array(values)
    scale = float(data.min()) if xm is None else float(xm)
    if scale <= 0:
        raise ValueError("Pareto scale must be positive")
    tail = data[data >= scale]
    if tail.size == 0:
        raise ValueError("no observations at or above the requested xm")
    k = tail.size / float(np.sum(np.log(tail / scale)))
    if not math.isfinite(k) or k <= 0:
        k = 1.0
    return ParetoDistribution(k=float(k), xm=scale)


def fit_hybrid_lognormal_pareto(
    values: Sequence[float],
    tail_threshold: float,
) -> HybridLognormalPareto:
    """Fit the hybrid body-plus-tail model used for file sizes by count.

    Observations below ``tail_threshold`` parameterise the lognormal body;
    observations at or above it parameterise the Pareto tail.  The body
    fraction α1 is the empirical fraction of observations in the body.  When
    the sample has no tail observations (common for small samples, since the
    default threshold is 512 MB) the paper's default tail parameters are kept
    by the caller; here we fall back to a vestigial tail with k=1.
    """
    data = _positive_array(values)
    if tail_threshold <= 0:
        raise ValueError("tail_threshold must be positive")
    body_values = data[data < tail_threshold]
    tail_values = data[data >= tail_threshold]
    if body_values.size == 0:
        raise ValueError("no observations below the tail threshold; not a hybrid sample")
    body = fit_lognormal(body_values)
    if tail_values.size >= 2:
        tail = fit_pareto(tail_values, xm=tail_threshold)
    else:
        tail = ParetoDistribution(k=1.0, xm=tail_threshold)
    body_fraction = body_values.size / data.size
    # Guard the degenerate all-body case: body_fraction must stay below 1 only
    # if a tail actually exists; HybridLognormalPareto accepts exactly 1.0 too,
    # but we keep a sliver of tail mass when tail observations were seen.
    if tail_values.size and body_fraction >= 1.0:
        body_fraction = 1.0 - 1.0 / data.size
    return HybridLognormalPareto(body=body, tail=tail, body_fraction=float(body_fraction))


def fit_mixture_of_lognormals(
    values: Sequence[float],
    n_components: int = 2,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    seed: int = 0,
) -> MixtureOfLognormals:
    """Fit a mixture of lognormals via expectation-maximisation in log space.

    A lognormal mixture over ``x`` is a Gaussian mixture over ``ln(x)``, so we
    run standard EM for a 1-D Gaussian mixture on the log-transformed data.
    Components are initialised by splitting the sorted data into
    ``n_components`` contiguous chunks, which is deterministic and works well
    for the strongly bimodal bytes-by-size curve.
    """
    if n_components < 1:
        raise ValueError("n_components must be at least 1")
    data = _positive_array(values)
    logs = np.sort(np.log(data))
    n = logs.size
    if n < n_components:
        raise ValueError("need at least as many observations as components")

    chunks = np.array_split(logs, n_components)
    means = np.array([chunk.mean() for chunk in chunks])
    stds = np.array([max(chunk.std(), 1e-3) for chunk in chunks])
    weights = np.array([chunk.size / n for chunk in chunks])

    previous_ll = -math.inf
    for _ in range(max_iterations):
        # E step: responsibilities.
        densities = np.empty((n, n_components))
        for j in range(n_components):
            densities[:, j] = weights[j] * _normal_pdf(logs, means[j], stds[j])
        totals = densities.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1e-300
        responsibilities = densities / totals
        log_likelihood = float(np.sum(np.log(totals)))

        # M step.
        effective = responsibilities.sum(axis=0)
        effective[effective == 0] = 1e-12
        weights = effective / n
        means = (responsibilities * logs[:, None]).sum(axis=0) / effective
        variances = (responsibilities * (logs[:, None] - means) ** 2).sum(axis=0) / effective
        stds = np.sqrt(np.maximum(variances, 1e-8))

        if abs(log_likelihood - previous_ll) < tolerance:
            break
        previous_ll = log_likelihood

    order = np.argsort(means)
    weights = np.clip(weights[order], 1e-9, None)
    weights = weights / weights.sum()
    return MixtureOfLognormals.from_parameters(
        weights=weights.tolist(),
        mus=means[order].tolist(),
        sigmas=stds[order].tolist(),
    )


def fit_poisson(values: Sequence[int], offset: int = 0) -> ShiftedPoissonDistribution:
    """Maximum-likelihood Poisson fit (the sample mean) with optional offset."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit an empty sample")
    if np.any(data < offset):
        raise ValueError("observations below the offset are impossible under the model")
    lam = float(data.mean()) - offset
    if lam <= 0:
        lam = 1e-6
    return ShiftedPoissonDistribution(lam=lam, offset=offset)


def fit_inverse_polynomial(
    counts_per_directory: Sequence[int],
    degree: float = 2.0,
    max_value: int | None = None,
) -> InversePolynomialDistribution:
    """Fit the offset of an inverse-polynomial directory-size model.

    The degree is typically fixed at 2 (as in Table 2); the offset is found by
    a golden-section search minimising the K-S distance between the model CDF
    and the empirical CDF of the observed per-directory file counts.
    """
    data = np.asarray(counts_per_directory, dtype=int)
    if data.size == 0:
        raise ValueError("cannot fit an empty sample")
    if np.any(data < 0):
        raise ValueError("directory file counts must be non-negative")
    if max_value is None:
        max_value = max(int(data.max()) * 2, 16)

    # Discrete data is full of ties, so compare CDFs on the distinct support
    # values rather than per-observation (the usual K-S construction would be
    # biased at tied points).
    support = np.unique(data)
    empirical_cdf = np.asarray([(data <= value).mean() for value in support])

    def distance(offset: float) -> float:
        model = InversePolynomialDistribution(degree=degree, offset=offset, max_value=max_value)
        return float(np.max(np.abs(model.cdf(support) - empirical_cdf)))

    low, high = 0.05, 50.0
    golden = (math.sqrt(5.0) - 1.0) / 2.0
    c = high - golden * (high - low)
    d = low + golden * (high - low)
    for _ in range(80):
        if distance(c) < distance(d):
            high = d
        else:
            low = c
        c = high - golden * (high - low)
        d = low + golden * (high - low)
    offset = (low + high) / 2.0
    return InversePolynomialDistribution(degree=degree, offset=float(offset), max_value=max_value)


def fit_best_model(
    values: Sequence[float],
    candidates: Sequence[str] = ("lognormal", "pareto", "mixture"),
    tail_threshold: float | None = None,
) -> FitResult:
    """Automatic curve fitting with model selection.

    Fits every candidate family and returns the one with the smallest one
    sample K-S statistic.  Candidate names: ``lognormal``, ``pareto``,
    ``mixture`` and ``hybrid`` (the last requires ``tail_threshold``).
    """
    data = _positive_array(values)
    results: list[FitResult] = []
    for candidate in candidates:
        try:
            if candidate == "lognormal":
                model: Distribution = fit_lognormal(data)
            elif candidate == "pareto":
                model = fit_pareto(data)
            elif candidate == "mixture":
                model = fit_mixture_of_lognormals(data)
            elif candidate == "hybrid":
                if tail_threshold is None:
                    raise ValueError("hybrid candidate requires tail_threshold")
                model = fit_hybrid_lognormal_pareto(data, tail_threshold=tail_threshold)
            else:
                raise ValueError(f"unknown candidate model family: {candidate}")
        except ValueError:
            continue
        ks = ks_test_one_sample(data, model.cdf)
        results.append(
            FitResult(
                distribution=model,
                ks_statistic=ks.statistic,
                log_likelihood=_log_likelihood(model, data),
            )
        )
    if not results:
        raise ValueError("no candidate model could be fitted to the data")
    return min(results, key=lambda result: result.ks_statistic)


def _log_likelihood(model: Distribution, data: np.ndarray) -> float:
    densities = np.maximum(model.pdf(data), 1e-300)
    return float(np.sum(np.log(densities)))


def _normal_pdf(x: np.ndarray, mean: float, std: float) -> np.ndarray:
    coefficient = 1.0 / (std * math.sqrt(2.0 * math.pi))
    return coefficient * np.exp(-((x - mean) ** 2) / (2.0 * std**2))


def _positive_array(values: Sequence[float]) -> np.ndarray:
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit an empty sample")
    data = data[data > 0]
    if data.size == 0:
        raise ValueError("need at least one strictly positive observation")
    return data
