"""Goodness-of-fit tests and error metrics.

The paper uses a battery of statistical checks to guarantee that generated
images match desired distributions:

* **Kolmogorov-Smirnov** (one- and two-sample), used to gate constraint
  resolution (Table 4) and interpolation accuracy (Table 5);
* **Chi-square** for binned data;
* **Anderson-Darling** for extra sensitivity in the tails;
* **MDCC** — Maximum Displacement of the Cumulative Curves — the accuracy
  metric of Table 3;
* **confidence intervals** and **standard error** of sample means.

All functions are self-contained so test code and benches can call them
without a fitted model object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "GoodnessOfFitResult",
    "ks_test_two_sample",
    "ks_test_one_sample",
    "chi_square_test",
    "anderson_darling_statistic",
    "mdcc",
    "mdcc_from_fractions",
    "confidence_interval",
    "standard_error",
]


@dataclass(frozen=True)
class GoodnessOfFitResult:
    """Outcome of a statistical test.

    Attributes:
        statistic: the test statistic (D for K-S, chi² for Chi-square, A² for
            Anderson-Darling).
        p_value: the p-value, or ``nan`` when the test only yields a critical
            value comparison.
        passed: whether the test passed at the requested significance level.
        significance: the significance level used for the pass/fail decision.
    """

    statistic: float
    p_value: float
    passed: bool
    significance: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "passed" if self.passed else "failed"
        return (
            f"statistic={self.statistic:.4f} p={self.p_value:.4f} "
            f"{verdict} at alpha={self.significance}"
        )


def ks_test_two_sample(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    significance: float = 0.05,
) -> GoodnessOfFitResult:
    """Two-sample Kolmogorov-Smirnov test.

    Returns the maximum distance ``D`` between the two empirical CDFs and the
    asymptotic p-value.  This is the test the paper applies after resolving
    multiple constraints (Table 4) and to interpolated curves (Table 5).
    """
    from scipy.stats import ks_2samp

    a = _as_clean_array(sample_a, "sample_a")
    b = _as_clean_array(sample_b, "sample_b")
    result = ks_2samp(a, b, method="asymp")
    return GoodnessOfFitResult(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        passed=bool(result.pvalue >= significance),
        significance=significance,
    )


def ks_test_one_sample(
    sample: Sequence[float],
    cdf: Callable[[np.ndarray], np.ndarray],
    significance: float = 0.05,
) -> GoodnessOfFitResult:
    """One-sample K-S test of ``sample`` against a theoretical CDF callable."""
    from scipy.stats import kstest

    data = _as_clean_array(sample, "sample")
    result = kstest(data, lambda x: np.asarray(cdf(np.asarray(x)), dtype=float))
    return GoodnessOfFitResult(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        passed=bool(result.pvalue >= significance),
        significance=significance,
    )


def chi_square_test(
    observed_counts: Sequence[float],
    expected_counts: Sequence[float],
    significance: float = 0.05,
    ddof: int = 0,
    min_expected: float = 1e-9,
) -> GoodnessOfFitResult:
    """Pearson chi-square test on binned counts.

    Bins whose expected count is below ``min_expected`` are merged into their
    neighbour to keep the statistic well defined; observed and expected totals
    are rescaled to match, as required by the test.
    """
    observed = np.asarray(observed_counts, dtype=float)
    expected = np.asarray(expected_counts, dtype=float)
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must have the same shape")
    if observed.size == 0:
        raise ValueError("chi-square test needs at least one bin")
    if np.any(expected < 0) or np.any(observed < 0):
        raise ValueError("counts must be non-negative")

    keep = expected > min_expected
    if not np.any(keep):
        raise ValueError("all expected counts are (near) zero")
    observed = observed[keep]
    expected = expected[keep]
    # Rescale expected to the observed total so the statistic is comparable.
    if expected.sum() > 0:
        expected = expected * (observed.sum() / expected.sum())

    from scipy.stats import chi2

    statistic = float(np.sum((observed - expected) ** 2 / np.maximum(expected, min_expected)))
    dof = max(observed.size - 1 - ddof, 1)
    p_value = float(chi2.sf(statistic, dof))
    return GoodnessOfFitResult(
        statistic=statistic,
        p_value=p_value,
        passed=bool(p_value >= significance),
        significance=significance,
    )


def anderson_darling_statistic(
    sample: Sequence[float],
    cdf: Callable[[np.ndarray], np.ndarray],
    significance: float = 0.05,
    critical_value: float = 2.492,
) -> GoodnessOfFitResult:
    """Anderson-Darling A² statistic against an arbitrary continuous CDF.

    The default critical value 2.492 corresponds to the 5% significance level
    for a fully specified distribution (case 0).  The paper lists A-D among
    the built-in tests; we implement the statistic directly because scipy only
    ships critical values for a few named families.
    """
    data = np.sort(_as_clean_array(sample, "sample"))
    n = data.size
    if n < 2:
        raise ValueError("Anderson-Darling needs at least two observations")
    u = np.clip(np.asarray(cdf(data), dtype=float), 1e-12, 1.0 - 1e-12)
    indices = np.arange(1, n + 1)
    a_squared = -n - np.mean((2 * indices - 1) * (np.log(u) + np.log(1.0 - u[::-1])))
    return GoodnessOfFitResult(
        statistic=float(a_squared),
        p_value=float("nan"),
        passed=bool(a_squared <= critical_value),
        significance=significance,
    )


def mdcc(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Maximum Displacement of the Cumulative Curves between two raw samples.

    This is numerically the same as the two-sample K-S ``D`` statistic, but the
    paper reports it as a standalone accuracy metric (Table 3), so we expose
    it separately and also accept pre-binned fractions via
    :func:`mdcc_from_fractions`.
    """
    a = np.sort(_as_clean_array(sample_a, "sample_a"))
    b = np.sort(_as_clean_array(sample_b, "sample_b"))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def mdcc_from_fractions(fractions_a: Sequence[float], fractions_b: Sequence[float]) -> float:
    """MDCC between two binned distributions expressed as per-bin fractions.

    The inputs are aligned per-bin fractions (they need not sum exactly to 1;
    each is normalised first).  Used for the depth and extension histograms in
    Table 3 where the underlying data is categorical.
    """
    a = np.asarray(fractions_a, dtype=float)
    b = np.asarray(fractions_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("fraction vectors must have the same shape")
    if a.size == 0:
        raise ValueError("fraction vectors must be non-empty")
    if a.sum() > 0:
        a = a / a.sum()
    if b.sum() > 0:
        b = b / b.sum()
    return float(np.max(np.abs(np.cumsum(a) - np.cumsum(b))))


def confidence_interval(
    sample: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Two-sided confidence interval for the sample mean (t-distribution)."""
    data = _as_clean_array(sample, "sample")
    if data.size < 2:
        raise ValueError("confidence interval needs at least two observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    from scipy.stats import t

    mean = float(data.mean())
    sem = standard_error(data)
    half_width = float(t.ppf(0.5 + confidence / 2.0, data.size - 1)) * sem
    return (mean - half_width, mean + half_width)


def standard_error(sample: Sequence[float]) -> float:
    """Standard error of the sample mean."""
    data = _as_clean_array(sample, "sample")
    if data.size < 2:
        return 0.0
    return float(data.std(ddof=1) / math.sqrt(data.size))


def _as_clean_array(values: Sequence[float], name: str) -> np.ndarray:
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(~np.isfinite(data)):
        raise ValueError(f"{name} contains non-finite values")
    return data
