"""Statistical substrate for Impressions.

This package contains the statistical machinery the paper relies on:

* :mod:`repro.stats.distributions` — parameterised probability distributions
  (lognormal, Pareto, the hybrid lognormal-body/Pareto-tail file-size model,
  mixtures of lognormals, shifted Poisson, inverse-polynomial, categorical and
  empirical distributions).
* :mod:`repro.stats.fitting` — automatic curve fitting of empirical data onto
  those models, including model selection.
* :mod:`repro.stats.goodness_of_fit` — Kolmogorov-Smirnov, Chi-square and
  Anderson-Darling tests, MDCC, confidence intervals and standard errors.
* :mod:`repro.stats.histograms` — power-of-two binning used throughout the
  paper's figures.
* :mod:`repro.stats.interpolation` — piecewise interpolation and extrapolation
  of binned distributions across file-system sizes.
* :mod:`repro.stats.montecarlo` — inverse-CDF and rejection sampling helpers.
"""

from repro.stats.distributions import (
    CategoricalDistribution,
    Distribution,
    EmpiricalDistribution,
    HybridLognormalPareto,
    InversePolynomialDistribution,
    LognormalDistribution,
    MixtureOfLognormals,
    ParetoDistribution,
    ShiftedPoissonDistribution,
)
from repro.stats.goodness_of_fit import (
    GoodnessOfFitResult,
    anderson_darling_statistic,
    chi_square_test,
    confidence_interval,
    ks_test_one_sample,
    ks_test_two_sample,
    mdcc,
    standard_error,
)
from repro.stats.histograms import PowerOfTwoHistogram, power_of_two_bins
from repro.stats.interpolation import BinnedDistribution, PiecewiseInterpolator
from repro.stats.size_models import DowneyMultiplicativeModel, RecursiveForestFileModel

__all__ = [
    "Distribution",
    "LognormalDistribution",
    "ParetoDistribution",
    "HybridLognormalPareto",
    "MixtureOfLognormals",
    "ShiftedPoissonDistribution",
    "InversePolynomialDistribution",
    "CategoricalDistribution",
    "EmpiricalDistribution",
    "GoodnessOfFitResult",
    "ks_test_one_sample",
    "ks_test_two_sample",
    "chi_square_test",
    "anderson_darling_statistic",
    "mdcc",
    "confidence_interval",
    "standard_error",
    "PowerOfTwoHistogram",
    "power_of_two_bins",
    "BinnedDistribution",
    "PiecewiseInterpolator",
    "DowneyMultiplicativeModel",
    "RecursiveForestFileModel",
]
