"""Power-of-two histograms.

Nearly every figure in the paper buckets file sizes into power-of-two bins
with a special abscissa for zero (Figure 2(c)/(d), Figure 3(b)/(c), Figures 4
and 5).  :class:`PowerOfTwoHistogram` reproduces that binning and offers the
fraction-of-count and fraction-of-bytes views the figures plot, plus the
cumulative curves the MDCC metric compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["power_of_two_bins", "PowerOfTwoHistogram", "depth_histogram"]


def power_of_two_bins(max_value: float, include_zero: bool = True) -> np.ndarray:
    """Return bin edges ``[0, 1, 2, 4, 8, ...]`` covering ``max_value``.

    The paper uses a dedicated zero bin ("a special abscissa for the zero
    value"); ``include_zero=False`` drops it and starts at 1.
    """
    if max_value < 1:
        max_value = 1
    top = int(np.ceil(np.log2(max_value))) + 1
    edges = [float(2**exponent) for exponent in range(0, top + 1)]
    if include_zero:
        return np.asarray([0.0] + edges)
    return np.asarray(edges)


@dataclass
class PowerOfTwoHistogram:
    """Histogram of values over power-of-two bins.

    Attributes:
        edges: bin edges, ``edges[i] <= x < edges[i + 1]`` for bin ``i``.
        counts: number of values per bin.
        byte_totals: sum of values per bin (for "by containing bytes" views).
    """

    edges: np.ndarray
    counts: np.ndarray
    byte_totals: np.ndarray

    @classmethod
    def from_values(
        cls,
        values: Sequence[float] | np.ndarray,
        max_value: float | None = None,
        include_zero: bool = True,
    ) -> "PowerOfTwoHistogram":
        """Build a histogram from raw values (e.g. file sizes in bytes)."""
        data = np.asarray(values, dtype=float)
        if data.size and np.any(data < 0):
            raise ValueError("histogram values must be non-negative")
        if max_value is None:
            max_value = float(data.max()) if data.size else 1.0
        edges = power_of_two_bins(max_value, include_zero=include_zero)
        counts = np.zeros(len(edges) - 1, dtype=float)
        byte_totals = np.zeros(len(edges) - 1, dtype=float)
        if data.size:
            indices = np.clip(np.searchsorted(edges, data, side="right") - 1, 0, len(edges) - 2)
            np.add.at(counts, indices, 1.0)
            np.add.at(byte_totals, indices, data)
        return cls(edges=edges, counts=counts, byte_totals=byte_totals)

    @property
    def num_bins(self) -> int:
        return len(self.counts)

    @property
    def total_count(self) -> float:
        return float(self.counts.sum())

    @property
    def total_bytes(self) -> float:
        return float(self.byte_totals.sum())

    def count_fractions(self) -> np.ndarray:
        """Fraction of values per bin — the '% of files' axis in Figure 2(c)."""
        total = self.total_count
        if total == 0:
            return np.zeros_like(self.counts)
        return self.counts / total

    def byte_fractions(self) -> np.ndarray:
        """Fraction of bytes per bin — the '% of bytes' axis in Figure 2(d)."""
        total = self.total_bytes
        if total == 0:
            return np.zeros_like(self.byte_totals)
        return self.byte_totals / total

    def cumulative_count_fractions(self) -> np.ndarray:
        return np.cumsum(self.count_fractions())

    def cumulative_byte_fractions(self) -> np.ndarray:
        return np.cumsum(self.byte_fractions())

    def bin_labels(self) -> list[str]:
        """Human-readable labels for each bin (``0``, ``[1,2)``, ``[2,4)``, …)."""
        labels = []
        for low, high in zip(self.edges[:-1], self.edges[1:]):
            if low == 0.0 and high == 1.0:
                labels.append("0")
            else:
                labels.append(f"[{_format_bytes(low)},{_format_bytes(high)})")
        return labels

    def aligned_with(self, other: "PowerOfTwoHistogram") -> tuple["PowerOfTwoHistogram", "PowerOfTwoHistogram"]:
        """Return copies of self/other padded to a common set of bin edges."""
        if len(self.edges) >= len(other.edges):
            long, short = self, other
            swapped = False
        else:
            long, short = other, self
            swapped = True
        pad = len(long.counts) - len(short.counts)
        padded = PowerOfTwoHistogram(
            edges=long.edges.copy(),
            counts=np.concatenate([short.counts, np.zeros(pad)]),
            byte_totals=np.concatenate([short.byte_totals, np.zeros(pad)]),
        )
        if swapped:
            return padded, long
        return long, padded


def _format_bytes(value: float) -> str:
    """Render a byte count compactly (8, 2K, 512K, 512M, 64G …)."""
    if value < 1024:
        return f"{int(value)}"
    for suffix, scale in (("K", 1024.0), ("M", 1024.0**2), ("G", 1024.0**3), ("T", 1024.0**4)):
        scaled = value / scale
        if scaled < 1024:
            if scaled == int(scaled):
                return f"{int(scaled)}{suffix}"
            return f"{scaled:.1f}{suffix}"
    return f"{value:.3g}"


def depth_histogram(depths: Iterable[int], max_depth: int | None = None) -> np.ndarray:
    """Histogram of namespace depths with bin size 1 (Figure 2(a)/(f))."""
    data = np.asarray(list(depths), dtype=int)
    if data.size and np.any(data < 0):
        raise ValueError("depths must be non-negative")
    if max_depth is None:
        max_depth = int(data.max()) if data.size else 0
    counts = np.zeros(max_depth + 1, dtype=float)
    if data.size:
        clipped = np.clip(data, 0, max_depth)
        np.add.at(counts, clipped, 1.0)
    return counts
