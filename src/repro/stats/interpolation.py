"""Piecewise interpolation and extrapolation of binned distributions.

Section 3.5 of the paper: Impressions can generate *new* distribution curves
for file-system sizes that are absent from the dataset (e.g. a 75 GB curve
interpolated from 10/50/100 GB curves, or a 125 GB curve extrapolated beyond
them).  Each power-of-two bin of the curve is treated as an independent
segment; the bin's fraction is interpolated (linearly, or by any scipy
``interp1d`` kind) against the file-system size, and the per-bin results are
re-assembled and re-normalised into the composite curve (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.stats.histograms import PowerOfTwoHistogram

__all__ = ["BinnedDistribution", "PiecewiseInterpolator"]


@dataclass(frozen=True)
class BinnedDistribution:
    """A distribution expressed as per-bin fractions over shared bin edges."""

    edges: np.ndarray
    fractions: np.ndarray

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.fractions) + 1:
            raise ValueError("edges must have exactly one more element than fractions")
        if np.any(np.asarray(self.fractions) < -1e-12):
            raise ValueError("fractions must be non-negative")

    @classmethod
    def from_histogram(cls, histogram: PowerOfTwoHistogram, by_bytes: bool = False) -> "BinnedDistribution":
        fractions = histogram.byte_fractions() if by_bytes else histogram.count_fractions()
        return cls(edges=histogram.edges.copy(), fractions=np.asarray(fractions, dtype=float))

    @classmethod
    def from_values(
        cls,
        values: Sequence[float],
        max_value: float | None = None,
        by_bytes: bool = False,
    ) -> "BinnedDistribution":
        histogram = PowerOfTwoHistogram.from_values(values, max_value=max_value)
        return cls.from_histogram(histogram, by_bytes=by_bytes)

    @property
    def num_bins(self) -> int:
        return len(self.fractions)

    def normalised(self) -> "BinnedDistribution":
        total = float(np.sum(self.fractions))
        if total <= 0:
            return self
        return BinnedDistribution(edges=self.edges, fractions=self.fractions / total)

    def cumulative(self) -> np.ndarray:
        return np.cumsum(self.normalised().fractions)

    def resized(self, num_bins: int) -> "BinnedDistribution":
        """Pad (with zero bins) or truncate to ``num_bins`` bins."""
        fractions = np.asarray(self.fractions, dtype=float)
        if num_bins == self.num_bins:
            return self
        if num_bins < self.num_bins:
            fractions = fractions[:num_bins]
            edges = self.edges[: num_bins + 1]
            return BinnedDistribution(edges=edges, fractions=fractions)
        pad = num_bins - self.num_bins
        last_edge = self.edges[-1]
        extra_edges = [last_edge * 2 ** (i + 1) for i in range(pad)]
        edges = np.concatenate([self.edges, np.asarray(extra_edges)])
        fractions = np.concatenate([fractions, np.zeros(pad)])
        return BinnedDistribution(edges=edges, fractions=fractions)


class PiecewiseInterpolator:
    """Interpolate/extrapolate binned distributions across file-system sizes.

    Parameters:
        curves: mapping from file-system size (any monotone scalar key, e.g.
            gigabytes) to the :class:`BinnedDistribution` observed at that
            size.
        kind: interpolation kind per segment (``linear`` by default; any kind
            accepted by :func:`scipy.interpolate.interp1d` with enough points).
    """

    def __init__(self, curves: Mapping[float, BinnedDistribution], kind: str = "linear") -> None:
        if len(curves) < 2:
            raise ValueError("piecewise interpolation needs at least two known curves")
        self._sizes = np.asarray(sorted(curves.keys()), dtype=float)
        max_bins = max(curve.num_bins for curve in curves.values())
        self._curves = [curves[size].resized(max_bins).normalised() for size in self._sizes]
        self._edges = self._curves[-1].edges
        self._kind = kind
        # matrix: one row per known FS size, one column per power-of-two bin
        self._matrix = np.vstack([curve.fractions for curve in self._curves])

    @property
    def known_sizes(self) -> np.ndarray:
        return self._sizes.copy()

    @property
    def num_bins(self) -> int:
        return self._matrix.shape[1]

    def segment_values(self, bin_index: int) -> np.ndarray:
        """The data points of an individual segment (one bin across all sizes)."""
        if not 0 <= bin_index < self.num_bins:
            raise IndexError(f"bin index {bin_index} out of range")
        return self._matrix[:, bin_index].copy()

    def interpolate(self, target_size: float) -> BinnedDistribution:
        """Generate the curve for ``target_size``.

        Sizes inside the known range are interpolated; sizes outside it are
        linearly extrapolated from the two nearest known curves, exactly as in
        the paper's 125 GB extrapolation example.
        """
        if target_size <= 0:
            raise ValueError("target file-system size must be positive")
        fractions = np.empty(self.num_bins, dtype=float)
        for bin_index in range(self.num_bins):
            fractions[bin_index] = self._interpolate_segment(bin_index, target_size)
        fractions = np.clip(fractions, 0.0, None)
        total = fractions.sum()
        if total <= 0:
            raise ValueError("interpolated curve collapsed to zero mass")
        return BinnedDistribution(edges=self._edges.copy(), fractions=fractions / total)

    def _interpolate_segment(self, bin_index: int, target_size: float) -> float:
        from scipy.interpolate import interp1d

        values = self._matrix[:, bin_index]
        if target_size < self._sizes[0]:
            return _linear_extrapolate(self._sizes[0], values[0], self._sizes[1], values[1], target_size)
        if target_size > self._sizes[-1]:
            return _linear_extrapolate(
                self._sizes[-2], values[-2], self._sizes[-1], values[-1], target_size
            )
        if self._kind != "linear" and self._sizes.size < 4:
            kind = "linear"
        else:
            kind = self._kind
        interpolator = interp1d(self._sizes, values, kind=kind)
        return float(interpolator(target_size))

    def mdcc_against(self, target_size: float, reference: BinnedDistribution) -> float:
        """Convenience: MDCC of the generated curve against a reference curve."""
        generated = self.interpolate(target_size)
        reference = reference.resized(generated.num_bins).normalised()
        return float(np.max(np.abs(generated.cumulative() - reference.cumulative())))


def _linear_extrapolate(x0: float, y0: float, x1: float, y1: float, x: float) -> float:
    if x1 == x0:
        return y0
    slope = (y1 - y0) / (x1 - x0)
    return y0 + slope * (x - x0)
