"""Alternative generative file-size models (related work, Section 5).

The paper points at two generative explanations of observed file-size
distributions and notes that "in future, Impressions can be enhanced by
incorporating more such models":

* **Downey's Multiplicative File Size model** — new files are created by
  copying/editing/filtering existing files, so a new size is an old size
  multiplied by an independent factor.  Iterated from a single seed size this
  produces a lognormal-like body.
* **Mitzenmacher's Recursive Forest File model** — files are either brand new
  (size drawn from a base lognormal) or derived from an existing file by a
  multiplicative factor; the mixture of "generations" yields a lognormal body
  with a Pareto-like tail (a double-Pareto shape).

Both are implemented as :class:`~repro.stats.distributions.Distribution`
subclasses: sampling runs the generative simulation, so they plug directly
into :class:`~repro.core.config.ImpressionsConfig.file_size_model` as drop-in
replacements for the default hybrid model, and the ablation benchmark can
compare all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.stats.distributions import Distribution, LognormalDistribution

__all__ = ["DowneyMultiplicativeModel", "RecursiveForestFileModel"]


@dataclass(frozen=True)
class DowneyMultiplicativeModel(Distribution):
    """Downey's multiplicative file-size model.

    Starting from ``initial_size``, each simulated file-creation step picks an
    existing file uniformly at random as a template and multiplies its size by
    ``exp(N(log_factor_mu, log_factor_sigma))``.  Sampling ``n`` values runs
    the process until ``warmup + n`` files exist and returns the last ``n``
    sizes, so consecutive samples reflect a population that has already mixed.

    The stationary behaviour is lognormal-like: after ``g`` generations a size
    is the product of ``g`` independent factors.
    """

    initial_size: float = 4096.0
    log_factor_mu: float = 0.0
    log_factor_sigma: float = 1.0
    warmup: int = 2_000
    name: str = field(default="downey-multiplicative", init=False)

    def __post_init__(self) -> None:
        if self.initial_size <= 0:
            raise ValueError("initial_size must be positive")
        if self.log_factor_sigma <= 0:
            raise ValueError("log_factor_sigma must be positive")
        if self.warmup < 1:
            raise ValueError("warmup must be at least 1")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        self._validate_size(size)
        if size == 0:
            return np.empty(0, dtype=float)
        total = self.warmup + size
        log_sizes = np.empty(total, dtype=float)
        log_sizes[0] = np.log(self.initial_size)
        factors = rng.normal(self.log_factor_mu, self.log_factor_sigma, size=total - 1)
        templates = (rng.random(total - 1) * np.arange(1, total)).astype(int)
        for index in range(1, total):
            log_sizes[index] = log_sizes[templates[index - 1]] + factors[index - 1]
        return np.exp(log_sizes[-size:])

    def pdf(self, x: np.ndarray) -> np.ndarray:
        # The marginal after many generations is approximately lognormal with
        # variance growing with the mean generation depth; use the effective
        # lognormal for density queries.
        return self._effective_lognormal().pdf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return self._effective_lognormal().cdf(x)

    def mean(self) -> float:
        return self._effective_lognormal().mean()

    def params(self) -> Mapping[str, float]:
        return {
            "initial_size": self.initial_size,
            "log_factor_mu": self.log_factor_mu,
            "log_factor_sigma": self.log_factor_sigma,
            "warmup": float(self.warmup),
        }

    def _effective_lognormal(self) -> LognormalDistribution:
        # Mean generation depth of a random-template process over n files is
        # ~ln(n); use the warmup horizon as the population size.
        generations = max(np.log(self.warmup), 1.0)
        mu = float(np.log(self.initial_size) + generations * self.log_factor_mu)
        sigma = float(np.sqrt(generations) * self.log_factor_sigma)
        return LognormalDistribution(mu=mu, sigma=max(sigma, 1e-6))


@dataclass(frozen=True)
class RecursiveForestFileModel(Distribution):
    """Mitzenmacher's Recursive Forest File model.

    With probability ``new_file_probability`` a file is a *root*: its size is
    drawn from the base lognormal.  Otherwise it *derives* from an existing
    file chosen uniformly at random, multiplying that file's size by a
    lognormal factor.  Depending on the parameters the resulting distribution
    has a lognormal body and a power-law (double-Pareto) tail — the very shape
    the paper's hybrid model approximates directly.
    """

    base: LognormalDistribution = field(
        default_factory=lambda: LognormalDistribution(mu=9.48, sigma=1.8)
    )
    factor_mu: float = 0.3
    factor_sigma: float = 1.1
    new_file_probability: float = 0.35
    warmup: int = 2_000
    name: str = field(default="recursive-forest-file", init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.new_file_probability <= 1.0:
            raise ValueError("new_file_probability must lie in (0, 1]")
        if self.factor_sigma <= 0:
            raise ValueError("factor_sigma must be positive")
        if self.warmup < 1:
            raise ValueError("warmup must be at least 1")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        self._validate_size(size)
        if size == 0:
            return np.empty(0, dtype=float)
        total = self.warmup + size
        log_sizes = np.empty(total, dtype=float)
        log_sizes[0] = np.log(self.base.sample(rng, 1)[0])
        is_new = rng.random(total - 1) < self.new_file_probability
        new_sizes = np.log(self.base.sample(rng, int(is_new.sum()) + 1))
        factors = rng.normal(self.factor_mu, self.factor_sigma, size=total - 1)
        templates = (rng.random(total - 1) * np.arange(1, total)).astype(int)
        new_cursor = 0
        for index in range(1, total):
            if is_new[index - 1]:
                log_sizes[index] = new_sizes[new_cursor]
                new_cursor += 1
            else:
                log_sizes[index] = log_sizes[templates[index - 1]] + factors[index - 1]
        return np.exp(log_sizes[-size:])

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self._effective_lognormal().pdf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return self._effective_lognormal().cdf(x)

    def mean(self) -> float:
        return self._effective_lognormal().mean()

    def params(self) -> Mapping[str, float]:
        return {
            "base_mu": self.base.mu,
            "base_sigma": self.base.sigma,
            "factor_mu": self.factor_mu,
            "factor_sigma": self.factor_sigma,
            "new_file_probability": self.new_file_probability,
            "warmup": float(self.warmup),
        }

    def _effective_lognormal(self) -> LognormalDistribution:
        # The expected derivation depth of a file is (1 - p) / p; each level
        # adds an independent factor on top of a base draw.
        depth = (1.0 - self.new_file_probability) / self.new_file_probability
        mu = float(self.base.mu + depth * self.factor_mu)
        sigma = float(np.sqrt(self.base.sigma**2 + depth * self.factor_sigma**2))
        return LognormalDistribution(mu=mu, sigma=max(sigma, 1e-6))
