"""Parameterised probability distributions used by Impressions.

The paper (Table 2) relies on a small zoo of distributions:

* a hybrid **lognormal body + Pareto tail** for file sizes by count,
* a **mixture of two lognormals** for file sizes weighted by contained bytes,
* a **Poisson** model for file count by namespace depth,
* an **inverse-polynomial** model for directory size in files,
* **percentile / categorical** models for extension popularity,
* plain **empirical** distributions for everything read directly from a
  dataset.

Every distribution exposes the same small interface (:class:`Distribution`):
``sample``, ``pdf``, ``cdf``, ``mean`` and a ``params()`` dictionary used for
reproducibility reporting.  Sampling always goes through a caller-supplied
:class:`numpy.random.Generator` so that images are exactly reproducible from a
seed.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "Distribution",
    "LognormalDistribution",
    "ParetoDistribution",
    "HybridLognormalPareto",
    "MixtureOfLognormals",
    "ShiftedPoissonDistribution",
    "InversePolynomialDistribution",
    "CategoricalDistribution",
    "EmpiricalDistribution",
]


class Distribution(abc.ABC):
    """Common interface for all parameterised distributions.

    Subclasses are immutable value objects: all parameters are fixed at
    construction time and reported through :meth:`params` so a generated image
    can be reproduced exactly.
    """

    #: short machine-readable name used in reproducibility reports
    name: str = "distribution"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` independent samples using ``rng``."""

    @abc.abstractmethod
    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density (or mass) at ``x``."""

    @abc.abstractmethod
    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Cumulative distribution function at ``x``."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytical mean of the distribution."""

    @abc.abstractmethod
    def params(self) -> Mapping[str, float]:
        """Parameters as a plain dictionary for reproducibility reports."""

    def describe(self) -> str:
        """Human-readable one line description."""
        rendered = ", ".join(f"{key}={value:.6g}" for key, value in self.params().items())
        return f"{self.name}({rendered})"

    def _validate_size(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"sample size must be non-negative, got {size}")


@dataclass(frozen=True)
class LognormalDistribution(Distribution):
    """Lognormal distribution parameterised by the log-space mean and sigma.

    ``mu`` and ``sigma`` are the mean and standard deviation of ``ln(x)``, as
    in the paper (e.g. file-size body µ=9.48, σ=2.46).
    """

    mu: float
    sigma: float
    name: str = field(default="lognormal", init=False)

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        self._validate_size(size)
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        positive = x > 0
        xs = x[positive]
        coeff = 1.0 / (xs * self.sigma * math.sqrt(2.0 * math.pi))
        out[positive] = coeff * np.exp(-((np.log(xs) - self.mu) ** 2) / (2.0 * self.sigma**2))
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        from scipy.special import ndtr

        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        positive = x > 0
        out[positive] = ndtr((np.log(x[positive]) - self.mu) / self.sigma)
        return out

    def quantile(self, q: np.ndarray) -> np.ndarray:
        """Inverse CDF; useful for stratified sampling and tests."""
        from scipy.special import ndtri

        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        return np.exp(self.mu + self.sigma * ndtri(q))

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def median(self) -> float:
        return math.exp(self.mu)

    def params(self) -> Mapping[str, float]:
        return {"mu": self.mu, "sigma": self.sigma}


@dataclass(frozen=True)
class ParetoDistribution(Distribution):
    """Pareto (type I) distribution with shape ``k`` and scale ``xm``.

    Used for the heavy tail of file sizes beyond 512 MB (k=0.91, Xm=512 MB in
    Table 2).
    """

    k: float
    xm: float
    name: str = field(default="pareto", init=False)

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"shape k must be positive, got {self.k}")
        if self.xm <= 0:
            raise ValueError(f"scale xm must be positive, got {self.xm}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        self._validate_size(size)
        # numpy's pareto() samples (X/xm - 1); rescale back to type I support.
        return self.xm * (1.0 + rng.pareto(self.k, size=size))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        support = x >= self.xm
        out[support] = self.k * self.xm**self.k / x[support] ** (self.k + 1)
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        support = x >= self.xm
        out[support] = 1.0 - (self.xm / x[support]) ** self.k
        return out

    def mean(self) -> float:
        if self.k <= 1:
            return math.inf
        return self.k * self.xm / (self.k - 1)

    def params(self) -> Mapping[str, float]:
        return {"k": self.k, "xm": self.xm}


@dataclass(frozen=True)
class HybridLognormalPareto(Distribution):
    """Hybrid file-size model: lognormal body with a Pareto tail.

    With probability ``body_fraction`` (α1 in the paper, default 0.99994) a
    sample is drawn from the lognormal body truncated to values below the tail
    threshold ``tail_xm``; otherwise it is drawn from the Pareto tail starting
    at ``tail_xm``.  This is the model behind Figure 2(c)/(d): the tail
    accounts for the few very large files that dominate the bytes-by-size
    distribution.
    """

    body: LognormalDistribution
    tail: ParetoDistribution
    body_fraction: float
    name: str = field(default="hybrid-lognormal-pareto", init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.body_fraction <= 1.0:
            raise ValueError(
                f"body_fraction must lie in (0, 1], got {self.body_fraction}"
            )

    @property
    def tail_fraction(self) -> float:
        return 1.0 - self.body_fraction

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        self._validate_size(size)
        if size == 0:
            return np.empty(0, dtype=float)
        from_tail = rng.random(size) >= self.body_fraction
        out = np.empty(size, dtype=float)
        n_tail = int(from_tail.sum())
        n_body = size - n_tail
        if n_body:
            out[~from_tail] = self._sample_truncated_body(rng, n_body)
        if n_tail:
            out[from_tail] = self.tail.sample(rng, n_tail)
        return out

    def _sample_truncated_body(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample the lognormal body truncated to ``[0, tail_xm)``.

        The truncation point is far in the tail of the body (512 MB against a
        median of ~13 KB) so simple rejection sampling converges immediately;
        a CDF-inversion fallback guards pathological parameterisations.
        """
        limit = self.tail.xm
        body_cdf_at_limit = float(self.body.cdf(np.asarray([limit]))[0])
        if body_cdf_at_limit <= 0.0:
            # The body lies entirely above the tail threshold; inversion only.
            return np.full(size, limit)
        quantiles = rng.random(size) * body_cdf_at_limit
        return self.body.quantile(quantiles)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        limit = self.tail.xm
        body_mass = float(self.body.cdf(np.asarray([limit]))[0])
        body_mass = max(body_mass, 1e-300)
        below = x < limit
        out = np.empty_like(x)
        out[below] = self.body_fraction * self.body.pdf(x[below]) / body_mass
        out[~below] = self.tail_fraction * self.tail.pdf(x[~below])
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        limit = self.tail.xm
        body_mass = float(self.body.cdf(np.asarray([limit]))[0])
        body_mass = max(body_mass, 1e-300)
        below = x < limit
        out = np.empty_like(x)
        out[below] = self.body_fraction * self.body.cdf(x[below]) / body_mass
        out[~below] = self.body_fraction + self.tail_fraction * self.tail.cdf(x[~below])
        return np.clip(out, 0.0, 1.0)

    def mean(self) -> float:
        # Mean of the truncated body via numerical integration over quantiles.
        limit = self.tail.xm
        body_mass = float(self.body.cdf(np.asarray([limit]))[0])
        if body_mass <= 0:
            body_mean = limit
        else:
            qs = np.linspace(1e-9, body_mass - 1e-12, 4096)
            body_mean = float(np.mean(self.body.quantile(qs)))
        tail_mean = self.tail.mean()
        if math.isinf(tail_mean):
            return math.inf
        return self.body_fraction * body_mean + self.tail_fraction * tail_mean

    def params(self) -> Mapping[str, float]:
        return {
            "body_fraction": self.body_fraction,
            "mu": self.body.mu,
            "sigma": self.body.sigma,
            "k": self.tail.k,
            "xm": self.tail.xm,
        }


@dataclass(frozen=True)
class MixtureOfLognormals(Distribution):
    """Weighted mixture of lognormal components.

    The paper models *file size by containing bytes* with a two-component
    mixture (α1=0.76, µ1=14.83, σ1=2.35; α2=0.24, µ2=20.93, σ2=1.48), which
    captures the pronounced bimodality of the bytes-by-size curve.
    """

    components: tuple[LognormalDistribution, ...]
    weights: tuple[float, ...]
    name: str = field(default="mixture-of-lognormals", init=False)

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights):
            raise ValueError("components and weights must have equal length")
        if not self.components:
            raise ValueError("mixture needs at least one component")
        if any(weight < 0 for weight in self.weights):
            raise ValueError("mixture weights must be non-negative")
        total = sum(self.weights)
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-6):
            raise ValueError(f"mixture weights must sum to 1, got {total}")

    @classmethod
    def from_parameters(
        cls,
        weights: Sequence[float],
        mus: Sequence[float],
        sigmas: Sequence[float],
    ) -> "MixtureOfLognormals":
        """Build a mixture from parallel parameter sequences."""
        if not len(weights) == len(mus) == len(sigmas):
            raise ValueError("weights, mus and sigmas must have equal length")
        components = tuple(
            LognormalDistribution(mu=mu, sigma=sigma) for mu, sigma in zip(mus, sigmas)
        )
        return cls(components=components, weights=tuple(float(w) for w in weights))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        self._validate_size(size)
        if size == 0:
            return np.empty(0, dtype=float)
        choices = rng.choice(len(self.components), size=size, p=np.asarray(self.weights))
        out = np.empty(size, dtype=float)
        for index, component in enumerate(self.components):
            mask = choices == index
            count = int(mask.sum())
            if count:
                out[mask] = component.sample(rng, count)
        return out

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        for weight, component in zip(self.weights, self.components):
            out += weight * component.pdf(x)
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        for weight, component in zip(self.weights, self.components):
            out += weight * component.cdf(x)
        return out

    def mean(self) -> float:
        return sum(w * c.mean() for w, c in zip(self.weights, self.components))

    def params(self) -> Mapping[str, float]:
        rendered: dict[str, float] = {}
        for index, (weight, component) in enumerate(zip(self.weights, self.components), 1):
            rendered[f"alpha{index}"] = weight
            rendered[f"mu{index}"] = component.mu
            rendered[f"sigma{index}"] = component.sigma
        return rendered


@dataclass(frozen=True)
class ShiftedPoissonDistribution(Distribution):
    """Poisson distribution over ``offset + Poisson(lam)``.

    Models the file count by namespace depth (λ=6.49 in Table 2).  The offset
    defaults to zero; a non-zero offset lets callers model depths that start
    at 1 instead of 0.
    """

    lam: float
    offset: int = 0
    name: str = field(default="poisson", init=False)

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError(f"lambda must be positive, got {self.lam}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        self._validate_size(size)
        return rng.poisson(self.lam, size=size) + self.offset

    def pmf(self, k: np.ndarray) -> np.ndarray:
        from scipy.stats import poisson

        k = np.asarray(k)
        return poisson.pmf(k - self.offset, self.lam)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self.pmf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        from scipy.stats import poisson

        x = np.asarray(x)
        return poisson.cdf(np.floor(x) - self.offset, self.lam)

    def mean(self) -> float:
        return self.lam + self.offset

    def params(self) -> Mapping[str, float]:
        return {"lambda": self.lam, "offset": float(self.offset)}


@dataclass(frozen=True)
class InversePolynomialDistribution(Distribution):
    """Discrete distribution with mass proportional to ``1 / (k + offset)**degree``.

    The paper models directory size in files with an inverse polynomial of
    degree 2 and offset 2.36: most directories hold few files and the
    probability of holding ``k`` files falls off polynomially.  Support is the
    integers ``0 .. max_value``.
    """

    degree: float
    offset: float
    max_value: int = 10_000
    name: str = field(default="inverse-polynomial", init=False)

    def __post_init__(self) -> None:
        if self.degree <= 0:
            raise ValueError(f"degree must be positive, got {self.degree}")
        if self.offset <= 0:
            raise ValueError(f"offset must be positive, got {self.offset}")
        if self.max_value < 1:
            raise ValueError(f"max_value must be at least 1, got {self.max_value}")

    def _weights(self) -> np.ndarray:
        support = np.arange(0, self.max_value + 1, dtype=float)
        weights = 1.0 / (support + self.offset) ** self.degree
        return weights / weights.sum()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        self._validate_size(size)
        return rng.choice(self.max_value + 1, size=size, p=self._weights())

    def pmf(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k)
        weights = self._weights()
        out = np.zeros(k.shape, dtype=float)
        valid = (k >= 0) & (k <= self.max_value) & (k == np.floor(k))
        out[valid] = weights[k[valid].astype(int)]
        return out

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self.pmf(x)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        cumulative = np.cumsum(self._weights())
        clipped = np.clip(np.floor(x).astype(int), -1, self.max_value)
        out = np.zeros(x.shape, dtype=float)
        positive = clipped >= 0
        out[positive] = cumulative[clipped[positive]]
        return out

    def mean(self) -> float:
        weights = self._weights()
        return float(np.dot(np.arange(self.max_value + 1), weights))

    def params(self) -> Mapping[str, float]:
        return {
            "degree": self.degree,
            "offset": self.offset,
            "max_value": float(self.max_value),
        }


class CategoricalDistribution(Distribution):
    """Discrete distribution over arbitrary labels with explicit weights.

    Used for extension popularity (percentile values for the top-20
    extensions plus an ``others`` bucket) and for the special-directory bias
    model.
    """

    name = "categorical"

    def __init__(self, labels: Sequence[str], weights: Sequence[float]) -> None:
        if len(labels) != len(weights):
            raise ValueError("labels and weights must have equal length")
        if not labels:
            raise ValueError("categorical distribution needs at least one label")
        weights_array = np.asarray(weights, dtype=float)
        if np.any(weights_array < 0):
            raise ValueError("weights must be non-negative")
        total = float(weights_array.sum())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._labels = tuple(labels)
        self._probabilities = weights_array / total

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def probabilities(self) -> np.ndarray:
        return self._probabilities.copy()

    def probability_of(self, label: str) -> float:
        """Return the probability mass assigned to ``label`` (0 if absent)."""
        try:
            index = self._labels.index(label)
        except ValueError:
            return 0.0
        return float(self._probabilities[index])

    def sample_labels(self, rng: np.random.Generator, size: int) -> list[str]:
        """Sample ``size`` labels."""
        self._validate_size(size)
        indices = rng.choice(len(self._labels), size=size, p=self._probabilities)
        return [self._labels[index] for index in indices]

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample label *indices* (the numeric interface of Distribution)."""
        self._validate_size(size)
        return rng.choice(len(self._labels), size=size, p=self._probabilities)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        out = np.zeros(x.shape, dtype=float)
        valid = (x >= 0) & (x < len(self._labels)) & (x == np.floor(x))
        out[valid] = self._probabilities[x[valid].astype(int)]
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        cumulative = np.cumsum(self._probabilities)
        clipped = np.clip(np.floor(x).astype(int), -1, len(self._labels) - 1)
        out = np.zeros(x.shape, dtype=float)
        positive = clipped >= 0
        out[positive] = cumulative[clipped[positive]]
        return out

    def mean(self) -> float:
        return float(np.dot(np.arange(len(self._labels)), self._probabilities))

    def params(self) -> Mapping[str, float]:
        return {label: float(p) for label, p in zip(self._labels, self._probabilities)}


class EmpiricalDistribution(Distribution):
    """Distribution backed directly by an observed sample.

    Sampling draws with replacement from the observations; the CDF is the
    empirical CDF.  This is the representation Impressions uses when a user
    supplies a raw dataset rather than a parameterised curve.
    """

    name = "empirical"

    def __init__(self, observations: Sequence[float]) -> None:
        data = np.asarray(observations, dtype=float)
        if data.size == 0:
            raise ValueError("empirical distribution needs at least one observation")
        self._sorted = np.sort(data)

    @property
    def observations(self) -> np.ndarray:
        return self._sorted.copy()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        self._validate_size(size)
        return rng.choice(self._sorted, size=size, replace=True)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        # Density of a discrete empirical distribution: mass at observed points.
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        unique, counts = np.unique(self._sorted, return_counts=True)
        mass = counts / self._sorted.size
        for value, probability in zip(unique, mass):
            out[np.isclose(x, value)] = probability
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self._sorted, x, side="right") / self._sorted.size

    def quantile(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        return np.quantile(self._sorted, q)

    def mean(self) -> float:
        return float(self._sorted.mean())

    def params(self) -> Mapping[str, float]:
        return {
            "n": float(self._sorted.size),
            "mean": float(self._sorted.mean()),
            "std": float(self._sorted.std()),
            "min": float(self._sorted.min()),
            "max": float(self._sorted.max()),
        }
