"""Pluggable materialization sinks — image export as a first-class subsystem.

The paper's point is producing *real* file-system images benchmarks can run
against; this package turns the previously monolithic, serial
``FileSystemImage.materialize()`` into a redesigned export path:

* :mod:`repro.materialize.base` — the :class:`MaterializationSink` protocol
  (``begin`` / ``add_directory`` / ``add_file`` / ``finalize``), the typed
  :class:`MaterializeResult` (counts, per-phase timings, order-independent
  content digest), namespace / disk-extent ordering policies, and the
  :func:`materialize_image` driver.
* :mod:`repro.materialize.sinks` — :class:`DirectorySink` (host tree, with a
  ``jobs`` process pool and derived directory timestamps),
  :class:`TarSink` (deterministic streaming archives),
  :class:`SparseTarSink` (GNU sparse metadata-only archives that scale with
  file count, not apparent bytes),
  :class:`ManifestSink` (JSONL path/size/timestamp/extent manifests) and
  :class:`NullSink` (digest-only).
* :mod:`repro.materialize.verify` — round-trip verification: materialize →
  re-import with the dataset importer → KS / chi-square / MDCC distribution
  checks against the generating image and config.
* :mod:`repro.materialize.cli` — ``impressions materialize``.

Quickstart::

    from repro.materialize import DirectorySink, TarSink, materialize_image

    result = materialize_image(image, DirectorySink("/tmp/img", jobs=4), order="extent")
    result.verify(config).passed      # round-trip distribution checks
    materialize_image(image, TarSink("img.tar.gz")).extras["archive_sha256"]
"""

from repro.materialize.base import (
    MATERIALIZE_FORMAT_VERSION,
    ORDER_EXTENT,
    ORDER_NAMESPACE,
    ORDERS,
    FileStream,
    MaterializationPlan,
    MaterializationSink,
    MaterializeError,
    MaterializeResult,
    SinkWriteError,
    VerificationCheck,
    VerificationResult,
    derived_directory_times,
    materialize_image,
    ordered_files,
)
from repro.materialize.sinks import (
    SINK_NAMES,
    DirectorySink,
    ManifestSink,
    NullSink,
    SparseTarSink,
    TarSink,
    build_sink,
)
from repro.materialize.verify import verify_round_trip

__all__ = [
    "MATERIALIZE_FORMAT_VERSION",
    "ORDERS",
    "ORDER_EXTENT",
    "ORDER_NAMESPACE",
    "SINK_NAMES",
    "DirectorySink",
    "FileStream",
    "ManifestSink",
    "MaterializationPlan",
    "MaterializationSink",
    "MaterializeError",
    "MaterializeResult",
    "NullSink",
    "SinkWriteError",
    "SparseTarSink",
    "TarSink",
    "VerificationCheck",
    "VerificationResult",
    "build_sink",
    "derived_directory_times",
    "materialize_image",
    "ordered_files",
    "verify_round_trip",
]
