"""The five built-in materialization sinks.

* :class:`DirectorySink` — a real directory tree on the host file system
  (the historical ``FileSystemImage.materialize`` behaviour, extracted and
  extended with a ``jobs`` process pool that parallelizes content
  generation + writes, and with derived directory timestamps applied in
  reverse depth order after all children exist).
* :class:`TarSink` — a deterministic streaming ``.tar`` / ``.tar.gz``
  archive that never touches the host tree.
* :class:`SparseTarSink` — a GNU *sparse* tar of the metadata-only image;
  archive size scales with file count, not apparent bytes, so huge images
  stay archivable.
* :class:`ManifestSink` — a JSONL manifest of paths / sizes / timestamps /
  extents, cheap enough for huge images.
* :class:`NullSink` — writes nothing; the driver's content digest is the
  artifact (verification and CI determinism gates).

All sinks are driven by :func:`repro.materialize.base.materialize_image`;
:func:`build_sink` maps the CLI / stage-param spelling to an instance.
"""

from __future__ import annotations

import contextlib
import gzip
import hashlib
import io
import json
import os
import pickle
import shutil
import tarfile
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterator

from repro.materialize.base import (
    FileStream,
    MaterializationPlan,
    MaterializationSink,
    MaterializeError,
    derived_directory_times,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.image import FileSystemImage
    from repro.namespace.tree import DirectoryNode

__all__ = [
    "DirectorySink",
    "TarSink",
    "SparseTarSink",
    "ManifestSink",
    "NullSink",
    "build_sink",
    "SINK_NAMES",
]


# Directory sink ---------------------------------------------------------------


def _write_file_entry(root_path: str, stream: FileStream) -> None:
    """Write one file under ``root_path`` exactly as the legacy materializer.

    Content mode streams the generator's chunks; metadata-only mode creates a
    sparse file of the right apparent size.  File timestamps are applied
    immediately — the containing directory's mtime is fixed up later, in
    reverse depth order, once all children exist.
    """
    node = stream.node
    path = os.path.join(root_path, stream.relpath)
    if stream.write_content:
        with open(path, "wb") as handle:
            for chunk in stream.chunks():
                handle.write(chunk)
    else:
        stream.ensure_digest()
        with open(path, "wb") as handle:
            if node.size:
                handle.seek(node.size - 1)
                handle.write(b"\0")
    if node.timestamps is not None:
        os.utime(path, (node.timestamps.accessed, node.timestamps.modified))


# Worker-process state for DirectorySink(jobs=N) — set once per worker by the
# pool initializer so each batch task ships only a list of file ids.
_WORKER: dict = {}


def _directory_worker_init(payload: bytes) -> None:
    _WORKER["image"], _WORKER["root"], _WORKER["write_content"] = pickle.loads(payload)


def _directory_worker_batch(file_ids: list[int]) -> tuple[int, list[tuple[int, str]]]:
    """Write one batch of files in a worker; return (worker pid, entry digests)."""
    image: "FileSystemImage" = _WORKER["image"]
    root: str = _WORKER["root"]
    write_content: bool = _WORKER["write_content"]
    out: list[tuple[int, str]] = []
    files = image.tree.files
    for file_id in file_ids:
        node = files[file_id]
        stream = FileStream(image, node, node.path().lstrip("/"), write_content)
        _write_file_entry(root, stream)
        out.append((file_id, stream.ensure_digest()))
    return os.getpid(), out


class DirectorySink(MaterializationSink):
    """Materialize into a real directory tree on the host file system.

    Args:
        root_path: target directory (created if missing).
        jobs: worker processes for content generation + writes; ``1`` keeps
            the serial path (byte-identical to the legacy
            ``FileSystemImage.materialize``).  Parallel writes are safe
            because every file's bytes are a pure function of the image's
            content seed and the file's id, and the combined digest is
            order-independent.
        apply_directory_times: derive directory atime/mtime from the subtree's
            file timestamps and apply them (reverse depth order) after all
            children exist; no-op for images without timestamps.
    """

    name = "dir"

    def __init__(self, root_path: str, jobs: int = 1, apply_directory_times: bool = True) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.root_path = root_path
        self.jobs = jobs
        self.apply_directory_times = apply_directory_times
        self._image: "FileSystemImage | None" = None
        self._plan: MaterializationPlan | None = None
        self._pending: list[FileStream] = []
        self._serial_files = 0
        self._per_job_files: dict[str, int] = {}
        self._owns_root = False

    def begin(self, image: "FileSystemImage", plan: MaterializationPlan) -> None:
        self._image = image
        self._plan = plan
        self._pending = []
        self._serial_files = 0
        self._per_job_files = {}
        # Whether abort() may remove the whole tree: only when this run
        # created the root (or found it empty) — never a directory that
        # already held someone else's data.
        self._owns_root = not os.path.isdir(self.root_path) or not os.listdir(self.root_path)
        os.makedirs(self.root_path, exist_ok=True)

    def add_directory(self, directory: "DirectoryNode", relpath: str) -> None:
        os.makedirs(os.path.join(self.root_path, relpath), exist_ok=True)

    def add_file(self, stream: FileStream) -> None:
        if self.jobs > 1:
            # Batched into the process pool at finalize so batch sizes can be
            # balanced over the full file count.
            self._pending.append(stream)
        else:
            _write_file_entry(self.root_path, stream)
            self._serial_files += 1

    def finalize(self) -> dict:
        assert self._image is not None and self._plan is not None
        workers_used = 1
        if self._pending:
            workers_used = self._write_parallel(self._pending)
        if self.apply_directory_times:
            for _, dirpath, (accessed, modified) in derived_directory_times(self._image.tree):
                os.utime(
                    os.path.join(self.root_path, dirpath.lstrip("/") or "."),
                    (accessed, modified),
                )
        per_job = self._per_job_files or (
            {"0": self._serial_files} if self._serial_files else {}
        )
        extras = {"path": self.root_path, "jobs": workers_used}
        if per_job:
            extras["per_job_files"] = per_job
        return extras

    def _write_parallel(self, streams: list[FileStream]) -> int:
        workers = min(self.jobs, max(1, len(streams)))
        payload = pickle.dumps(
            (self._image, self.root_path, bool(self._plan and self._plan.write_content))
        )
        # ~8 batches per worker amortizes pool IPC while keeping the pool busy
        # when file sizes are skewed.
        batch_size = max(1, (len(streams) + workers * 8 - 1) // (workers * 8))
        by_id = {stream.node.file_id: stream for stream in streams}
        ids = [stream.node.file_id for stream in streams]
        batches = [ids[i : i + batch_size] for i in range(0, len(ids), batch_size)]
        files_by_pid: dict[int, int] = {}
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_directory_worker_init, initargs=(payload,)
        ) as pool:
            for pid, results in pool.map(_directory_worker_batch, batches):
                files_by_pid[pid] = files_by_pid.get(pid, 0) + len(results)
                for file_id, hexdigest in results:
                    by_id[file_id].set_digest(hexdigest)
        # Stable job indices (sorted pid order) so two runs with the same
        # worker count produce comparable label sets.
        self._per_job_files = {
            str(index): files_by_pid[pid] for index, pid in enumerate(sorted(files_by_pid))
        }
        return workers

    def abort(self) -> None:
        self._pending = []
        if self._owns_root:
            shutil.rmtree(self.root_path, ignore_errors=True)


# Tar sink ---------------------------------------------------------------------


class _ChunkReader(io.RawIOBase):
    """File-like view over an iterator of byte chunks (for ``tarfile.addfile``)."""

    def __init__(self, chunks: Iterator[bytes]) -> None:
        self._chunks = chunks
        self._buffer = b""

    def readable(self) -> bool:  # pragma: no cover - io protocol
        return True

    def read(self, size: int = -1) -> bytes:
        if size is None or size < 0:
            parts = [self._buffer, *self._chunks]
            self._buffer = b""
            return b"".join(parts)
        while len(self._buffer) < size:
            chunk = next(self._chunks, None)
            if chunk is None:
                break
            self._buffer += chunk
        out, self._buffer = self._buffer[:size], self._buffer[size:]
        return out


def _zero_chunks(size: int, chunk_size: int = 1 << 20) -> Iterator[bytes]:
    while size > 0:
        piece = min(size, chunk_size)
        yield b"\0" * piece
        size -= piece


class TarSink(MaterializationSink):
    """Stream the image into a deterministic ``.tar`` / ``.tar.gz`` archive.

    Determinism: entries appear in stream order (directories first), owners
    are fixed to 0/"", modes to 0o755 (dirs) / 0o644 (files), mtimes come
    from the image's timestamp model (0 when absent), the GNU tar format is
    used throughout, and gzip compression embeds no timestamp — so one seeded
    image always produces byte-identical archive bytes, which CI pins.

    Metadata-only images are archived with zero-filled payloads of the right
    size (tar has no portable sparse representation).
    """

    name = "tar"

    def __init__(self, archive_path: str, compress: bool | None = None) -> None:
        self.archive_path = archive_path
        if compress is None:
            compress = archive_path.endswith((".tar.gz", ".tgz"))
        self.compress = bool(compress)
        self._raw = None
        self._gzip = None
        self._tar: tarfile.TarFile | None = None
        self._directory_times: dict[str, float] = {}

    def begin(self, image: "FileSystemImage", plan: MaterializationPlan) -> None:
        directory = os.path.dirname(self.archive_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._raw = open(self.archive_path, "wb")
        stream = self._raw
        if self.compress:
            # mtime=0 and an empty filename keep the gzip header constant.
            self._gzip = gzip.GzipFile(
                filename="", mode="wb", fileobj=self._raw, mtime=0, compresslevel=6
            )
            stream = self._gzip
        self._tar = tarfile.open(fileobj=stream, mode="w", format=tarfile.GNU_FORMAT)
        self._directory_times = {
            path.lstrip("/") or ".": modified
            for _, path, (_, modified) in derived_directory_times(image.tree)
        }

    def add_directory(self, directory: "DirectoryNode", relpath: str) -> None:
        assert self._tar is not None
        if relpath == ".":
            return  # the archive root is implicit
        info = tarfile.TarInfo(name=relpath + "/")
        info.type = tarfile.DIRTYPE
        info.mode = 0o755
        info.mtime = int(self._directory_times.get(relpath, 0))
        self._tar.addfile(info)

    def add_file(self, stream: FileStream) -> None:
        assert self._tar is not None
        node = stream.node
        info = tarfile.TarInfo(name=stream.relpath)
        info.type = tarfile.REGTYPE
        info.size = node.size
        info.mode = 0o644
        info.mtime = int(node.timestamps.modified) if node.timestamps is not None else 0
        if stream.write_content:
            chunks = stream.chunks()
            self._tar.addfile(info, _ChunkReader(chunks))
            for _ in chunks:  # finish the generator so its digest finalizes
                raise MaterializeError(
                    f"content for {stream.relpath!r} exceeded its declared size"
                )
        else:
            stream.ensure_digest()
            self._tar.addfile(info, _ChunkReader(_zero_chunks(node.size)))

    def finalize(self) -> dict:
        assert self._tar is not None and self._raw is not None
        self._tar.close()
        if self._gzip is not None:
            self._gzip.close()
        self._raw.close()
        digest = hashlib.sha256()
        with open(self.archive_path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        return {
            "path": self.archive_path,
            "archive_bytes": os.path.getsize(self.archive_path),
            "archive_sha256": digest.hexdigest(),
            "compressed": self.compress,
        }

    def abort(self) -> None:
        for handle in (self._tar, self._gzip, self._raw):
            if handle is not None:
                with contextlib.suppress(Exception):
                    handle.close()
        self._tar = self._gzip = self._raw = None
        with contextlib.suppress(OSError):
            os.remove(self.archive_path)


# Sparse tar sink --------------------------------------------------------------

_TAR_BLOCK = 512
_TAR_RECORD = 10240  # GNU tar's default blocking factor (20 blocks)


def _tar_number(value: int, length: int) -> bytes:
    """A tar numeric field: octal when it fits, GNU base-256 otherwise."""
    if 0 <= value < 8 ** (length - 1):
        return ("%0*o" % (length - 1, value)).encode("ascii") + b"\0"
    out = bytearray(length)
    for index in range(length - 1, 0, -1):
        out[index] = value & 0xFF
        value >>= 8
    if value:
        raise MaterializeError(f"number too large for a {length}-byte tar field")
    out[0] = 0x80
    return bytes(out)


def _tar_pad(data: bytes) -> bytes:
    remainder = len(data) % _TAR_BLOCK
    return data if not remainder else data + b"\0" * (_TAR_BLOCK - remainder)


class SparseTarSink(MaterializationSink):
    """Stream the image into a GNU *sparse* tar — metadata-only, tiny on disk.

    :class:`TarSink` must zero-fill metadata-only payloads because the POSIX
    formats have no hole representation, so archiving a 100 GiB image costs
    100 GiB of zeros (gzip shrinks them, but the write and any re-read do
    not).  This sink hand-rolls the GNU *oldgnu* sparse member format
    (typeflag ``S``) instead: each file is archived as a sparse map plus only
    its data regions — for Impressions' metadata-only files, the single
    trailing zero byte that :class:`DirectorySink` writes (``seek(size-1);
    write(b"\\0")``) — while the header's ``realsize`` field preserves the
    full apparent size.  Archive size scales with the *file count*, not the
    image's nominal bytes.

    Standard tools understand the format: GNU tar extracts the holes back,
    and Python's ``tarfile`` reads the members (``TarInfo.size`` reports the
    apparent size), which is how the round-trip test verifies the archive.
    Long paths use GNU ``L`` longname members, and every field that could
    vary (owners, modes, padding, gzip header) is pinned exactly as in
    :class:`TarSink`, so one seeded image produces byte-identical archives —
    CI pins the digest.
    """

    name = "sparse-tar"
    writes_content = False

    def __init__(self, archive_path: str, compress: bool | None = None) -> None:
        self.archive_path = archive_path
        if compress is None:
            compress = archive_path.endswith((".tar.gz", ".tgz"))
        self.compress = bool(compress)
        self._raw = None
        self._gzip = None
        self._stream = None
        self._directory_times: dict[str, float] = {}
        self._sparse_members = 0
        self._apparent_bytes = 0

    # Block assembly ---------------------------------------------------------

    def _header(
        self,
        name: bytes,
        *,
        typeflag: bytes,
        mode: int,
        size: int,
        mtime: int,
        sparse: "list[tuple[int, int]] | None" = None,
        realsize: int | None = None,
    ) -> bytes:
        buf = bytearray(_TAR_BLOCK)
        if len(name) > 100:
            raise MaterializeError("header names are capped at 100 bytes (use a longname)")
        buf[0 : len(name)] = name
        buf[100:108] = _tar_number(mode, 8)
        buf[108:116] = _tar_number(0, 8)  # uid
        buf[116:124] = _tar_number(0, 8)  # gid
        buf[124:136] = _tar_number(size, 12)
        buf[136:148] = _tar_number(mtime, 12)
        buf[156:157] = typeflag
        buf[257:265] = b"ustar  \0"  # oldgnu magic+version
        if sparse is not None:
            # struct oldgnu_header: sparse map at 386 (4 slots of 12+12),
            # isextended flag at 482, real (apparent) size at 483.
            if len(sparse) > 4:
                raise MaterializeError("at most 4 sparse regions fit the base header")
            position = 386
            for offset, numbytes in sparse:
                buf[position : position + 12] = _tar_number(offset, 12)
                buf[position + 12 : position + 24] = _tar_number(numbytes, 12)
                position += 24
            assert realsize is not None
            buf[483:495] = _tar_number(realsize, 12)
        buf[148:156] = b" " * 8  # checksum is computed over spaces
        buf[148:156] = ("%06o" % sum(buf)).encode("ascii") + b"\0 "
        return bytes(buf)

    def _write(self, data: bytes) -> None:
        assert self._stream is not None
        self._stream.write(data)

    def _emit_name(self, relpath: str, *, directory: bool) -> bytes:
        """The (possibly truncated) header name, emitting a longname first."""
        full = relpath.encode("utf-8") + (b"/" if directory else b"")
        if len(full) <= 100:
            return full
        self._write(
            self._header(
                b"././@LongLink",
                typeflag=b"L",  # tarfile.GNUTYPE_LONGNAME
                mode=0o644,
                size=len(full) + 1,
                mtime=0,
            )
        )
        self._write(_tar_pad(full + b"\0"))
        return full[:100]

    # Sink protocol ----------------------------------------------------------

    def begin(self, image: "FileSystemImage", plan: MaterializationPlan) -> None:
        directory = os.path.dirname(self.archive_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._raw = open(self.archive_path, "wb")
        self._stream = self._raw
        if self.compress:
            self._gzip = gzip.GzipFile(
                filename="", mode="wb", fileobj=self._raw, mtime=0, compresslevel=6
            )
            self._stream = self._gzip
        self._sparse_members = 0
        self._apparent_bytes = 0
        self._directory_times = {
            path.lstrip("/") or ".": modified
            for _, path, (_, modified) in derived_directory_times(image.tree)
        }

    def add_directory(self, directory: "DirectoryNode", relpath: str) -> None:
        if relpath == ".":
            return  # the archive root is implicit
        name = self._emit_name(relpath, directory=True)
        self._write(
            self._header(
                name,
                typeflag=b"5",
                mode=0o755,
                size=0,
                mtime=int(self._directory_times.get(relpath, 0)),
            )
        )

    def add_file(self, stream: FileStream) -> None:
        node = stream.node
        stream.ensure_digest()
        mtime = int(node.timestamps.modified) if node.timestamps is not None else 0
        name = self._emit_name(stream.relpath, directory=False)
        if node.size == 0:
            self._write(
                self._header(name, typeflag=b"0", mode=0o644, size=0, mtime=mtime)
            )
            return
        # One data region — the trailing zero byte DirectorySink writes; the
        # header's size counts archived bytes, realsize the apparent size.
        self._write(
            self._header(
                name,
                typeflag=b"S",
                mode=0o644,
                size=1,
                mtime=mtime,
                sparse=[(node.size - 1, 1)],
                realsize=node.size,
            )
        )
        self._write(_tar_pad(b"\0"))
        self._sparse_members += 1
        self._apparent_bytes += node.size

    def finalize(self) -> dict:
        assert self._stream is not None and self._raw is not None
        self._write(b"\0" * (_TAR_BLOCK * 2))  # end-of-archive marker
        # Pad to the blocking factor exactly like tarfile/GNU tar do.
        if self._stream.tell() % _TAR_RECORD:
            self._write(b"\0" * (_TAR_RECORD - self._stream.tell() % _TAR_RECORD))
        if self._gzip is not None:
            self._gzip.close()
        self._raw.close()
        digest = hashlib.sha256()
        with open(self.archive_path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        return {
            "path": self.archive_path,
            "archive_bytes": os.path.getsize(self.archive_path),
            "archive_sha256": digest.hexdigest(),
            "compressed": self.compress,
            "sparse_members": self._sparse_members,
            "apparent_bytes": self._apparent_bytes,
        }

    def abort(self) -> None:
        for handle in (self._gzip, self._raw):
            if handle is not None:
                with contextlib.suppress(Exception):
                    handle.close()
        self._gzip = self._raw = self._stream = None
        with contextlib.suppress(OSError):
            os.remove(self.archive_path)


# Manifest sink ----------------------------------------------------------------


class ManifestSink(MaterializationSink):
    """Write a JSONL manifest of the image — one line per entry.

    The first line is a header (format version, order, image shape, content
    seed); every following line describes one directory or file, including
    per-file timestamps and disk extents.  Content bytes are never generated
    (``writes_content`` is False), so manifesting a huge image costs seconds,
    not hours — the manifest plus the config is enough to rebuild or audit
    the image elsewhere.

    ``digest_content=True`` (CLI ``--digest-content``) additionally records a
    ``content_sha256`` per file: a hash over the *raw content bytes only*, no
    metadata header, so it is independent of the file's path.  That makes the
    manifest rows comparable across renames — the shard merge verifier checks
    that the digest multiset over all per-shard manifests equals the merged
    image's (:func:`repro.shard.manifest_content_digests`).  Opt-in because
    it generates (and discards) every file's content: manifesting stops being
    free and costs a full content pass.
    """

    name = "manifest"
    writes_content = False

    def __init__(self, manifest_path: str, digest_content: bool = False) -> None:
        self.manifest_path = manifest_path
        self.digest_content = digest_content
        self._handle = None
        self._lines = 0

    def _write(self, document: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(document, sort_keys=True, separators=(",", ":")))
        self._handle.write("\n")
        self._lines += 1

    def begin(self, image: "FileSystemImage", plan: MaterializationPlan) -> None:
        if self.digest_content and image.content_generator is None:
            raise MaterializeError(
                "digest_content requires a content-bearing image; this image "
                "was generated metadata-only (content='metadata')"
            )
        directory = os.path.dirname(self.manifest_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.manifest_path, "w", encoding="utf-8")
        self._lines = 0
        self._write(
            {
                "type": "header",
                "format": 1,
                "kind": "impressions-manifest",
                "order": plan.order,
                "files": plan.files,
                "directories": plan.directories,
                "total_bytes": plan.total_bytes,
                "content_seed": image.content_seed,
                "layout_score": image.achieved_layout_score(),
                "digest_content": self.digest_content,
            }
        )

    def add_directory(self, directory: "DirectoryNode", relpath: str) -> None:
        self._write({"type": "dir", "path": relpath, "depth": directory.depth})

    def add_file(self, stream: FileStream) -> None:
        node = stream.node
        stamps = node.timestamps
        row = {
            "type": "file",
            "path": stream.relpath,
            "size": node.size,
            "extension": node.extension,
            "depth": node.depth,
            "file_id": node.file_id,
            "content_kind": node.content_kind,
            "timestamps": (
                [stamps.created, stamps.modified, stamps.accessed]
                if stamps is not None
                else None
            ),
            "extents": [list(extent) for extent in node.extents],
            "digest": stream.ensure_digest(),
        }
        if self.digest_content:
            # Raw content bytes only — path-independent by design, unlike the
            # entry digest above.  Legal to iterate here: a metadata-only plan
            # never consumes the stream, so the chunks are ours to generate.
            digest = hashlib.sha256()
            for chunk in stream.content_chunks():
                digest.update(chunk)
            row["content_sha256"] = digest.hexdigest()
        self._write(row)

    def finalize(self) -> dict:
        assert self._handle is not None
        self._handle.close()
        return {
            "path": self.manifest_path,
            "manifest_bytes": os.path.getsize(self.manifest_path),
            "lines": self._lines,
        }

    def abort(self) -> None:
        if self._handle is not None:
            with contextlib.suppress(Exception):
                self._handle.close()
            self._handle = None
        with contextlib.suppress(OSError):
            os.remove(self.manifest_path)


# Null sink --------------------------------------------------------------------


class NullSink(MaterializationSink):
    """Materialize nothing; the driver's content digest is the artifact.

    With content enabled every file's bytes are still generated and hashed,
    so two runs (or two machines) can assert that they would materialize the
    identical image without writing a single byte — the cheapest possible
    determinism gate for CI.
    """

    name = "null"

    def begin(self, image: "FileSystemImage", plan: MaterializationPlan) -> None:
        pass

    def add_directory(self, directory: "DirectoryNode", relpath: str) -> None:
        pass

    def add_file(self, stream: FileStream) -> None:
        pass

    def finalize(self) -> dict:
        return {}


#: CLI / stage-param sink spellings.
SINK_NAMES = ("dir", "tar", "sparse-tar", "manifest", "null")


def build_sink(
    kind: str,
    path: str | None = None,
    jobs: int = 1,
    digest_content: bool = False,
) -> MaterializationSink:
    """Instantiate a sink from its CLI spelling.

    ``dir`` / ``tar`` / ``sparse-tar`` / ``manifest`` need a target ``path``;
    ``null`` takes none.  ``jobs`` only affects :class:`DirectorySink`;
    ``digest_content`` only :class:`ManifestSink`.
    """
    if digest_content and kind != "manifest":
        raise MaterializeError(
            f"digest_content is a manifest-sink option, not valid for {kind!r}"
        )
    if kind == "null":
        return NullSink()
    if path is None:
        raise MaterializeError(f"sink {kind!r} needs a target path")
    if kind == "dir":
        return DirectorySink(path, jobs=jobs)
    if kind == "tar":
        return TarSink(path)
    if kind == "sparse-tar":
        return SparseTarSink(path)
    if kind == "manifest":
        return ManifestSink(path, digest_content=digest_content)
    raise MaterializeError(f"unknown sink {kind!r}; expected one of {SINK_NAMES}")
