"""The materialization sink protocol and its shared plumbing.

Impressions' whole purpose is producing *real* file-system images benchmarks
can run against.  This module redesigns image export around a small protocol:
a :class:`MaterializationSink` receives the image's entries in a well-defined
order (``begin`` → ``add_directory``\\* → ``add_file``\\* → ``finalize``) and
turns them into some concrete artifact — a host directory tree, a streaming
tar archive, a JSONL manifest, or nothing but a digest.  The driver
(:func:`materialize_image`) owns everything the sinks share:

* **ordering policy** — entries are streamed in namespace order (the
  historical behaviour) or in *disk-extent order*, sorted by each file's
  first block on the :class:`~repro.layout.disk.SimulatedDisk`, so an
  on-disk materialization can approximate the fragmented layout the image
  models;
* **content digesting** — every file contributes a per-entry SHA-256
  (metadata header plus, when content is written, the exact content bytes);
  the per-entry digests are combined in ``file_id`` order, so the image
  digest is *independent of the streaming order and of write parallelism*
  and therefore comparable across sinks;
* **phase timing** — begin / directories / files / finalize wall-clock
  seconds are recorded on the returned :class:`MaterializeResult`.

Round-trip verification (:meth:`MaterializeResult.verify`) closes the loop:
a materialized directory tree is re-imported with
:func:`repro.dataset.importer.import_directory_tree` and its size / depth /
extension distributions are compared against the generating image and the
generating config's size model (KS, chi-square and MDCC checks).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.faults import plan as fault_plan
from repro.obs import core as obs_core

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.image import FileSystemImage
    from repro.namespace.tree import DirectoryNode, FileNode

__all__ = [
    "MATERIALIZE_FORMAT_VERSION",
    "ORDER_NAMESPACE",
    "ORDER_EXTENT",
    "ORDERS",
    "MaterializeError",
    "SinkWriteError",
    "MaterializationPlan",
    "MaterializationSink",
    "MaterializeResult",
    "FileStream",
    "VerificationCheck",
    "VerificationResult",
    "derived_directory_times",
    "materialize_image",
    "ordered_files",
]

#: Bumped when the entry digest recipe changes incompatibly, so pinned
#: digests (golden tests, CI determinism gates) never silently drift.
MATERIALIZE_FORMAT_VERSION = 1

#: Stream files in namespace (``file_id``) order — the historical behaviour.
ORDER_NAMESPACE = "namespace"
#: Stream files sorted by their first block on the simulated disk.
ORDER_EXTENT = "extent"
ORDERS = (ORDER_NAMESPACE, ORDER_EXTENT)


class MaterializeError(RuntimeError):
    """Raised when an image cannot be materialized as requested."""


class SinkWriteError(MaterializeError):
    """A sink hit an I/O failure (ENOSPC, EIO) while writing its artifact.

    By the time this surfaces the sink's :meth:`MaterializationSink.abort`
    has run: partial artifacts are cleaned up, so a failed materialization
    leaves nothing a later run could mistake for a complete image.
    """

    def __init__(self, sink: str, phase: str, cause: BaseException) -> None:
        super().__init__(f"{sink} sink failed during {phase}: {cause}")
        self.sink = sink
        self.phase = phase


@dataclass(frozen=True)
class MaterializationPlan:
    """What one materialization run is about to do (handed to ``begin``).

    Attributes:
        order: file streaming order (:data:`ORDER_NAMESPACE` or
            :data:`ORDER_EXTENT`).
        write_content: whether file content bytes are generated (already
            reconciled against the sink's :attr:`MaterializationSink.writes_content`
            capability and the image's content generator).
        files: number of files that will be streamed.
        directories: number of directories that will be streamed.
        total_bytes: logical bytes over all files.
    """

    order: str
    write_content: bool
    files: int
    directories: int
    total_bytes: int


class FileStream:
    """One file's entry in the stream: metadata plus lazily generated content.

    A sink either *consumes* the stream (iterating :meth:`chunks` exactly
    once, writing the bytes somewhere) or ignores it; either way
    :meth:`ensure_digest` afterwards yields the entry's SHA-256 — the hash is
    computed while the sink consumes the chunks, or on demand over a
    generate-and-discard pass.  The digest covers the canonical metadata
    header and, when the plan writes content, the exact content bytes.
    """

    def __init__(
        self,
        image: "FileSystemImage",
        node: "FileNode",
        relpath: str,
        write_content: bool,
    ) -> None:
        self.image = image
        self.node = node
        self.relpath = relpath
        self.write_content = write_content
        self._digest: str | None = None
        self._consumed = False

    # Digest plumbing -------------------------------------------------------

    def header_bytes(self) -> bytes:
        node = self.node
        stamps = node.timestamps
        header = {
            "format": MATERIALIZE_FORMAT_VERSION,
            "path": self.relpath,
            "size": node.size,
            "extension": node.extension,
            "timestamps": (
                [stamps.created, stamps.modified, stamps.accessed] if stamps is not None else None
            ),
        }
        return json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def content_chunks(self) -> Iterator[bytes]:
        """The file's raw content chunks (no hashing) — exactly the stream the
        legacy ``FileSystemImage.materialize`` wrote."""
        image = self.image
        generator = image.content_generator
        assert generator is not None
        key = self.node.content_key
        if key is None:
            key = (image.content_seed, self.node.file_id)
        rng = np.random.default_rng(key)
        yield from generator.iter_chunks(self.node.size, self.node.extension, rng)

    def chunks(self) -> Iterator[bytes]:
        """Yield the content chunks while hashing them (single use).

        Only meaningful when the plan writes content; metadata-only sinks
        represent the file from :attr:`node` alone (sparse file, zero run,
        manifest row) and never call this.
        """
        if not self.write_content:
            raise MaterializeError("chunks() on a metadata-only file stream")
        if self._consumed:
            raise MaterializeError(f"file stream for {self.relpath!r} consumed twice")
        self._consumed = True
        digest = hashlib.sha256(self.header_bytes())
        for chunk in self.content_chunks():
            digest.update(chunk)
            yield chunk
        self._digest = digest.hexdigest()

    def ensure_digest(self) -> str:
        """The entry digest, generating (and discarding) content if needed."""
        if self._digest is None:
            if self._consumed:
                raise MaterializeError(
                    f"file stream for {self.relpath!r} was partially consumed"
                )
            digest = hashlib.sha256(self.header_bytes())
            if self.write_content:
                self._consumed = True
                for chunk in self.content_chunks():
                    digest.update(chunk)
            self._digest = digest.hexdigest()
        return self._digest

    def set_digest(self, hexdigest: str) -> None:
        """Adopt a digest computed elsewhere (a parallel writer's worker)."""
        self._digest = hexdigest
        self._consumed = True


class MaterializationSink(ABC):
    """Pluggable target of one materialization run.

    The driver calls, in order: :meth:`begin` once, :meth:`add_directory`
    for every directory (depth-first pre-order), :meth:`add_file` for every
    file (in the plan's order), and :meth:`finalize` once.  ``finalize``
    returns sink-specific extras merged into the result's ``extras`` and
    must leave the artifact complete (all writes flushed, workers joined).
    """

    #: short sink kind, also the CLI ``--sink`` spelling
    name: str = ""
    #: whether the sink can persist content bytes; when False the driver
    #: downgrades the plan to metadata-only (e.g. manifests never carry
    #: content, so digesting it would only slow huge images down).
    writes_content: bool = True

    @abstractmethod
    def begin(self, image: "FileSystemImage", plan: MaterializationPlan) -> None:
        """Prepare the artifact (open files, create the root, spawn workers)."""

    @abstractmethod
    def add_directory(self, directory: "DirectoryNode", relpath: str) -> None:
        """Record one directory entry."""

    @abstractmethod
    def add_file(self, stream: FileStream) -> None:
        """Record one file entry (consume ``stream.chunks()`` to write content)."""

    @abstractmethod
    def finalize(self) -> dict:
        """Complete the artifact and return sink-specific extras."""

    def abort(self) -> None:
        """Dismantle a partial artifact after a mid-run failure.

        Called by the driver when any phase raises: close open handles, join
        workers, and remove whatever incomplete output exists so nothing is
        left that could be mistaken for a finished image.  Must be safe to
        call at any point after :meth:`begin` (including after a failed
        ``begin``) and must itself never raise.  The default is a no-op for
        sinks with nothing durable to clean.
        """


@dataclass(frozen=True)
class VerificationCheck:
    """One statistical or structural check of a round-trip verification."""

    name: str
    passed: bool
    statistic: float
    p_value: float = float("nan")
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "statistic": self.statistic,
            "p_value": self.p_value,
            "detail": self.detail,
        }


@dataclass
class VerificationResult:
    """Outcome of :meth:`MaterializeResult.verify`.

    ``source`` records what the observed side of the comparison was:
    ``"imported"`` when a materialized directory tree was re-crawled with the
    dataset importer (the full round trip), ``"image"`` when the sink produced
    no host tree and the image itself was checked against its generating
    config's distributions.
    """

    source: str
    files_observed: int
    directories_observed: int
    checks: list[VerificationCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def as_dict(self) -> dict:
        return {
            "source": self.source,
            "passed": self.passed,
            "files_observed": self.files_observed,
            "directories_observed": self.directories_observed,
            "checks": [check.as_dict() for check in self.checks],
        }

    def render_text(self) -> str:
        lines = [
            f"round-trip verification ({self.source}): "
            f"{'PASSED' if self.passed else 'FAILED'} — "
            f"{self.files_observed} files, {self.directories_observed} directories"
        ]
        for check in self.checks:
            verdict = "ok  " if check.passed else "FAIL"
            extra = f" ({check.detail})" if check.detail else ""
            p = "" if check.p_value != check.p_value else f", p={check.p_value:.3f}"
            lines.append(f"  [{verdict}] {check.name}: statistic={check.statistic:.4f}{p}{extra}")
        return "\n".join(lines)


@dataclass
class MaterializeResult:
    """Typed outcome of one materialization run.

    Attributes:
        sink: sink kind name (``dir`` / ``tar`` / ``manifest`` / ``null``).
        path: primary artifact path, or None for :class:`~repro.materialize.sinks.NullSink`.
        order: file streaming order used.
        write_content: whether content bytes were generated.
        files: files streamed.
        directories: directories streamed.
        total_bytes: logical bytes over all files.
        content_digest: SHA-256 over all entry digests in ``file_id`` order —
            independent of streaming order and parallelism, so the same image
            digests identically through every content-capable sink.
        phase_seconds: wall-clock seconds of the begin / directories / files /
            finalize phases.
        extras: sink-specific extras (e.g. the tar archive's own SHA-256).
    """

    sink: str
    path: str | None
    order: str
    write_content: bool
    files: int
    directories: int
    total_bytes: int
    content_digest: str
    phase_seconds: dict[str, float] = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    _image: "FileSystemImage | None" = field(default=None, repr=False, compare=False)

    @property
    def seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def as_dict(self) -> dict:
        return {
            "sink": self.sink,
            "path": self.path,
            "order": self.order,
            "write_content": self.write_content,
            "files": self.files,
            "directories": self.directories,
            "total_bytes": self.total_bytes,
            "content_digest": self.content_digest,
            "phase_seconds": dict(self.phase_seconds),
            "extras": dict(self.extras),
        }

    def verify(
        self,
        config=None,
        significance: float = 0.01,
        size_mdcc_tolerance: float = 0.2,
        record: bool = True,
    ) -> VerificationResult:
        """Round-trip verification of what was materialized.

        For a directory sink the materialized tree is re-imported with
        :func:`repro.dataset.importer.import_directory_tree` and compared
        against the generating image: exact file/directory counts, a
        two-sample KS test on file sizes, and chi-square tests on the
        files-by-depth and extension histograms.  For archive / manifest /
        null sinks (no host tree to crawl) the image itself is checked.  In
        both cases the observed sizes are additionally compared against the
        generating config's file-size model via MDCC (the paper's Table 3
        accuracy metric) — the statistical tie back to the configuration.

        When ``record`` is True the verdict is recorded in the image's
        reproducibility report under ``materialize_verification``.
        """
        from repro.materialize.verify import verify_round_trip

        if self._image is None:
            raise MaterializeError("this result carries no image to verify against")
        verification = verify_round_trip(
            self._image,
            self,
            config=config,
            significance=significance,
            size_mdcc_tolerance=size_mdcc_tolerance,
        )
        report = self._image.report
        if record and report is not None:
            report.record_derived(
                "materialize_verification",
                {
                    "sink": self.sink,
                    "source": verification.source,
                    "passed": verification.passed,
                    "checks": {
                        check.name: check.passed for check in verification.checks
                    },
                },
            )
        return verification


def ordered_files(image: "FileSystemImage", order: str) -> list["FileNode"]:
    """The image's files in the requested streaming order.

    ``namespace`` is ``file_id`` order (the historical materialization
    order).  ``extent`` sorts by each file's first block on the simulated
    disk (ties and block-less files fall back to ``file_id`` order), so a
    directory materialization touches the host disk roughly in the layout
    order the simulated disk models.
    """
    files = image.tree.files
    if order == ORDER_NAMESPACE:
        return files
    if order != ORDER_EXTENT:
        raise MaterializeError(f"unknown materialization order {order!r}; expected one of {ORDERS}")
    disk = image.disk
    if disk is None:
        raise MaterializeError(
            "extent ordering needs a disk layout; generate with the "
            "'on_disk_creation' stage (or use namespace order)"
        )

    def key(node: "FileNode") -> tuple[int, int]:
        path = node.path()
        if disk.has_file(path):
            extents = disk.extents_of(path)
            if extents:
                return (extents[0][0], node.file_id)
        return (disk.num_blocks, node.file_id)

    return sorted(files, key=key)


def derived_directory_times(tree) -> list[tuple[int, str, tuple[float, float]]]:
    """Derived ``(depth, path, (atime, mtime))`` for timestamped directories.

    Directories carry no sampled timestamps of their own; a directory's
    modification time on a real file system reflects its youngest entry, so
    we derive ``mtime``/``atime`` as the maximum modified/accessed time over
    the subtree's files.  Only directories with at least one timestamped
    file in their subtree are returned.  Rows are sorted deepest-first so a
    sink can apply them after all children exist without a parent's time
    being clobbered by later child creation.
    """
    times: dict[int, tuple[float, float]] = {}
    ordered = list(tree.walk_depth_first())
    for directory in reversed(ordered):  # children before parents (post-order)
        accessed = modified = None
        for file_node in directory.files:
            stamps = file_node.timestamps
            if stamps is None:
                continue
            accessed = stamps.accessed if accessed is None else max(accessed, stamps.accessed)
            modified = stamps.modified if modified is None else max(modified, stamps.modified)
        for child in directory.subdirectories:
            child_times = times.get(id(child))
            if child_times is None:
                continue
            accessed = child_times[0] if accessed is None else max(accessed, child_times[0])
            modified = child_times[1] if modified is None else max(modified, child_times[1])
        if accessed is not None and modified is not None:
            times[id(directory)] = (accessed, modified)
    rows = [
        (directory.depth, directory.path(), times[id(directory)])
        for directory in ordered
        if id(directory) in times
    ]
    rows.sort(key=lambda row: (-row[0], row[1]))
    return rows


def _relpath(path: str) -> str:
    """Image-absolute path (``/a/b``) → artifact-relative path (``a/b``)."""
    stripped = path.lstrip("/")
    return stripped if stripped else "."


def materialize_image(
    image: "FileSystemImage",
    sink: MaterializationSink,
    *,
    order: str = ORDER_NAMESPACE,
    write_content: bool | None = None,
    telemetry: "obs_core.Telemetry | None" = None,
) -> MaterializeResult:
    """Stream ``image`` through ``sink`` and return the typed result.

    Args:
        image: the generated image to materialize.
        sink: where the entries go.
        order: file streaming order (:data:`ORDERS`).
        write_content: generate content bytes (default: only if the image has
            a content generator).  Forced off for sinks that cannot persist
            content (:attr:`MaterializationSink.writes_content`).
        telemetry: optional :class:`repro.obs.Telemetry`; defaults to the
            context-bound one (:func:`repro.obs.current`).  When set, each
            phase (begin / directories / files / finalize) becomes a span and
            entry/byte/per-job write counters are recorded.

    Raises:
        MaterializeError: content requested without a content generator, or
            an unknown / unsupported ordering.
    """
    tele = telemetry if telemetry is not None else obs_core.current()

    def phase_span(phase: str):
        if tele is None:
            return contextlib.nullcontext()
        return tele.span(f"materialize.{phase}", sink=sink.name, phase=phase)

    if write_content is None:
        write_content = image.content_generator is not None
    if write_content and image.content_generator is None:
        raise MaterializeError("cannot write content: image has no content generator")
    effective_content = bool(write_content and sink.writes_content)

    tree = image.tree
    files = ordered_files(image, order)
    directories = list(tree.walk_depth_first())
    plan = MaterializationPlan(
        order=order,
        write_content=effective_content,
        files=len(files),
        directories=len(directories),
        total_bytes=tree.total_bytes,
    )

    root_span = (
        tele.span("materialize", sink=sink.name, order=order)
        if tele is not None
        else contextlib.nullcontext()
    )
    def run_phase(phase: str, body):
        """One sink phase; failures abort the sink so no partial artifact
        survives.  I/O errors surface as :class:`SinkWriteError`; a simulated
        process crash (:class:`~repro.faults.plan.InjectedCrash`) propagates
        *without* abort — a dead process cleans nothing up, which is exactly
        the torn state crash tests need to observe."""
        try:
            return body()
        except OSError as error:
            with contextlib.suppress(Exception):
                sink.abort()
            raise SinkWriteError(sink.name, phase, error) from error
        except Exception:
            with contextlib.suppress(Exception):
                sink.abort()
            raise

    with root_span:
        phase_seconds: dict[str, float] = {}
        start = time.perf_counter()
        with phase_span("begin"):
            run_phase("begin", lambda: sink.begin(image, plan))
        phase_seconds["begin"] = time.perf_counter() - start

        start = time.perf_counter()
        directory_digests: list[bytes] = []

        def stream_directories() -> None:
            for directory in directories:
                relpath = _relpath(directory.path())
                sink.add_directory(directory, relpath)
                directory_digests.append(
                    hashlib.sha256(
                        json.dumps(
                            {"format": MATERIALIZE_FORMAT_VERSION, "dir": relpath},
                            sort_keys=True,
                            separators=(",", ":"),
                        ).encode("utf-8")
                    ).digest()
                )

        with phase_span("directories"):
            run_phase("directories", stream_directories)
        phase_seconds["directories"] = time.perf_counter() - start

        start = time.perf_counter()
        streams = [
            FileStream(image, node, _relpath(node.path()), effective_content) for node in files
        ]

        def stream_files() -> None:
            for stream in streams:
                fault_plan.check("sink.add_file")
                sink.add_file(stream)

        with phase_span("files"):
            run_phase("files", stream_files)
        phase_seconds["files"] = time.perf_counter() - start

        start = time.perf_counter()
        with phase_span("finalize"):

            def finalize() -> dict:
                fault_plan.check("sink.finalize")
                return sink.finalize() or {}

            extras = run_phase("finalize", finalize)
        # Combine per-entry digests in file_id order — independent of the stream
        # order and of any write parallelism inside the sink, so every sink (and
        # every --jobs setting) reports the same digest for the same image+mode.
        combined = hashlib.sha256()
        for digest in directory_digests:
            combined.update(digest)
        for stream in sorted(streams, key=lambda s: s.node.file_id):
            combined.update(bytes.fromhex(stream.ensure_digest()))
        phase_seconds["finalize"] = time.perf_counter() - start

    result = MaterializeResult(
        sink=sink.name,
        path=extras.pop("path", None),
        order=order,
        write_content=effective_content,
        files=len(files),
        directories=len(directories),
        total_bytes=tree.total_bytes,
        content_digest=combined.hexdigest(),
        phase_seconds=phase_seconds,
        extras=extras,
        _image=image,
    )
    if tele is not None:
        _record_materialize_telemetry(tele, result)
    return result


def _record_materialize_telemetry(
    tele: "obs_core.Telemetry", result: MaterializeResult
) -> None:
    entries = tele.counter(
        "materialize_entries_total",
        "entries streamed through a materialization sink",
        labels=("sink", "kind"),
    )
    entries.inc(result.files, sink=result.sink, kind="file")
    entries.inc(result.directories, sink=result.sink, kind="directory")
    tele.counter(
        "materialize_bytes_total",
        "logical bytes over all streamed files",
        labels=("sink",),
    ).inc(result.total_bytes, sink=result.sink)
    per_job = result.extras.get("per_job_files")
    if not isinstance(per_job, dict):
        per_job = {"0": result.files} if result.files else {}
    job_files = tele.counter(
        "materialize_job_files_total",
        "files written per sink worker job",
        labels=("sink", "job"),
    )
    for job, count in sorted(per_job.items()):
        job_files.inc(int(count), sink=result.sink, job=str(job))
