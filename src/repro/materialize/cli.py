"""``impressions materialize`` — generate an image and export it via a sink.

Examples::

    # Real directory tree, 4 writer processes, disk-extent write order.
    impressions materialize --files 2000 --content hybrid \\
        --sink dir --out /tmp/image --jobs 4 --order extent

    # Deterministic streaming archive; never touches the host tree.
    impressions materialize --files 2000 --sink tar --out image.tar.gz

    # JSONL manifest (paths / sizes / timestamps / extents) for huge images.
    impressions materialize --size-gb 100 --sink manifest --out image.jsonl

    # Digest only: the determinism / verification gate for CI.
    impressions materialize --files 2000 --content hybrid --sink null --verify

Round-trip verification (``--verify``) re-imports a materialized directory
tree with the dataset importer and runs KS / chi-square / MDCC distribution
checks against the generating image and config; the verdict lands in the
reproducibility report and the exit status (nonzero on failure).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.materialize.base import ORDERS, MaterializeError, materialize_image
from repro.materialize.sinks import SINK_NAMES, build_sink

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro.core.cli import add_config_arguments

    parser = argparse.ArgumentParser(
        prog="impressions materialize",
        description="Generate a file-system image and materialize it through a pluggable sink.",
    )
    add_config_arguments(parser)
    parser.add_argument(
        "--sink",
        choices=list(SINK_NAMES),
        default="dir",
        help="materialization target (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="target path (directory, archive, or manifest; unused for --sink null)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="writer processes for --sink dir (default: %(default)s)",
    )
    parser.add_argument(
        "--order",
        choices=list(ORDERS),
        default="namespace",
        help="file streaming order; 'extent' follows the simulated disk layout",
    )
    parser.add_argument(
        "--no-content",
        action="store_true",
        help="materialize metadata only (sparse files / zero runs) even with a content model",
    )
    parser.add_argument(
        "--digest-content",
        action="store_true",
        help=(
            "record a path-independent content_sha256 per file in the manifest "
            "(--sink manifest only; costs a full content-generation pass)"
        ),
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="round-trip verification (import + distribution checks); exit 1 on failure",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="stage-cache directory for the generation pipeline",
    )
    parser.add_argument("--json", action="store_true", help="print a machine-readable summary")
    parser.add_argument("--quiet", action="store_true", help="only print the result line")
    parser.add_argument(
        "--obs-dir",
        metavar="PATH",
        default=None,
        help=(
            "observe generation + materialization and write telemetry "
            "artifacts into this directory"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``impressions materialize ...``."""
    from repro.core.cli import config_from_args
    from repro.pipeline import StageCache, default_pipeline

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.sink != "null" and not args.out:
        parser.error(f"--sink {args.sink} requires --out PATH")
    try:
        config = config_from_args(args)
    except ValueError as error:
        parser.error(str(error))
        return 2  # pragma: no cover - parser.error raises SystemExit

    cache = StageCache(args.cache_dir) if args.cache_dir else None

    from repro.core.cli import obs_use_scope

    telemetry = None
    if args.obs_dir:
        from repro import obs

        telemetry = obs.Telemetry(run_id=f"materialize-{config.fingerprint()[:12]}")

    with obs_use_scope(telemetry):
        image = default_pipeline().run(config, cache=cache).image

        try:
            sink = build_sink(
                args.sink, args.out, jobs=args.jobs, digest_content=args.digest_content
            )
            result = materialize_image(
                image,
                sink,
                order=args.order,
                write_content=False if args.no_content else None,
            )
        except MaterializeError as error:
            raise SystemExit(f"impressions materialize: error: {error}")

    obs_paths = None
    if telemetry is not None:
        from repro import obs

        if image.report is not None:
            image.report.record_telemetry(obs.summary_dict(telemetry))
        obs_paths = obs.save(telemetry, args.obs_dir)

    verification = result.verify(config=config) if args.verify else None

    if args.json:
        payload = {
            "config_fingerprint": config.fingerprint(),
            "result": result.as_dict(),
        }
        if verification is not None:
            payload["verification"] = verification.as_dict()
        if obs_paths is not None:
            payload["obs"] = {"dir": args.obs_dir, "artifacts": obs_paths}
        print(json.dumps(payload, sort_keys=True, default=str))
    else:
        target = f" -> {result.path}" if result.path else ""
        print(
            f"materialized {result.files} files / {result.directories} directories "
            f"({result.total_bytes} bytes, {result.order} order) via {result.sink} sink"
            f"{target} in {result.seconds:.2f}s"
        )
        if not args.quiet:
            print(f"content digest: {result.content_digest}")
            for key, value in sorted(result.extras.items()):
                print(f"{key}: {value}")
            phases = ", ".join(
                f"{name}={seconds:.3f}s" for name, seconds in result.phase_seconds.items()
            )
            print(f"phases: {phases}")
        if obs_paths is not None:
            print(f"telemetry written to {args.obs_dir} ({', '.join(sorted(obs_paths))})")
        if verification is not None:
            print(verification.render_text())
    return 0 if verification is None or verification.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
