"""Round-trip verification of materialized images.

The loop the paper's evaluation implies but never automates: generate an
image, materialize it, crawl the result back in with the dataset importer,
and check that what landed on the host file system still matches what the
framework generated — exact entry counts, a two-sample KS test on file
sizes, chi-square tests on the files-by-depth and extension histograms, and
(when the generating config is available) an MDCC check of the observed
sizes against the config's file-size model, the paper's Table 3 accuracy
metric.

Sinks that produce no host tree (tar, manifest, null) are verified against
the image itself: the structural checks then assert the image's internal
consistency and the model check still ties the materialized data back to the
generating configuration.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

from repro.materialize.base import MaterializeResult, VerificationCheck, VerificationResult
from repro.stats.goodness_of_fit import chi_square_test, ks_test_two_sample, mdcc

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import ImpressionsConfig
    from repro.core.image import FileSystemImage

__all__ = ["verify_round_trip"]

#: extensions beyond the most popular N are pooled into one chi-square bin.
_TOP_EXTENSIONS = 20


def _aligned_counts(observed: dict, expected: dict) -> tuple[list[float], list[float]]:
    keys = sorted(set(observed) | set(expected), key=str)
    return (
        [float(observed.get(key, 0)) for key in keys],
        [float(expected.get(key, 0)) for key in keys],
    )


def _pooled_extension_counts(counts: dict[str, int], top: list[str]) -> dict[str, float]:
    pooled = {key: float(counts.get(key, 0)) for key in top}
    pooled["(other)"] = float(sum(value for key, value in counts.items() if key not in top))
    return pooled


def verify_round_trip(
    image: "FileSystemImage",
    result: MaterializeResult,
    *,
    config: "ImpressionsConfig | None" = None,
    significance: float = 0.01,
    size_mdcc_tolerance: float = 0.2,
) -> VerificationResult:
    """Verify ``result`` against its generating image (and optionally config).

    Args:
        image: the image the result was materialized from.
        result: the materialization to verify.
        config: the generating configuration; when given, the observed sizes
            are additionally MDCC-checked against a fresh sample from its
            file-size model.
        significance: significance level of the KS / chi-square checks.
        size_mdcc_tolerance: allowed MDCC between observed sizes and the
            config model sample (generated sizes are a finite sample, and
            constraint-resolved images deliberately shift it, so this gate
            is intentionally loose).
    """
    tree = image.tree
    checks: list[VerificationCheck] = []

    if result.sink == "dir" and result.path is not None and os.path.isdir(result.path):
        from repro.dataset.importer import import_directory_tree

        snapshot = import_directory_tree(result.path)
        source = "imported"
        observed_sizes = [float(record.size) for record in snapshot.files]
        observed_depths: dict[int, int] = {}
        observed_extensions: dict[str, int] = {}
        for record in snapshot.files:
            observed_depths[record.depth] = observed_depths.get(record.depth, 0) + 1
            key = record.extension or "null"
            observed_extensions[key] = observed_extensions.get(key, 0) + 1
        files_observed = len(snapshot.files)
        directories_observed = len(snapshot.directories)
    else:
        source = "image"
        observed_sizes = [float(size) for size in tree.file_sizes()]
        observed_depths = dict(tree.files_by_depth())
        observed_extensions = dict(tree.extension_counts())
        files_observed = tree.file_count
        directories_observed = tree.directory_count

    checks.append(
        VerificationCheck(
            name="file_count",
            passed=files_observed == tree.file_count,
            statistic=float(files_observed - tree.file_count),
            detail=f"observed {files_observed}, generated {tree.file_count}",
        )
    )
    checks.append(
        VerificationCheck(
            name="directory_count",
            passed=directories_observed == tree.directory_count,
            statistic=float(directories_observed - tree.directory_count),
            detail=f"observed {directories_observed}, generated {tree.directory_count}",
        )
    )

    generated_sizes = [float(size) for size in tree.file_sizes()]
    if observed_sizes and generated_sizes:
        ks = ks_test_two_sample(observed_sizes, generated_sizes, significance=significance)
        checks.append(
            VerificationCheck(
                name="size_ks",
                passed=ks.passed,
                statistic=ks.statistic,
                p_value=ks.p_value,
            )
        )

    observed_depth_counts, expected_depth_counts = _aligned_counts(
        observed_depths, tree.files_by_depth()
    )
    if any(expected_depth_counts):
        chi = chi_square_test(
            observed_depth_counts, expected_depth_counts, significance=significance
        )
        checks.append(
            VerificationCheck(
                name="depth_chi2", passed=chi.passed, statistic=chi.statistic, p_value=chi.p_value
            )
        )

    generated_extensions = tree.extension_counts()
    top = [
        key
        for key, _ in sorted(generated_extensions.items(), key=lambda item: (-item[1], item[0]))[
            :_TOP_EXTENSIONS
        ]
    ]
    if top:
        observed_pooled, expected_pooled = _aligned_counts(
            _pooled_extension_counts(observed_extensions, top),
            _pooled_extension_counts(generated_extensions, top),
        )
        chi = chi_square_test(observed_pooled, expected_pooled, significance=significance)
        checks.append(
            VerificationCheck(
                name="extension_chi2",
                passed=chi.passed,
                statistic=chi.statistic,
                p_value=chi.p_value,
            )
        )

    if config is not None and observed_sizes:
        model = config.resolved_size_model()
        sample = np.maximum(
            np.round(
                np.asarray(
                    model.sample(np.random.default_rng(config.seed), len(observed_sizes)),
                    dtype=float,
                )
            ),
            0.0,
        )
        displacement = mdcc(observed_sizes, sample)
        checks.append(
            VerificationCheck(
                name="size_model_mdcc",
                passed=displacement <= size_mdcc_tolerance,
                statistic=displacement,
                detail=f"tolerance {size_mdcc_tolerance:g} vs {type(model).__name__}",
            )
        )

    return VerificationResult(
        source=source,
        files_observed=files_observed,
        directories_observed=directories_observed,
        checks=checks,
    )
