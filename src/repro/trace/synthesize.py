"""Parameterized trace synthesizers.

Three families of synthetic workloads, mirroring the configurable trace
generation that 2DIO argues storage benchmarks need:

* **metadata storm** — an mdbench-style burst: make directories, create a
  fixed fan of files in each, stat everything repeatedly, then tear it all
  down.  Exercises the metadata path with almost no data movement.
* **Zipf mix** — read/write/stat accesses over the *existing* files of a
  generated image, with file popularity following a Zipf law (a few hot
  files absorb most accesses, the familiar skew of real storage traces).
* **churn** — create/delete turnover with interleaved read/write/stat
  accesses on live files at a configurable ratio; the workload that ages a
  file system.

All synthesizers are pure functions of (spec, seed): the same inputs yield a
byte-identical JSONL trace.  Operations are grouped into arrival batches of
``batch_size`` so replay can report per-batch behaviour.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from repro.core.image import FileSystemImage
from repro.trace.ops import Operation, OperationTrace

__all__ = [
    "MetadataStormSpec",
    "ZipfMixSpec",
    "ChurnSpec",
    "synthesize_metadata_storm",
    "synthesize_zipf_mix",
    "synthesize_churn",
]


def _normalized(weights: Sequence[float], label: str) -> np.ndarray:
    array = np.asarray(weights, dtype=float)
    if np.any(array < 0) or array.sum() <= 0:
        raise ValueError(f"{label} must be non-negative and sum to a positive value")
    return array / array.sum()


@dataclass(frozen=True)
class MetadataStormSpec:
    """Shape of an mdbench-style metadata storm.

    ``num_dirs`` directories are created, each populated with
    ``files_per_dir`` empty files; every file is stat'ed ``stat_passes``
    times; finally files and directories are deleted (when ``teardown``).
    """

    num_dirs: int = 10
    files_per_dir: int = 100
    stat_passes: int = 2
    teardown: bool = True
    batch_size: int = 64
    root: str = "/storm"

    def __post_init__(self) -> None:
        if self.num_dirs < 1 or self.files_per_dir < 0:
            raise ValueError("num_dirs must be >= 1 and files_per_dir >= 0")
        if self.stat_passes < 0:
            raise ValueError("stat_passes must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")


@dataclass(frozen=True)
class ZipfMixSpec:
    """Read/write/stat mix over an existing image's files.

    ``read_fraction``/``write_fraction``/``stat_fraction`` are relative
    weights (normalized internally).  File popularity is Zipfian with
    exponent ``zipf_s`` over a seeded random permutation of the image's
    files, so which files are hot varies with the seed but the skew does not.
    """

    num_ops: int = 10_000
    read_fraction: float = 6.0
    write_fraction: float = 2.0
    stat_fraction: float = 2.0
    zipf_s: float = 1.1
    mean_write_bytes: int = 16 * 1024
    batch_size: int = 64

    def __post_init__(self) -> None:
        if self.num_ops < 1:
            raise ValueError("num_ops must be positive")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if self.mean_write_bytes < 1:
            raise ValueError("mean_write_bytes must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        _normalized(
            (self.read_fraction, self.write_fraction, self.stat_fraction),
            "read/write/stat fractions",
        )


@dataclass(frozen=True)
class ChurnSpec:
    """Create/delete churn with interleaved accesses.

    Each step is either turnover (create a new file or delete a live one,
    split by ``delete_fraction``) or — with probability ``access_fraction`` —
    a read/write/stat access to a random live file at the configured ratio.
    ``rename_fraction`` of turnover steps instead rename a live file, which
    keeps the namespace moving without block churn.
    """

    num_ops: int = 10_000
    mean_file_size: int = 64 * 1024
    delete_fraction: float = 0.4
    access_fraction: float = 0.5
    rename_fraction: float = 0.02
    read_fraction: float = 5.0
    write_fraction: float = 3.0
    stat_fraction: float = 2.0
    batch_size: int = 64
    name_prefix: str = "/churn/f"

    def __post_init__(self) -> None:
        if self.num_ops < 1:
            raise ValueError("num_ops must be positive")
        if self.mean_file_size < 1:
            raise ValueError("mean_file_size must be positive")
        for label, value in (
            ("delete_fraction", self.delete_fraction),
            ("access_fraction", self.access_fraction),
            ("rename_fraction", self.rename_fraction),
        ):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{label} must lie in [0, 1)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        _normalized(
            (self.read_fraction, self.write_fraction, self.stat_fraction),
            "read/write/stat fractions",
        )


def synthesize_metadata_storm(spec: MetadataStormSpec, seed: int = 0) -> OperationTrace:
    """Generate an mdbench-style metadata storm trace."""
    rng = np.random.default_rng(seed)
    trace = OperationTrace(
        metadata={"synthesizer": "metadata_storm", "seed": int(seed), "spec": asdict(spec)}
    )
    batch_size = spec.batch_size
    counter = 0

    def emit(kind: str, path: str, size: int = 0) -> None:
        nonlocal counter
        trace.append(Operation(kind=kind, path=path, size=size, batch=counter // batch_size))
        counter += 1

    dir_paths = [f"{spec.root}/d{index:04d}" for index in range(spec.num_dirs)]
    file_paths: list[str] = []
    for dir_path in dir_paths:
        emit("mkdir", dir_path)
        for file_index in range(spec.files_per_dir):
            path = f"{dir_path}/f{file_index:05d}"
            emit("create", path)
            file_paths.append(path)
    for _ in range(spec.stat_passes):
        # mdbench stats in a shuffled order each pass to defeat readdir order.
        order = rng.permutation(len(file_paths))
        for index in order:
            emit("stat", file_paths[int(index)])
    if spec.teardown:
        for path in file_paths:
            emit("delete", path)
        for dir_path in reversed(dir_paths):
            emit("delete", dir_path)
    return trace


def synthesize_zipf_mix(
    image: FileSystemImage, spec: ZipfMixSpec, seed: int = 0
) -> OperationTrace:
    """Generate a Zipf-popularity read/write/stat mix over ``image``'s files.

    Path selection and op-kind selection are fully vectorized: one
    ``rng.choice`` draw over the Zipf probability vector picks the target
    file of every operation, one draw picks its kind, and one exponential
    draw sizes the writes.
    """
    paths = [file_node.path() for file_node in image.tree.files]
    if not paths:
        raise ValueError("cannot synthesize a Zipf mix over an image with no files")
    sizes = np.asarray([file_node.size for file_node in image.tree.files], dtype=np.int64)

    rng = np.random.default_rng(seed)
    trace = OperationTrace(
        metadata={
            "synthesizer": "zipf_mix",
            "seed": int(seed),
            "spec": asdict(spec),
            "image_files": len(paths),
        }
    )

    # Zipf popularity over a seeded permutation: rank r gets weight r^-s.
    permutation = rng.permutation(len(paths))
    ranks = np.empty(len(paths), dtype=np.int64)
    ranks[permutation] = np.arange(1, len(paths) + 1)
    weights = np.power(ranks.astype(float), -spec.zipf_s)
    probabilities = weights / weights.sum()

    targets = rng.choice(len(paths), size=spec.num_ops, p=probabilities)
    kind_probs = _normalized(
        (spec.read_fraction, spec.write_fraction, spec.stat_fraction),
        "read/write/stat fractions",
    )
    kinds = rng.choice(3, size=spec.num_ops, p=kind_probs)
    write_sizes = np.maximum(
        1, rng.exponential(spec.mean_write_bytes, size=spec.num_ops)
    ).astype(np.int64)

    kind_names = ("read", "write", "stat")
    batch_size = spec.batch_size
    append = trace.append
    for index in range(spec.num_ops):
        target = int(targets[index])
        kind = int(kinds[index])
        if kind == 0:
            size = int(sizes[target])
        elif kind == 1:
            size = int(write_sizes[index])
        else:
            size = 0
        append(
            Operation(
                kind=kind_names[kind],
                path=paths[target],
                size=size,
                batch=index // batch_size,
            )
        )
    return trace


def synthesize_churn(spec: ChurnSpec, seed: int = 0) -> OperationTrace:
    """Generate a create/delete churn trace with interleaved accesses."""
    rng = np.random.default_rng(seed)
    trace = OperationTrace(
        metadata={"synthesizer": "churn", "seed": int(seed), "spec": asdict(spec)}
    )
    kind_probs = _normalized(
        (spec.read_fraction, spec.write_fraction, spec.stat_fraction),
        "read/write/stat fractions",
    )
    access_kinds = ("read", "write", "stat")

    live: list[str] = []
    live_sizes: dict[str, int] = {}
    counter = 0
    batch_size = spec.batch_size
    for index in range(spec.num_ops):
        batch = index // batch_size
        if live and rng.random() < spec.access_fraction:
            victim = live[int(rng.integers(len(live)))]
            kind = access_kinds[int(rng.choice(3, p=kind_probs))]
            if kind == "read":
                size = live_sizes[victim]
            elif kind == "write":
                size = int(max(1, rng.exponential(spec.mean_file_size / 4)))
                live_sizes[victim] += size
            else:
                size = 0
            trace.append(
                Operation(
                    kind=kind, path=victim, size=size, append=kind == "write", batch=batch
                )
            )
            continue
        if live and rng.random() < spec.rename_fraction:
            victim_index = int(rng.integers(len(live)))
            old = live[victim_index]
            new = f"{spec.name_prefix}{counter}"
            counter += 1
            live[victim_index] = new
            live_sizes[new] = live_sizes.pop(old)
            trace.append(Operation(kind="rename", path=old, dest=new, batch=batch))
            continue
        if live and rng.random() < spec.delete_fraction:
            victim_index = int(rng.integers(len(live)))
            victim = live.pop(victim_index)
            live_sizes.pop(victim)
            trace.append(Operation(kind="delete", path=victim, batch=batch))
        else:
            name = f"{spec.name_prefix}{counter}"
            counter += 1
            size = int(max(1, rng.exponential(spec.mean_file_size)))
            live.append(name)
            live_sizes[name] = size
            trace.append(Operation(kind="create", path=name, size=size, batch=batch))
    return trace
