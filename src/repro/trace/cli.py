"""``impressions trace`` subcommands.

Three verbs, composable through pipes (``-`` means stdout/stdin)::

    impressions trace synth --kind churn --ops 50000 --seed 1 --out trace.jsonl
    impressions trace synth --kind zipf --ops 50000 --files 2000 | \\
        impressions trace replay --files 2000
    impressions trace age --layout-score 0.7 --files 2000 --out aging.jsonl

``synth`` writes a JSONL trace; ``replay`` executes one against a freshly
generated image (or a standalone disk when no image parameters are given) and
prints per-op-class statistics; ``age`` generates an image, ages it to the
requested layout score via churn replay, and optionally saves the trace it
replayed.  Image parameters (``--files``/``--dirs``/``--size-gb``/
``--image-seed``) are deterministic, so the image a trace was synthesized
against can be regenerated exactly on the replay side of a pipe.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from repro.bench.common import format_rows
from repro.core.config import GIB, ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.core.impressions import Impressions
from repro.trace.aging import TraceAger
from repro.trace.ops import OperationTrace, TraceFormatError
from repro.trace.replay import ReplayResult, TraceReplayer
from repro.trace.synthesize import (
    ChurnSpec,
    MetadataStormSpec,
    ZipfMixSpec,
    synthesize_churn,
    synthesize_metadata_storm,
    synthesize_zipf_mix,
)

__all__ = ["main", "build_parser"]


def _add_image_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("image", "image to run the trace against")
    group.add_argument("--files", type=int, default=None, help="number of files in the image")
    group.add_argument("--dirs", type=int, default=None, help="number of directories")
    group.add_argument("--size-gb", type=float, default=None, help="image size in GiB")
    group.add_argument("--image-seed", type=int, default=42, help="image generation seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="impressions trace",
        description="Synthesize, replay, and age with operation traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    synth = commands.add_parser("synth", help="synthesize an operation trace")
    synth.add_argument(
        "--kind", choices=["churn", "zipf", "storm"], default="churn", help="trace family"
    )
    synth.add_argument("--ops", type=int, default=10_000, help="number of operations")
    synth.add_argument("--seed", type=int, default=0, help="trace synthesis seed")
    synth.add_argument("--batch-size", type=int, default=64, help="arrival batch size")
    synth.add_argument(
        "--zipf-s", type=float, default=1.1, help="Zipf popularity exponent (zipf kind)"
    )
    synth.add_argument(
        "--read-fraction", type=float, default=None, help="relative read weight"
    )
    synth.add_argument(
        "--write-fraction", type=float, default=None, help="relative write weight"
    )
    synth.add_argument(
        "--stat-fraction", type=float, default=None, help="relative stat weight"
    )
    synth.add_argument(
        "--out", default="-", metavar="PATH", help="trace output path ('-' for stdout)"
    )
    _add_image_arguments(synth)

    replay = commands.add_parser("replay", help="replay a JSONL trace")
    replay.add_argument(
        "--trace", default="-", metavar="PATH", help="trace input path ('-' for stdin)"
    )
    replay.add_argument("--warm-cache", action="store_true", help="warm the buffer cache first")
    replay.add_argument(
        "--stats", metavar="PATH", default=None, help="write replay statistics (JSON) here"
    )
    replay.add_argument(
        "--disk-blocks",
        type=int,
        default=262_144,
        help="standalone disk size (blocks) when no image is requested",
    )
    replay.add_argument("--quiet", action="store_true", help="only print the summary line")
    replay.add_argument(
        "--obs-dir",
        metavar="PATH",
        default=None,
        help=(
            "observe the replay and write telemetry artifacts (event log, "
            "Chrome trace, Prometheus snapshot, summary) into this directory"
        ),
    )
    _add_image_arguments(replay)

    age = commands.add_parser("age", help="age an image to a target layout score")
    age.add_argument(
        "--layout-score", type=float, required=True, help="target layout score in (0, 1]"
    )
    age.add_argument("--seed", type=int, default=0, help="aging churn seed")
    age.add_argument(
        "--out", metavar="PATH", default=None, help="save the replayed aging trace here"
    )
    age.add_argument(
        "--stats", metavar="PATH", default=None, help="write aging statistics (JSON) here"
    )
    _add_image_arguments(age)

    return parser


def _image_requested(args: argparse.Namespace) -> bool:
    return args.files is not None or args.dirs is not None or args.size_gb is not None


def _generate_image(args: argparse.Namespace) -> FileSystemImage:
    config = ImpressionsConfig(
        fs_size_bytes=int(args.size_gb * GIB) if args.size_gb is not None else None,
        num_files=args.files,
        num_directories=args.dirs,
        seed=args.image_seed,
    )
    return Impressions(config).generate()


def _fractions(args: argparse.Namespace, defaults: tuple[float, float, float]):
    read = args.read_fraction if args.read_fraction is not None else defaults[0]
    write = args.write_fraction if args.write_fraction is not None else defaults[1]
    stat = args.stat_fraction if args.stat_fraction is not None else defaults[2]
    return read, write, stat


def _run_synth(args: argparse.Namespace) -> int:
    if args.kind == "zipf":
        image = _generate_image(args)
        read, write, stat = _fractions(args, (6.0, 2.0, 2.0))
        spec = ZipfMixSpec(
            num_ops=args.ops,
            read_fraction=read,
            write_fraction=write,
            stat_fraction=stat,
            zipf_s=args.zipf_s,
            batch_size=args.batch_size,
        )
        trace = synthesize_zipf_mix(image, spec, seed=args.seed)
    elif args.kind == "storm":
        files_per_dir = max(1, args.ops // 40)
        spec_storm = MetadataStormSpec(
            num_dirs=10, files_per_dir=files_per_dir, batch_size=args.batch_size
        )
        trace = synthesize_metadata_storm(spec_storm, seed=args.seed)
    else:
        read, write, stat = _fractions(args, (5.0, 3.0, 2.0))
        spec_churn = ChurnSpec(
            num_ops=args.ops,
            read_fraction=read,
            write_fraction=write,
            stat_fraction=stat,
            batch_size=args.batch_size,
        )
        trace = synthesize_churn(spec_churn, seed=args.seed)

    if args.out == "-":
        trace.write_jsonl(sys.stdout)
    else:
        trace.save(args.out)
        print(f"trace with {len(trace)} operations written to {args.out}", file=sys.stderr)
    return 0


def _format_replay(result: ReplayResult) -> str:
    rows = [
        [kind, stats.count, stats.skipped, stats.mean_ms, stats.max_ms, stats.bytes_moved]
        for kind, stats in sorted(result.per_kind.items())
    ]
    table = format_rows(
        ["op", "count", "skipped", "mean ms", "max ms", "bytes"],
        rows,
        title="Replay statistics by operation class",
    )
    lines = [table, ""]
    lines.append(
        f"executed {result.executed} ops ({result.skipped} skipped) in "
        f"{result.simulated_ms:.1f} simulated ms; cache hit ratio "
        f"{result.cache_hit_ratio:.3f}"
    )
    if result.wall_seconds > 0:
        lines.append(
            f"replay engine: {result.wall_seconds:.3f} s wall, "
            f"{result.ops_per_second:,.0f} ops/sec"
        )
    if result.layout_score_before is not None and result.layout_score_after is not None:
        lines.append(
            f"layout score: {result.layout_score_before:.3f} -> "
            f"{result.layout_score_after:.3f}"
        )
    return "\n".join(lines)


def _stats_payload(result: ReplayResult) -> dict:
    payload = result.as_dict()
    payload["wall_seconds"] = result.wall_seconds
    payload["ops_per_second"] = result.ops_per_second
    return payload


def _run_replay(args: argparse.Namespace) -> int:
    if args.trace == "-":
        trace = OperationTrace.read_jsonl(sys.stdin)
    else:
        trace = OperationTrace.load(args.trace)

    telemetry = None
    if args.obs_dir:
        from repro import obs

        telemetry = obs.Telemetry(run_id="trace-replay")

    from repro.core.cli import obs_use_scope

    with obs_use_scope(telemetry):
        image = _generate_image(args) if _image_requested(args) else None
        replayer = TraceReplayer(image, disk_blocks=args.disk_blocks)
        if args.warm_cache:
            replayer.warm_cache()
        result = replayer.replay(trace)

    if image is not None and image.report is not None:
        image.report.record_trace(
            trace.metadata.get("synthesizer", "trace"), result.as_dict()
        )

    if telemetry is not None:
        from repro import obs

        if image is not None and image.report is not None:
            image.report.record_telemetry(obs.summary_dict(telemetry))
        paths = obs.save(telemetry, args.obs_dir)
        print(
            f"telemetry written to {args.obs_dir} ({', '.join(sorted(paths))})",
            file=sys.stderr,
        )

    print(
        f"replayed {result.total_operations} ops "
        f"({result.ops_per_second:,.0f} ops/sec, hit ratio {result.cache_hit_ratio:.3f})"
    )
    if not args.quiet:
        print()
        print(_format_replay(result))
    if args.stats:
        with open(args.stats, "w", encoding="utf-8") as handle:
            json.dump(_stats_payload(result), handle, indent=2, sort_keys=True)
        print(f"replay statistics written to {args.stats}")
    return 0


def _run_age(args: argparse.Namespace) -> int:
    if not _image_requested(args):
        raise SystemExit("trace age requires image parameters (--files/--dirs/--size-gb)")
    image = _generate_image(args)
    ager = TraceAger(image, args.layout_score, np.random.default_rng(args.seed))
    result = ager.age()
    print(
        f"aged image from layout score {result.initial_score:.3f} to "
        f"{result.achieved_score:.3f} (target {result.target_score:.3f}) by rewriting "
        f"{result.files_rewritten} files in {len(result.trace)} operations"
    )
    if args.out:
        result.trace.save(args.out)
        print(f"aging trace written to {args.out}")
    if args.stats:
        payload = {
            "target_score": result.target_score,
            "achieved_score": result.achieved_score,
            "initial_score": result.initial_score,
            "files_rewritten": result.files_rewritten,
            "operations": len(result.trace),
            "replay": result.replay.as_dict(),
        }
        with open(args.stats, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"aging statistics written to {args.stats}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``impressions trace ...``."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "synth":
            return _run_synth(args)
        if args.command == "replay":
            return _run_replay(args)
        return _run_age(args)
    except (TraceFormatError, ValueError) as error:
        # Bad parameter combinations and malformed trace input are user
        # errors, not crashes: report them the way argparse would.
        raise SystemExit(f"impressions trace {args.command}: error: {error}")
    except OSError as error:
        raise SystemExit(f"impressions trace {args.command}: error: {error}")
