"""Trace-driven aging: reach a target layout score by replaying churn.

An alternative to :class:`repro.layout.fragmenter.Fragmenter`, which steers
the layout score *while the image is being created*.  The trace-driven ager
takes an already-generated image and ages it the way a real file system ages:
by running a workload.  It synthesizes a churn trace — delete a file, recreate
it in chunks with short-lived temporary files wedged between the chunks, drop
the temporaries — and pushes every operation through the
:class:`~repro.trace.replay.TraceReplayer`, i.e. through the allocator's
public create/extend/free paths.  Holes left by the temporaries split the
rewritten file and seed fragmentation for later rewrites, exactly the
create/delete trick of Section 3.7, but expressed as a replayable trace.

A deficit controller measures the aggregate layout score from the disk's
per-file extent caches (block and run counts, O(1) per file — no block map
is ever expanded) after every rewritten file, so the loop stops as soon as
the score crosses the target; accuracy is limited only by the contribution of
a single file (far inside the ±0.05 the acceptance bar asks for).  The full
operation stream is returned as an :class:`~repro.trace.ops.OperationTrace`,
so an aging run can be saved, inspected, and replayed elsewhere.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.image import FileSystemImage
from repro.trace.ops import Operation, OperationTrace
from repro.trace.replay import ReplayResult, TraceReplayer

__all__ = ["TraceAgingResult", "TraceAger", "age_image_to_score"]


@dataclass
class TraceAgingResult:
    """Outcome of a trace-driven aging run."""

    target_score: float
    achieved_score: float
    initial_score: float
    files_rewritten: int
    trace: OperationTrace
    replay: ReplayResult

    @property
    def error(self) -> float:
        return abs(self.achieved_score - self.target_score)


class TraceAger:
    """Ages a generated image toward a target layout score via churn replay.

    Args:
        image: the image to age (must have a simulated disk).
        target_score: desired aggregate layout score in ``(0, 1]``.
        rng: drives victim selection order.
        temp_blocks: size (in blocks) of the wedge temporaries.
        max_splits_per_file: hard cap on the wedges inserted into one rewrite
            (bounds the operation count a single pathological file can cost).
        max_passes: how many sweeps over the files the controller may take to
            close the remaining deficit.
    """

    def __init__(
        self,
        image: FileSystemImage,
        target_score: float,
        rng: np.random.Generator,
        temp_blocks: int = 1,
        max_splits_per_file: int = 4096,
        max_passes: int = 4,
    ) -> None:
        if image.disk is None:
            raise ValueError("trace-driven aging requires an image with a simulated disk")
        if not 0.0 < target_score <= 1.0:
            raise ValueError("target_score must lie in (0, 1]")
        self._image = image
        self._target = target_score
        self._rng = rng
        self._temp_blocks = temp_blocks
        self._max_splits = max_splits_per_file
        self._max_passes = max_passes
        self._temp_counter = 0
        # Wedge temporaries stay alive until the end of the run: deleting them
        # eagerly would leave low-address holes that first-fit then hands to
        # the next victim's chunks, defeating the wedge.  They are flushed
        # early only when the disk runs short of space.
        self._live_temps: list[str] = []

    def age(self) -> TraceAgingResult:
        """Run churn until the aggregate score crosses the target."""
        start = time.perf_counter()
        image = self._image
        disk = image.disk
        assert disk is not None
        block_size = disk.geometry.block_size

        files = [node for node in image.tree.files if node.size > 0]
        names = [node.path() for node in files]
        # Per-file (blocks, runs) straight off the disk's extent caches: no
        # block list is ever expanded during aging.
        counts = {
            name: (disk.block_count(name), disk.run_count(name))
            for name in names
            if disk.has_file(name)
        }
        initial = _score_from_counts(counts.values())

        # Aggregate bookkeeping over non-first blocks, maintained exactly.
        candidates = sum(blocks - 1 for blocks, _ in counts.values() if blocks > 1)
        optimal = sum(blocks - runs for blocks, runs in counts.values() if blocks > 0)

        trace = OperationTrace(
            metadata={
                "synthesizer": "trace_aging",
                "target_score": self._target,
                "temp_blocks": self._temp_blocks,
            }
        )
        replayer = TraceReplayer(image)
        rewritten = 0

        # Deficit controller: rewrite files until the aggregate score crosses
        # the target.  The first pass fragments each victim proportionally
        # (each file individually approaches the target score); later passes
        # close whatever deficit the proportional plan left, greedily.
        batch = 0
        if candidates > 0:
            done = False
            for pass_number in range(self._max_passes):
                progressed = False
                order = self._rng.permutation(len(names))
                for index in order:
                    name = names[int(index)]
                    entry = counts.get(name)
                    if entry is None or entry[0] <= 1:
                        continue
                    file_blocks, file_runs = entry
                    current_score = optimal / candidates if candidates else 1.0
                    deficit = (1.0 - self._target) * candidates - (candidates - optimal)
                    if deficit < 1.0 or current_score <= self._target:
                        done = True
                        break
                    n1 = file_blocks - 1
                    file_non_optimal = file_runs - 1
                    if pass_number == 0:
                        planned_total = math.ceil((1.0 - self._target) * n1) + 8
                    else:
                        planned_total = file_non_optimal + int(deficit)
                    splits = min(planned_total, n1, file_non_optimal + int(deficit))
                    splits = min(splits, self._max_splits)
                    if splits <= file_non_optimal:
                        continue
                    # The disk knows blocks, not bytes; block count * block
                    # size is the allocation-equivalent size a rewrite must
                    # preserve.
                    size_bytes = file_blocks * block_size
                    needed_free = file_blocks + (splits + 2) * self._temp_blocks
                    if disk.free_blocks < needed_free:
                        self._flush_temps(replayer, trace, batch)
                        if disk.free_blocks < needed_free:
                            # Even with every temporary gone the rewrite would
                            # not fit whole; a partial rewrite loses blocks, so
                            # leave this victim alone.
                            continue
                    old_optimal = file_blocks - file_runs
                    self._rewrite_fragmented(replayer, trace, name, size_bytes, splits, batch)
                    batch += 1
                    rewritten += 1
                    progressed = True
                    new_blocks = disk.block_count(name)
                    new_runs = disk.run_count(name)
                    counts[name] = (new_blocks, new_runs)
                    optimal += (new_blocks - new_runs) - old_optimal
                    candidates += (new_blocks - 1) - (file_blocks - 1)
                if done or not progressed:
                    break
        self._flush_temps(replayer, trace, batch)

        achieved = _score_from_counts(
            (disk.block_count(name), disk.run_count(name))
            for name in names
            if disk.has_file(name)
        )
        self._sync_tree_blocklists(files)
        replay_result = replayer.result()
        replay_result.layout_score_before = initial
        replay_result.layout_score_after = achieved

        elapsed = time.perf_counter() - start
        timings = image.extras.get("timings")
        if timings is not None:
            timings.extras["trace_aging"] = timings.extras.get("trace_aging", 0.0) + elapsed
        if image.report is not None:
            image.report.record_derived("trace_aging_score", achieved)

        return TraceAgingResult(
            target_score=self._target,
            achieved_score=achieved,
            initial_score=initial,
            files_rewritten=rewritten,
            trace=trace,
            replay=replay_result,
        )

    # Internal helpers --------------------------------------------------------

    def _rewrite_fragmented(
        self,
        replayer: TraceReplayer,
        trace: OperationTrace,
        name: str,
        size_bytes: int,
        splits: int,
        batch: int,
    ) -> None:
        """Delete ``name`` and recreate it in ``splits + 1`` wedge-separated chunks."""
        disk = replayer.disk
        block_size = disk.geometry.block_size
        needed_blocks = disk.blocks_needed(size_bytes)
        chunks = _chunk_blocks(needed_blocks, splits + 1)

        execute = replayer.execute
        append = trace.append

        def run(operation: Operation) -> None:
            append(operation)
            execute(operation)

        run(Operation(kind="delete", path=name, batch=batch))
        remaining = size_bytes
        for index, chunk in enumerate(chunks):
            chunk_bytes = min(chunk * block_size, remaining)
            remaining -= chunk_bytes
            if index == 0:
                run(Operation(kind="create", path=name, size=chunk_bytes, batch=batch))
                continue
            temp = f"/.aging-tmp-{self._temp_counter}"
            self._temp_counter += 1
            run(
                Operation(
                    kind="create", path=temp, size=self._temp_blocks * block_size, batch=batch
                )
            )
            self._live_temps.append(temp)
            run(Operation(kind="write", path=name, size=chunk_bytes, append=True, batch=batch))

    def _flush_temps(
        self, replayer: TraceReplayer, trace: OperationTrace, batch: int
    ) -> None:
        """Delete every live wedge temporary (end of run or space pressure)."""
        for temp in self._live_temps:
            operation = Operation(kind="delete", path=temp, batch=batch)
            trace.append(operation)
            replayer.execute(operation)
        self._live_temps.clear()

    def _sync_tree_blocklists(self, files: list) -> None:
        disk = self._image.disk
        assert disk is not None
        for node in files:
            name = node.path()
            if disk.has_file(name):
                node.extents = disk.extents_of(name)
                node.first_block = node.extents[0][0] if node.extents else None


def age_image_to_score(
    image: FileSystemImage,
    target_score: float,
    seed: int = 0,
    **kwargs,
) -> TraceAgingResult:
    """Convenience wrapper: age ``image`` to ``target_score`` with a seeded rng."""
    rng = np.random.default_rng(seed)
    return TraceAger(image, target_score, rng, **kwargs).age()


def _score_from_counts(counts) -> float:
    """Aggregate layout score from per-file ``(blocks, runs)`` pairs."""
    optimal = 0
    candidates = 0
    for blocks, runs in counts:
        if blocks <= 1:
            continue
        candidates += blocks - 1
        optimal += blocks - runs
    if candidates == 0:
        return 1.0
    return optimal / candidates


def _chunk_blocks(needed_blocks: int, num_chunks: int) -> list[int]:
    num_chunks = min(num_chunks, needed_blocks)
    base = needed_blocks // num_chunks
    remainder = needed_blocks % num_chunks
    return [base + (1 if index < remainder else 0) for index in range(num_chunks)]
