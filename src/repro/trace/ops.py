"""Typed operation model and JSONL trace container.

The replay-trace taxonomy (Kahanwal & Singh) distinguishes metadata
operations (``create``, ``stat``, ``delete``, ``rename``, ``mkdir``) from data
operations (``read``, ``write``).  :class:`Operation` is one record of either
kind; :class:`OperationTrace` is an append-friendly in-memory sequence of them
with a line-oriented JSONL serialization, so traces can be piped between the
``impressions trace`` subcommands, stored next to a reproducibility report,
and diffed byte-for-byte when checking determinism.

Serialization is canonical: keys are sorted, separators are fixed, and fields
holding their default value are omitted, so the same trace always produces
the same bytes.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, replace
from typing import IO, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "OP_KINDS",
    "DATA_OP_KINDS",
    "METADATA_OP_KINDS",
    "Operation",
    "OperationTrace",
    "TraceFormatError",
    "merge_traces",
]

#: Every operation kind the trace model understands.
OP_KINDS = ("create", "write", "read", "stat", "delete", "rename", "mkdir")
#: Kinds that move file data (and therefore carry a byte count).
DATA_OP_KINDS = frozenset({"write", "read"})
#: Kinds that only touch metadata.
METADATA_OP_KINDS = frozenset(OP_KINDS) - DATA_OP_KINDS

_KIND_SET = frozenset(OP_KINDS)


class TraceFormatError(ValueError):
    """Raised when JSONL trace input cannot be parsed."""


@dataclass(frozen=True, slots=True)
class Operation:
    """One operation of a trace.

    Attributes:
        kind: one of :data:`OP_KINDS`.
        path: the file or directory the operation targets.
        size: byte count for ``create``/``write``/``read`` (0 elsewhere).
        dest: rename target path (empty for every other kind).
        append: for ``write`` only — True appends ``size`` bytes past EOF
            (allocating new blocks), False overwrites in place the way a
            steady-state read/write mix does.
        batch: arrival-batch index; synthesizers group operations that
            "arrive" together (think one client request) under one index,
            and the replayer reports batch counts back.
        client: tag of the client that issued the operation (empty for
            single-client traces); :func:`merge_traces` stamps it and the
            replayer reports per-client statistics when it is set.
    """

    kind: str
    path: str
    size: int = 0
    dest: str = ""
    append: bool = False
    batch: int = 0
    client: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KIND_SET:
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if not self.path:
            raise ValueError("operation path must be non-empty")
        if self.size < 0:
            raise ValueError("operation size must be non-negative")
        if self.batch < 0:
            raise ValueError("operation batch must be non-negative")
        if self.kind == "rename" and not self.dest:
            raise ValueError("rename requires a dest path")
        if self.kind != "rename" and self.dest:
            raise ValueError(f"dest is only valid for rename, not {self.kind!r}")
        if self.append and self.kind != "write":
            raise ValueError(f"append is only valid for write, not {self.kind!r}")

    @property
    def is_data(self) -> bool:
        return self.kind in DATA_OP_KINDS

    def to_json_line(self) -> str:
        """Canonical single-line JSON encoding (defaults omitted)."""
        record: dict[str, object] = {"op": self.kind, "path": self.path}
        if self.size:
            record["size"] = self.size
        if self.dest:
            record["dest"] = self.dest
        if self.append:
            record["append"] = True
        if self.batch:
            record["batch"] = self.batch
        if self.client:
            record["client"] = self.client
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json_line(cls, line: str) -> "Operation":
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceFormatError(f"malformed trace line: {line!r}") from error
        if not isinstance(record, dict) or "op" not in record or "path" not in record:
            raise TraceFormatError(f"trace line missing op/path: {line!r}")
        if not isinstance(record["op"], str) or not isinstance(record["path"], str):
            raise TraceFormatError(f"trace line op/path must be strings: {line!r}")
        if not isinstance(record.get("dest", ""), str):
            raise TraceFormatError(f"trace line dest must be a string: {line!r}")
        if not isinstance(record.get("client", ""), str):
            raise TraceFormatError(f"trace line client must be a string: {line!r}")
        try:
            return cls(
                kind=record["op"],
                path=record["path"],
                size=int(record.get("size", 0)),
                dest=record.get("dest", ""),
                append=bool(record.get("append", False)),
                batch=int(record.get("batch", 0)),
                client=record.get("client", ""),
            )
        except (TypeError, ValueError) as error:
            raise TraceFormatError(f"invalid trace line {line!r}: {error}") from error


#: Header line marker: the first line of a serialized trace is a metadata
#: record rather than an operation.
_HEADER_KEY = "impressions_trace"
_FORMAT_VERSION = 1


class OperationTrace:
    """An append-friendly, replayable sequence of operations.

    The trace carries a ``metadata`` mapping (synthesizer name, parameters,
    seed) that is serialized as a JSONL header line, so a trace file is
    self-describing without affecting replay.
    """

    def __init__(
        self,
        operations: Iterable[Operation] = (),
        metadata: Mapping[str, object] | None = None,
    ) -> None:
        self._operations: list[Operation] = list(operations)
        self.metadata: dict[str, object] = dict(metadata or {})

    # Construction ---------------------------------------------------------

    def append(self, operation: Operation) -> None:
        self._operations.append(operation)

    def extend(self, operations: Iterable[Operation]) -> None:
        self._operations.extend(operations)

    def add(
        self,
        kind: str,
        path: str,
        size: int = 0,
        dest: str = "",
        append: bool = False,
        batch: int = 0,
        client: str = "",
    ) -> Operation:
        """Create an operation, append it to the trace, and return it."""
        operation = Operation(
            kind=kind, path=path, size=size, dest=dest, append=append, batch=batch, client=client
        )
        self._operations.append(operation)
        return operation

    # Access ---------------------------------------------------------------

    @property
    def operations(self) -> list[Operation]:
        return list(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __getitem__(self, index: int) -> Operation:
        return self._operations[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OperationTrace):
            return NotImplemented
        return self._operations == other._operations and self.metadata == other.metadata

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for operation in self._operations:
            counts[operation.kind] = counts.get(operation.kind, 0) + 1
        return counts

    def bytes_by_kind(self) -> dict[str, int]:
        """Total bytes moved per data-operation kind."""
        totals: dict[str, int] = {}
        for operation in self._operations:
            if operation.is_data:
                totals[operation.kind] = totals.get(operation.kind, 0) + operation.size
        return totals

    def num_batches(self) -> int:
        if not self._operations:
            return 0
        return max(operation.batch for operation in self._operations) + 1

    def client_tags(self) -> tuple[str, ...]:
        """Distinct non-empty client tags, in first-appearance order."""
        seen: dict[str, None] = {}
        for operation in self._operations:
            if operation.client and operation.client not in seen:
                seen[operation.client] = None
        return tuple(seen)

    def summary(self) -> dict:
        return {
            "operations": len(self._operations),
            "batches": self.num_batches(),
            "counts_by_kind": self.counts_by_kind(),
            "bytes_by_kind": self.bytes_by_kind(),
        }

    # Serialization --------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize header + one line per operation (canonical bytes)."""
        buffer = io.StringIO()
        self.write_jsonl(buffer)
        return buffer.getvalue()

    def write_jsonl(self, stream: IO[str]) -> None:
        header = {
            _HEADER_KEY: _FORMAT_VERSION,
            "operations": len(self._operations),
            "metadata": self.metadata,
        }
        stream.write(json.dumps(header, sort_keys=True, separators=(",", ":")))
        stream.write("\n")
        for operation in self._operations:
            stream.write(operation.to_json_line())
            stream.write("\n")

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            self.write_jsonl(handle)

    @classmethod
    def from_jsonl(cls, text: str) -> "OperationTrace":
        return cls.read_jsonl(io.StringIO(text))

    @classmethod
    def read_jsonl(cls, stream: IO[str]) -> "OperationTrace":
        """Parse a trace from a JSONL stream (header line optional)."""
        trace = cls()
        first = True
        for line in stream:
            line = line.strip()
            if not line:
                continue
            if first:
                first = False
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise TraceFormatError(f"malformed trace line: {line!r}") from error
                if isinstance(record, dict) and _HEADER_KEY in record:
                    version = record[_HEADER_KEY]
                    if version != _FORMAT_VERSION:
                        raise TraceFormatError(f"unsupported trace version {version!r}")
                    trace.metadata = dict(record.get("metadata", {}))
                    continue
            trace.append(Operation.from_json_line(line))
        return trace

    @classmethod
    def load(cls, path: str) -> "OperationTrace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.read_jsonl(handle)


def merge_traces(
    *traces: OperationTrace, tags: Sequence[str] | None = None
) -> OperationTrace:
    """Interleave per-client traces into one arrival-ordered stream.

    Each input trace models one client; its arrival-batch indices are treated
    as a shared clock, so the merged stream carries batch 0 of every client
    before batch 1 of any client (clients rotate in ``tags`` order within a
    batch, and each client's own operation order is preserved).  Every merged
    operation is stamped with its client tag (``client0``, ``client1``, …
    unless ``tags`` overrides them); operations already carrying a tag keep
    it.  Paths are shared namespace: if two clients touch the same path the
    merged trace really does model that contention (synthesizers accept
    per-client roots/prefixes when isolation is wanted).

    Args:
        traces: one trace per client (at least one).
        tags: per-client tags; must be unique and match ``len(traces)``.

    Returns:
        A new :class:`OperationTrace`; inputs are not modified.
    """
    if not traces:
        raise ValueError("merge_traces requires at least one trace")
    if tags is None:
        tags = tuple(f"client{index}" for index in range(len(traces)))
    else:
        tags = tuple(tags)
        if len(tags) != len(traces):
            raise ValueError(f"got {len(traces)} traces but {len(tags)} tags")
        if len(set(tags)) != len(tags):
            raise ValueError("client tags must be unique")
        if not all(tags):
            raise ValueError("client tags must be non-empty")

    entries: list[tuple[int, int, int, Operation]] = []
    for client_index, trace in enumerate(traces):
        for sequence, operation in enumerate(trace):
            entries.append((operation.batch, client_index, sequence, operation))
    entries.sort(key=lambda entry: entry[:3])

    merged = OperationTrace(
        metadata={
            "merged": True,
            "clients": list(tags),
            "operations_per_client": [len(trace) for trace in traces],
            "sources": [dict(trace.metadata) for trace in traces],
        }
    )
    for _batch, client_index, _sequence, operation in entries:
        if operation.client:
            merged.append(operation)
        else:
            merged.append(replace(operation, client=tags[client_index]))
    return merged
