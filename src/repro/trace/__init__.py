"""Synthetic operation traces: generation, replay, and trace-driven aging.

Impressions makes statically realistic images; this package supplies the
dynamic half of benchmarking — parameterized, replayable streams of metadata
and data operations in the spirit of the replay-trace taxonomy (Kahanwal &
Singh) and 2DIO's configurable trace generation:

* :mod:`repro.trace.ops` — the typed operation model and JSONL trace format.
* :mod:`repro.trace.synthesize` — metadata storms, Zipf-popularity
  read/write mixes over a generated image, and create/delete churn.
* :mod:`repro.trace.replay` — replay engine over the namespace tree,
  simulated disk, and buffer cache, with per-op-class latency statistics.
* :mod:`repro.trace.aging` — trace-driven aging to a target layout score,
  an alternative to :class:`repro.layout.fragmenter.Fragmenter`.
* :mod:`repro.trace.cli` — the ``impressions trace synth|replay|age``
  subcommands.
"""

from repro.trace.aging import TraceAger, TraceAgingResult, age_image_to_score
from repro.trace.ops import (
    DATA_OP_KINDS,
    METADATA_OP_KINDS,
    OP_KINDS,
    Operation,
    OperationTrace,
    TraceFormatError,
    merge_traces,
)
from repro.trace.replay import OpClassStats, ReplayCostModel, ReplayResult, TraceReplayer
from repro.trace.synthesize import (
    ChurnSpec,
    MetadataStormSpec,
    ZipfMixSpec,
    synthesize_churn,
    synthesize_metadata_storm,
    synthesize_zipf_mix,
)

__all__ = [
    "OP_KINDS",
    "DATA_OP_KINDS",
    "METADATA_OP_KINDS",
    "Operation",
    "OperationTrace",
    "TraceFormatError",
    "merge_traces",
    "ChurnSpec",
    "MetadataStormSpec",
    "ZipfMixSpec",
    "synthesize_churn",
    "synthesize_metadata_storm",
    "synthesize_zipf_mix",
    "TraceReplayer",
    "ReplayResult",
    "ReplayCostModel",
    "OpClassStats",
    "TraceAger",
    "TraceAgingResult",
    "age_image_to_score",
]
