"""Trace replay engine.

Executes an :class:`~repro.trace.ops.OperationTrace` against the triple the
rest of the repo already models — :class:`~repro.namespace.tree.FileSystemTree`
namespace, :class:`~repro.layout.disk.SimulatedDisk` allocator, and
:class:`~repro.workloads.cache.BufferCache` — and reports per-op-class
simulated latency and byte counts derived from the disk's
:class:`~repro.layout.disk.DiskGeometry` cost model.

Two ways to drive it:

* :meth:`TraceReplayer.replay` runs a whole trace and returns a
  :class:`ReplayResult`;
* :meth:`TraceReplayer.execute` applies a single operation, for callers (like
  the trace-driven ager) that interleave replay with measurement.

All simulated statistics are a pure function of the trace and the initial
disk/cache state: replaying the same trace twice yields identical
:meth:`ReplayResult.as_dict` output.  Wall-clock throughput is reported
separately (:attr:`ReplayResult.wall_seconds`) so determinism checks are not
polluted by timing noise.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.image import FileSystemImage
from repro.layout.disk import AllocationError, DiskGeometry, DoubleFreeError, SimulatedDisk
from repro.obs import core as obs_core
from repro.trace.ops import Operation, OperationTrace
from repro.workloads.cache import BufferCache

__all__ = ["ReplayCostModel", "OpClassStats", "ReplayResult", "TraceReplayer"]

# Indices into the per-kind accumulator rows (kept as plain lists so the hot
# loop does no attribute lookups).
_COUNT, _SKIPPED, _TOTAL, _MIN, _MAX, _BYTES = range(6)


@dataclass(frozen=True)
class ReplayCostModel:
    """CPU-side cost constants of the replayer (milliseconds).

    Disk-side costs all come from the :class:`DiskGeometry` of the disk being
    replayed against; these constants only cover what never leaves memory.
    """

    #: processing a metadata access served from the buffer cache.
    cached_metadata_cpu_ms: float = 0.005
    #: per-block cost of a data read served from the buffer cache.
    cached_read_cpu_ms_per_block: float = 0.001
    #: namespace bookkeeping on create/delete/rename/mkdir, on top of the
    #: metadata write the disk charges.
    namespace_update_cpu_ms: float = 0.01


@dataclass
class OpClassStats:
    """Aggregated statistics for one operation kind."""

    count: int = 0
    skipped: int = 0
    total_ms: float = 0.0
    min_ms: float = 0.0
    max_ms: float = 0.0
    bytes_moved: int = 0

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "skipped": self.skipped,
            "total_ms": self.total_ms,
            "mean_ms": self.mean_ms,
            "min_ms": self.min_ms,
            "max_ms": self.max_ms,
            "bytes": self.bytes_moved,
        }


@dataclass
class ReplayResult:
    """Outcome of replaying one trace.

    ``as_dict`` contains only simulated, deterministic values; wall-clock
    figures live in :attr:`wall_seconds` / :attr:`ops_per_second`.
    """

    per_kind: dict[str, OpClassStats] = field(default_factory=dict)
    #: per-client aggregates, keyed by client tag; empty unless the trace
    #: carried client tags (see :func:`repro.trace.ops.merge_traces`).
    per_client: dict[str, OpClassStats] = field(default_factory=dict)
    executed: int = 0
    skipped: int = 0
    batches: int = 0
    simulated_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    layout_score_before: float | None = None
    layout_score_after: float | None = None
    wall_seconds: float = 0.0

    @property
    def total_operations(self) -> int:
        return self.executed + self.skipped

    @property
    def ops_per_second(self) -> float:
        """Wall-clock replay throughput (how fast the engine itself runs)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_operations / self.wall_seconds

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def simulated_throughput_ops_s(self) -> float:
        """Throughput of the *simulated* disk (ops per simulated second)."""
        if self.simulated_ms <= 0.0:
            return 0.0
        return 1000.0 * self.executed / self.simulated_ms

    def as_dict(self) -> dict:
        out: dict = {
            "operations": self.total_operations,
            "executed": self.executed,
            "skipped": self.skipped,
            "batches": self.batches,
            "simulated_ms": self.simulated_ms,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hit_ratio,
            "per_kind": {kind: stats.as_dict() for kind, stats in sorted(self.per_kind.items())},
        }
        if self.per_client:
            out["per_client"] = {
                client: stats.as_dict() for client, stats in sorted(self.per_client.items())
            }
        if self.layout_score_before is not None:
            out["layout_score_before"] = self.layout_score_before
        if self.layout_score_after is not None:
            out["layout_score_after"] = self.layout_score_after
        return out


class TraceReplayer:
    """Replays operation traces against a namespace + disk + cache.

    Args:
        image: image whose disk and namespace the trace runs against.  The
            image's files are reachable under their tree paths.  When omitted,
            a standalone disk of ``disk_blocks`` blocks is created — the mode
            storm/churn traces (which build their own namespace) use.
        cache: buffer cache; a fresh unbounded cache by default (cold start).
        cost_model: CPU-side cost constants.
        disk_blocks: size of the standalone disk when ``image`` is None.
        strict: raise on inconsistent operations (create of an existing path,
            delete/read of a missing one) instead of counting them as skipped.
        telemetry: optional :class:`repro.obs.Telemetry`; when omitted,
            :meth:`replay` picks up the context-bound one
            (:func:`repro.obs.current`) at call time.  Observation adds a
            per-op-class latency histogram, op/byte/cache counters and
            throughput gauges; with no telemetry bound the hot path is
            untouched.
    """

    def __init__(
        self,
        image: FileSystemImage | None = None,
        *,
        cache: BufferCache | None = None,
        cost_model: ReplayCostModel | None = None,
        disk_blocks: int = 262_144,
        strict: bool = False,
        telemetry: "obs_core.Telemetry | None" = None,
    ) -> None:
        if image is not None and image.disk is not None:
            self._disk = image.disk
        else:
            self._disk = SimulatedDisk(num_blocks=disk_blocks)
        self._image = image
        self._cache = cache if cache is not None else BufferCache()
        self._costs = cost_model or ReplayCostModel()
        self._strict = strict
        self._geometry: DiskGeometry = self._disk.geometry
        # (runs, blocks) per on-disk file, maintained incrementally so read
        # costs stay O(1) after the first access.
        self._run_stats: dict[str, tuple[int, int]] = {}
        self._directories: set[str] = set()
        self._rows: dict[str, list] = {}
        self._client_rows: dict[str, list] = {}
        self._executed = 0
        self._skipped = 0
        self._simulated_ms = 0.0
        self._max_batch = -1
        self._telemetry = telemetry

    @property
    def disk(self) -> SimulatedDisk:
        return self._disk

    @property
    def cache(self) -> BufferCache:
        return self._cache

    def warm_cache(self) -> None:
        """Pre-load metadata and data of every existing on-disk file."""
        block_size = self._geometry.block_size
        items: dict[str, int] = {}
        for name in self._disk.file_names():
            items["meta:" + name] = 256
            items["data:" + name] = self._disk.block_count(name) * block_size
        self._cache.warm(items)

    # Replay -----------------------------------------------------------------

    def replay(self, trace: OperationTrace) -> ReplayResult:
        """Execute every operation of ``trace`` and return the statistics."""
        tele = self._telemetry if self._telemetry is not None else obs_core.current()
        score_before = self._image_layout_score()
        execute = self.execute
        if tele is None:
            start = time.perf_counter()
            for operation in trace:
                execute(operation)
            wall = time.perf_counter() - start
        else:
            # Observed replay.  The timed region is a single C-level
            # ``list(map(execute, ...))`` — the only per-op cost over the
            # unobserved loop is building the latency list — and everything
            # per-kind (samples, skipped counts, byte totals) is reconstructed
            # afterwards from the latency list plus the accumulator-row deltas
            # ``execute`` maintains anyway.  ``execute`` itself stays
            # untouched, so the unobserved path pays nothing.
            metadata = getattr(trace, "metadata", None) or {}
            trace_label = str(metadata.get("synthesizer") or metadata.get("name") or "trace")
            rows_before = {
                kind: (row[_SKIPPED], row[_BYTES]) for kind, row in self._rows.items()
            }
            hits_before = self._cache.hits
            misses_before = self._cache.misses
            with tele.span("trace_replay", trace=trace_label):
                start = time.perf_counter()
                latencies = list(map(execute, trace))
                wall = time.perf_counter() - start
                samples, skipped_by_kind, bytes_by_kind = self._regroup_samples(
                    trace, latencies, rows_before
                )
        result = self.result()
        result.wall_seconds = wall
        result.layout_score_before = score_before
        result.layout_score_after = self._image_layout_score()
        self._record_image_timing(wall)
        if tele is not None:
            self._record_telemetry(
                tele,
                result,
                samples,
                skipped_by_kind,
                bytes_by_kind,
                hits=self._cache.hits - hits_before,
                misses=self._cache.misses - misses_before,
            )
        return result

    def _regroup_samples(
        self,
        trace: OperationTrace,
        latencies: list[float],
        rows_before: dict[str, tuple[int, int]],
    ) -> tuple[dict[str, list[float]], dict[str, int], dict[str, int]]:
        """Split the flat latency list into executed per-kind samples.

        ``execute`` returns 0.0 for (and only assigns a latency to) executed
        operations, so the executed sample multiset for a kind is its latency
        list minus one 0.0 entry per skipped operation — and zeros are
        interchangeable, so dropping *any* ``skipped`` zeros is exact even if
        a custom cost model priced some executed operation at 0.0.  Skipped
        and byte tallies come from the accumulator-row deltas.
        """
        samples: dict[str, list[float]] = {}
        for operation, latency in zip(trace, latencies):
            kind = operation.kind
            bucket = samples.get(kind)
            if bucket is None:
                bucket = samples[kind] = []
            bucket.append(latency)
        skipped_by_kind: dict[str, int] = {}
        bytes_by_kind: dict[str, int] = {}
        for kind, row in self._rows.items():
            skipped_before, bytes_before = rows_before.get(kind, (0, 0))
            skipped = row[_SKIPPED] - skipped_before
            if skipped:
                skipped_by_kind[kind] = skipped
            moved = row[_BYTES] - bytes_before
            if moved:
                bytes_by_kind[kind] = moved
        for kind, skipped in skipped_by_kind.items():
            values = samples.get(kind)
            if not values:
                continue
            kept: list[float] = []
            to_drop = skipped
            for value in values:
                if to_drop and value == 0.0:
                    to_drop -= 1
                else:
                    kept.append(value)
            if kept:
                samples[kind] = kept
            else:
                del samples[kind]
        return samples, skipped_by_kind, bytes_by_kind

    def _record_telemetry(
        self,
        tele: "obs_core.Telemetry",
        result: ReplayResult,
        samples: dict[str, list[float]],
        skipped_by_kind: dict[str, int],
        bytes_by_kind: dict[str, int],
        *,
        hits: int,
        misses: int,
    ) -> None:
        """Fold one observed replay into the telemetry object."""
        histogram = tele.histogram(
            "replay_op_latency_ms",
            "simulated per-operation latency",
            labels=("op_class",),
            unit="ms",
        )
        for kind in sorted(samples):
            histogram.labels(op_class=kind).observe_many(samples[kind])
        ops = tele.counter(
            "replay_ops_total",
            "replayed operations by class and outcome",
            labels=("op_class", "outcome"),
        )
        for kind in sorted(samples):
            ops.inc(len(samples[kind]), op_class=kind, outcome="executed")
        for kind in sorted(skipped_by_kind):
            ops.inc(skipped_by_kind[kind], op_class=kind, outcome="skipped")
        moved = tele.counter(
            "replay_bytes_total",
            "bytes moved by executed operations",
            labels=("op_class",),
        )
        for kind in sorted(bytes_by_kind):
            moved.inc(bytes_by_kind[kind], op_class=kind)
        cache_events = tele.counter(
            "replay_cache_events_total",
            "buffer cache hits/misses during replay",
            labels=("event",),
        )
        if hits:
            cache_events.inc(hits, event="hit")
        if misses:
            cache_events.inc(misses, event="miss")
        tele.gauge(
            "replay_ops_per_second", "wall-clock replay engine throughput"
        ).set(result.ops_per_second)
        tele.gauge(
            "replay_simulated_throughput_ops_s", "simulated disk throughput"
        ).set(result.simulated_throughput_ops_s)
        tele.gauge(
            "replay_cache_hit_ratio", "buffer cache hit ratio at snapshot time"
        ).set(result.cache_hit_ratio)

    def execute(self, operation: Operation) -> float:
        """Apply one operation; returns its simulated latency in ms."""
        kind = operation.kind
        path = operation.path
        size = operation.size
        disk = self._disk
        cache = self._cache
        costs = self._costs
        geometry = self._geometry

        skipped = False
        latency = 0.0
        if kind == "read":
            stats = self._run_stats.get(path)
            if stats is None:
                stats = self._compute_run_stats(path)
            if stats is None:
                skipped = True
                self._fail_if_strict(operation, "read of unknown file")
            else:
                runs, blocks = stats
                read_blocks = blocks
                if size and size < blocks * geometry.block_size:
                    read_blocks = max(1, (size + geometry.block_size - 1) // geometry.block_size)
                if cache.access("data:" + path, blocks * geometry.block_size):
                    latency = costs.cached_read_cpu_ms_per_block * max(read_blocks, 1)
                elif blocks == 0:
                    latency = geometry.access_time_ms(1, 1)
                else:
                    latency = geometry.access_time_ms(runs, read_blocks)
        elif kind == "stat":
            if cache.access("meta:" + path, 256):
                latency = costs.cached_metadata_cpu_ms
            else:
                latency = geometry.access_time_ms(1, 1)
        elif kind == "write":
            if disk.has_file(path):
                if operation.append:
                    try:
                        new_extents = disk.extend_extents(path, size)
                    except AllocationError:
                        skipped = True
                        self._fail_if_strict(operation, "disk full")
                    else:
                        latency = self._write_latency(new_extents)
                        self._refresh_run_stats(path)
                        cache.discard("data:" + path)
                else:
                    # In-place overwrite of the first `size` bytes; only the
                    # part past EOF (if any) allocates new blocks.
                    stats = self._run_stats.get(path) or self._compute_run_stats(path)
                    runs, blocks = stats
                    needed = disk.blocks_needed(size)
                    covered = min(blocks, needed) if blocks else 0
                    overflow = needed - blocks
                    if overflow > 0:
                        try:
                            new_extents = disk.extend_extents(
                                path, overflow * geometry.block_size
                            )
                        except AllocationError:
                            new_extents = []
                        self._refresh_run_stats(path)
                        covered += sum(length for _, length in new_extents)
                    if covered:
                        covered_runs = max(1, round(runs * covered / blocks)) if blocks else 1
                        latency = geometry.access_time_ms(covered_runs, covered)
                    else:
                        latency = costs.namespace_update_cpu_ms
                    cache.discard("data:" + path)
            else:
                # Write to a path never created: an implicit create, the way
                # O_CREAT|O_WRONLY behaves.
                skipped = not self._create(path, size)
                if skipped:
                    self._fail_if_strict(operation, "disk full")
                else:
                    runs, blocks = self._run_stats[path]
                    write_cost = (
                        geometry.access_time_ms(runs, blocks)
                        if blocks
                        else costs.namespace_update_cpu_ms
                    )
                    latency = write_cost + (
                        geometry.access_time_ms(1, 1) + costs.namespace_update_cpu_ms
                    )
        elif kind == "create":
            if disk.has_file(path):
                skipped = True
                self._fail_if_strict(operation, "create of existing file")
            elif self._create(path, size):
                latency = (
                    geometry.access_time_ms(1, 1)
                    + geometry.transfer_time_ms(disk.blocks_needed(size))
                    + costs.namespace_update_cpu_ms
                )
            else:
                skipped = True
                self._fail_if_strict(operation, "disk full")
        elif kind == "delete":
            try:
                disk.free(path)
            except DoubleFreeError:
                if path in self._directories:
                    self._directories.discard(path)
                    cache.discard("meta:" + path)
                    latency = geometry.access_time_ms(1, 1) + costs.namespace_update_cpu_ms
                else:
                    skipped = True
                    self._fail_if_strict(operation, "delete of unknown file")
            else:
                self._run_stats.pop(path, None)
                cache.discard("data:" + path)
                cache.discard("meta:" + path)
                latency = geometry.access_time_ms(1, 1) + costs.namespace_update_cpu_ms
        elif kind == "rename":
            dest = operation.dest
            try:
                disk.rename(path, dest)
            except (KeyError, ValueError):
                skipped = True
                self._fail_if_strict(operation, "rename of unknown or colliding file")
            else:
                stats = self._run_stats.pop(path, None)
                if stats is not None:
                    self._run_stats[dest] = stats
                cache.discard("data:" + path)
                cache.discard("meta:" + path)
                latency = geometry.access_time_ms(1, 1) + costs.namespace_update_cpu_ms
        elif kind == "mkdir":
            if path in self._directories:
                skipped = True
                self._fail_if_strict(operation, "mkdir of existing directory")
            else:
                self._directories.add(path)
                cache.access("meta:" + path, 4096)
                latency = geometry.access_time_ms(1, 1) + costs.namespace_update_cpu_ms
        else:  # pragma: no cover - Operation validates kinds
            raise ValueError(f"unknown operation kind {kind!r}")

        row = self._rows.get(kind)
        if row is None:
            row = [0, 0, 0.0, math.inf, 0.0, 0]
            self._rows[kind] = row
        rows = [row]
        if operation.client:
            client_row = self._client_rows.get(operation.client)
            if client_row is None:
                client_row = [0, 0, 0.0, math.inf, 0.0, 0]
                self._client_rows[operation.client] = client_row
            rows.append(client_row)
        moved = size if kind in ("read", "write", "create") else 0
        for row in rows:
            if skipped:
                row[_SKIPPED] += 1
            else:
                row[_COUNT] += 1
                row[_TOTAL] += latency
                if latency < row[_MIN]:
                    row[_MIN] = latency
                if latency > row[_MAX]:
                    row[_MAX] = latency
                row[_BYTES] += moved
        if skipped:
            self._skipped += 1
        else:
            self._executed += 1
            self._simulated_ms += latency
        if operation.batch > self._max_batch:
            self._max_batch = operation.batch
        return latency

    def result(self) -> ReplayResult:
        """Snapshot the statistics accumulated so far."""
        return ReplayResult(
            per_kind={kind: _stats_from_row(row) for kind, row in self._rows.items()},
            per_client={
                client: _stats_from_row(row) for client, row in self._client_rows.items()
            },
            executed=self._executed,
            skipped=self._skipped,
            batches=self._max_batch + 1,
            simulated_ms=self._simulated_ms,
            cache_hits=self._cache.hits,
            cache_misses=self._cache.misses,
        )

    # Internal helpers --------------------------------------------------------

    def _create(self, path: str, size: int) -> bool:
        try:
            extents = self._disk.allocate_extents(path, size)
        except AllocationError:
            return False
        self._run_stats[path] = (
            len(extents),
            sum(length for _, length in extents),
        )
        self._cache.access("meta:" + path, 256)
        return True

    def _write_latency(self, new_extents: list[tuple[int, int]]) -> float:
        if not new_extents:
            return self._costs.namespace_update_cpu_ms
        blocks = sum(length for _, length in new_extents)
        return self._geometry.access_time_ms(len(new_extents), blocks)

    def _compute_run_stats(self, path: str) -> tuple[int, int] | None:
        if not self._disk.has_file(path):
            return None
        stats = (self._disk.run_count(path), self._disk.block_count(path))
        self._run_stats[path] = stats
        return stats

    def _refresh_run_stats(self, path: str) -> None:
        # The disk caches (runs, blocks) per file, so an exact refresh after
        # an extend is O(1) — the historical approximation (count appended
        # extents as fresh runs even when one merged with the file's tail) is
        # no longer needed.
        self._run_stats[path] = (self._disk.run_count(path), self._disk.block_count(path))

    def _fail_if_strict(self, operation: Operation, reason: str) -> None:
        if self._strict:
            raise ValueError(f"strict replay failed on {operation}: {reason}")

    def _image_layout_score(self) -> float | None:
        if self._image is None:
            return None
        return self._image.achieved_layout_score()

    def _record_image_timing(self, wall_seconds: float) -> None:
        if self._image is None:
            return
        timings = self._image.extras.get("timings")
        if timings is not None:
            extras = timings.extras
            extras["trace_replay"] = extras.get("trace_replay", 0.0) + wall_seconds


def _stats_from_row(row: list) -> OpClassStats:
    return OpClassStats(
        count=row[_COUNT],
        skipped=row[_SKIPPED],
        total_ms=row[_TOTAL],
        min_ms=0.0 if math.isinf(row[_MIN]) else row[_MIN],
        max_ms=row[_MAX],
        bytes_moved=row[_BYTES],
    )
