"""File metadata models: sizes, extensions and names.

* :mod:`repro.metadata.filesizes` — the default hybrid file-size-by-count
  model and the mixture-of-lognormals bytes model, with Table 2's parameters.
* :mod:`repro.metadata.extensions` — extension popularity percentile model
  (top-20 extensions by count and by bytes plus random three-character
  extensions for the rest) and the extension → content-kind mapping used by
  content generation and the search workloads.
* :mod:`repro.metadata.names` — simple iterative-counter name generation for
  files and directories, as in the paper.
"""

from repro.metadata.extensions import (
    DEFAULT_EXTENSION_MODEL,
    ExtensionPopularityModel,
    content_kind_for_extension,
)
from repro.metadata.filesizes import (
    default_file_size_by_bytes_model,
    default_file_size_by_count_model,
    simple_lognormal_size_model,
)
from repro.metadata.names import NameGenerator
from repro.metadata.timestamps import FileTimestamps, TimestampModel

__all__ = [
    "default_file_size_by_count_model",
    "default_file_size_by_bytes_model",
    "simple_lognormal_size_model",
    "ExtensionPopularityModel",
    "DEFAULT_EXTENSION_MODEL",
    "content_kind_for_extension",
    "NameGenerator",
    "TimestampModel",
    "FileTimestamps",
]
