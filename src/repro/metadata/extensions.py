"""Extension popularity model (Table 2, Figure 2(e)).

Impressions keeps percentile values for the most popular file extensions — the
top 20 by count and by bytes, which together cover roughly half of all files
and bytes.  Files not covered by the popular list receive randomly generated
three-character extensions.  Each extension also maps to a coarse *content
kind* (text, image, binary, …) used by the content generators and by the
desktop-search workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.stats.distributions import CategoricalDistribution

__all__ = [
    "ExtensionPopularityModel",
    "DEFAULT_EXTENSION_MODEL",
    "DEFAULT_EXTENSIONS_BY_COUNT",
    "DEFAULT_EXTENSIONS_BY_BYTES",
    "content_kind_for_extension",
]

#: Top extensions by *count* with their approximate share of all files,
#: following the composition shown in Figure 2(e) (cpp, dll, exe, gif, h, htm,
#: jpg, the extensionless "null" bucket, txt) extended to a top-20 list in the
#: spirit of the underlying five-year Windows study.  The shares sum to ~0.52;
#: the remaining files receive random three-character extensions.
DEFAULT_EXTENSIONS_BY_COUNT: Mapping[str, float] = {
    "dll": 0.078,
    "gif": 0.062,
    "h": 0.058,
    "null": 0.056,
    "htm": 0.049,
    "jpg": 0.044,
    "exe": 0.039,
    "cpp": 0.037,
    "txt": 0.035,
    "wav": 0.014,
    "ini": 0.013,
    "c": 0.012,
    "log": 0.011,
    "xml": 0.011,
    "pdb": 0.010,
    "lib": 0.010,
    "png": 0.009,
    "obj": 0.009,
    "doc": 0.008,
    "mp3": 0.007,
}

#: Top extensions by *bytes*: large media, databases and libraries dominate.
DEFAULT_EXTENSIONS_BY_BYTES: Mapping[str, float] = {
    "dll": 0.090,
    "exe": 0.065,
    "pdb": 0.061,
    "vhd": 0.055,
    "pst": 0.052,
    "mp3": 0.043,
    "wma": 0.032,
    "avi": 0.030,
    "lib": 0.029,
    "zip": 0.027,
    "iso": 0.026,
    "wav": 0.024,
    "jpg": 0.021,
    "mdb": 0.018,
    "cab": 0.017,
    "doc": 0.014,
    "null": 0.013,
    "gif": 0.009,
    "htm": 0.007,
    "txt": 0.006,
}

#: Coarse content kind for each known extension, used to pick a content
#: generator and to drive the search-engine filters.
_CONTENT_KIND: Mapping[str, str] = {
    "txt": "text",
    "log": "text",
    "ini": "text",
    "c": "text",
    "cpp": "text",
    "h": "text",
    "xml": "text",
    "htm": "html",
    "html": "html",
    "doc": "document",
    "pdf": "document",
    "gif": "image",
    "jpg": "image",
    "jpeg": "image",
    "png": "image",
    "mp3": "audio",
    "wav": "audio",
    "wma": "audio",
    "avi": "video",
    "mpg": "video",
    "mp4": "video",
    "sh": "script",
    "py": "script",
    "pl": "script",
    "zip": "archive",
    "cab": "archive",
    "iso": "archive",
    "tar": "archive",
    "gz": "archive",
    "dll": "binary",
    "exe": "binary",
    "lib": "binary",
    "obj": "binary",
    "pdb": "binary",
    "vhd": "binary",
    "pst": "binary",
    "mdb": "binary",
    "null": "binary",
    "": "binary",
}


def content_kind_for_extension(extension: str) -> str:
    """Coarse content class for an extension (``text``, ``image``, ``binary``…)."""
    return _CONTENT_KIND.get(extension.lower().lstrip("."), "binary")


@dataclass
class ExtensionPopularityModel:
    """Percentile model of extension popularity.

    Attributes:
        by_count: share of files for each popular extension; the residual mass
            ``1 - sum(by_count)`` is given to random three-character
            extensions.
        by_bytes: share of bytes for each popular extension (used when a
            caller needs the bytes-weighted view, e.g. dataset synthesis).
        random_extension_length: length of the generated extensions for
            unpopular files (3 in the paper).
    """

    by_count: Mapping[str, float]
    by_bytes: Mapping[str, float]
    random_extension_length: int = 3

    def __post_init__(self) -> None:
        for name, table in (("by_count", self.by_count), ("by_bytes", self.by_bytes)):
            total = sum(table.values())
            if total > 1.0 + 1e-9:
                raise ValueError(f"{name} shares sum to {total}, which exceeds 1")
            if any(share < 0 for share in table.values()):
                raise ValueError(f"{name} shares must be non-negative")
        if self.random_extension_length < 1:
            raise ValueError("random_extension_length must be at least 1")

    @property
    def popular_extensions(self) -> tuple[str, ...]:
        return tuple(self.by_count.keys())

    def popular_fraction(self) -> float:
        """Total fraction of files covered by the popular list (~0.5)."""
        return float(sum(self.by_count.values()))

    def count_distribution(self) -> CategoricalDistribution:
        """Categorical distribution over popular extensions plus ``others``."""
        labels = list(self.by_count.keys()) + ["others"]
        weights = list(self.by_count.values()) + [max(1.0 - self.popular_fraction(), 0.0)]
        return CategoricalDistribution(labels=labels, weights=weights)

    def sample_extensions(self, rng: np.random.Generator, size: int) -> list[str]:
        """Sample ``size`` extensions; unpopular files get random ones."""
        labels = self.count_distribution().sample_labels(rng, size)
        out: list[str] = []
        for label in labels:
            if label == "others":
                out.append(self.random_extension(rng))
            elif label == "null":
                out.append("")
            else:
                out.append(label)
        return out

    def random_extension(self, rng: np.random.Generator) -> str:
        """A random lowercase extension of the configured length."""
        letters = rng.integers(ord("a"), ord("z") + 1, size=self.random_extension_length)
        return "".join(chr(int(code)) for code in letters)

    def observed_shares(self, extension_counts: Mapping[str, int]) -> dict[str, float]:
        """Turn observed per-extension counts into shares aligned with the model.

        Extensions outside the popular list are merged into ``others``; the
        return value maps every popular extension (plus ``others``) to its
        observed share, which is what Figure 2(e) plots.
        """
        total = sum(extension_counts.values())
        if total == 0:
            return {label: 0.0 for label in list(self.by_count.keys()) + ["others"]}
        shares: dict[str, float] = {label: 0.0 for label in self.by_count}
        others = 0.0
        for extension, count in extension_counts.items():
            key = extension if extension else "null"
            if key in shares:
                shares[key] += count / total
            else:
                others += count / total
        shares["others"] = others
        return shares

    def desired_shares(self) -> dict[str, float]:
        """The model's own shares in the same format as :meth:`observed_shares`."""
        shares = {label: float(value) for label, value in self.by_count.items()}
        shares["others"] = max(1.0 - self.popular_fraction(), 0.0)
        return shares


DEFAULT_EXTENSION_MODEL = ExtensionPopularityModel(
    by_count=dict(DEFAULT_EXTENSIONS_BY_COUNT),
    by_bytes=dict(DEFAULT_EXTENSIONS_BY_BYTES),
)
