"""Default file-size models (Table 2).

Two views of file size matter:

* **File size by count** — what fraction of *files* fall into each size bin.
  Modelled by a lognormal body (α1=0.99994, µ=9.48, σ=2.46) with a Pareto
  tail (k=0.91, Xm=512 MB) for the handful of very large files.
* **File size by containing bytes** — what fraction of *bytes* live in files
  of each size.  Modelled directly by a mixture of two lognormals
  (α1=0.76, µ1=14.83, σ1=2.35; α2=0.24, µ2=20.93, σ2=1.48), capturing the
  bimodal bytes curve of Figure 2(d).

The paper's initial, simpler lognormal-only model is kept as
:func:`simple_lognormal_size_model`; the ablation benchmark compares it to the
hybrid to reproduce the discussion around Figure 2(d).
"""

from __future__ import annotations

from repro.stats.distributions import (
    HybridLognormalPareto,
    LognormalDistribution,
    MixtureOfLognormals,
    ParetoDistribution,
)

__all__ = [
    "DEFAULT_BODY_MU",
    "DEFAULT_BODY_SIGMA",
    "DEFAULT_BODY_FRACTION",
    "DEFAULT_TAIL_K",
    "DEFAULT_TAIL_XM",
    "default_file_size_by_count_model",
    "default_file_size_by_bytes_model",
    "simple_lognormal_size_model",
]

#: Table 2 parameters for the file-size-by-count model.
DEFAULT_BODY_MU = 9.48
DEFAULT_BODY_SIGMA = 2.46
DEFAULT_BODY_FRACTION = 0.99994
DEFAULT_TAIL_K = 0.91
DEFAULT_TAIL_XM = 512 * 1024 * 1024  # 512 MB

#: Table 2 parameters for the file-size-by-containing-bytes model.
DEFAULT_BYTES_WEIGHTS = (0.76, 0.24)
DEFAULT_BYTES_MUS = (14.83, 20.93)
DEFAULT_BYTES_SIGMAS = (2.35, 1.48)


def default_file_size_by_count_model(
    mu: float = DEFAULT_BODY_MU,
    sigma: float = DEFAULT_BODY_SIGMA,
    body_fraction: float = DEFAULT_BODY_FRACTION,
    tail_k: float = DEFAULT_TAIL_K,
    tail_xm: float = DEFAULT_TAIL_XM,
) -> HybridLognormalPareto:
    """The hybrid lognormal-body / Pareto-tail file-size model."""
    return HybridLognormalPareto(
        body=LognormalDistribution(mu=mu, sigma=sigma),
        tail=ParetoDistribution(k=tail_k, xm=tail_xm),
        body_fraction=body_fraction,
    )


def default_file_size_by_bytes_model() -> MixtureOfLognormals:
    """The mixture-of-lognormals model of file size weighted by bytes."""
    return MixtureOfLognormals.from_parameters(
        weights=DEFAULT_BYTES_WEIGHTS,
        mus=DEFAULT_BYTES_MUS,
        sigmas=DEFAULT_BYTES_SIGMAS,
    )


def simple_lognormal_size_model(
    mu: float = DEFAULT_BODY_MU, sigma: float = DEFAULT_BODY_SIGMA
) -> LognormalDistribution:
    """The paper's initial lognormal-only model (no heavy tail).

    Acceptable for files-by-size but misses the bimodal bytes-by-size curve;
    used by the size-model ablation benchmark.
    """
    return LognormalDistribution(mu=mu, sigma=sigma)
