"""File age and timestamp models.

The metadata studies behind Impressions (Agrawal et al.'s five-year study,
Douceur & Bolosky) also model *file age* — the time since a file was created
or last modified.  The paper lists file age among the attributes those studies
measured; assigning realistic timestamps is a natural extension of the
framework (and necessary for benchmarking anything age-aware: backup tools,
tiering policies, retention scanners).

The default model follows the studies' observation that file ages are roughly
lognormal over a wide range: many files are recent, a long tail is years old.
Relative ages are sampled in days and converted to absolute timestamps against
a caller-supplied "now", with the invariant ``created <= modified <= accessed
<= now`` enforced per file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stats.distributions import LognormalDistribution

__all__ = ["TimestampModel", "FileTimestamps"]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class FileTimestamps:
    """Absolute POSIX timestamps for one file."""

    created: float
    modified: float
    accessed: float

    def __post_init__(self) -> None:
        if not self.created <= self.modified <= self.accessed:
            raise ValueError("timestamps must satisfy created <= modified <= accessed")

    def age_days(self, now: float) -> float:
        """Age of the file (since creation) in days."""
        return max(now - self.created, 0.0) / SECONDS_PER_DAY


@dataclass
class TimestampModel:
    """Samples (created, modified, accessed) triples for files.

    Attributes:
        creation_age_days: lognormal model of file age (days since creation);
            the defaults put the median around ~80 days with a multi-year tail,
            in line with the study's agewise distributions.
        modification_fraction: fraction of files modified after creation (the
            rest keep ``modified == created``).
        relative_modification_age: for modified files, the modification time
            is drawn uniformly between creation and now scaled by this beta
            parameter pair (a Beta(a, b) position along that interval).
        access_recency_days: lognormal model of time since last access, capped
            at the modification age.
    """

    creation_age_days: LognormalDistribution = field(
        default_factory=lambda: LognormalDistribution(mu=4.4, sigma=1.6)
    )
    modification_fraction: float = 0.55
    modification_position_alpha: float = 1.2
    modification_position_beta: float = 2.5
    access_recency_days: LognormalDistribution = field(
        default_factory=lambda: LognormalDistribution(mu=2.5, sigma=1.8)
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.modification_fraction <= 1.0:
            raise ValueError("modification_fraction must lie in [0, 1]")
        if self.modification_position_alpha <= 0 or self.modification_position_beta <= 0:
            raise ValueError("beta-distribution parameters must be positive")

    def sample(self, rng: np.random.Generator, now: float) -> FileTimestamps:
        """Sample one file's timestamps relative to ``now`` (POSIX seconds)."""
        age_days = float(self.creation_age_days.sample(rng, 1)[0])
        created = now - age_days * SECONDS_PER_DAY
        if rng.random() < self.modification_fraction and age_days > 0:
            position = rng.beta(self.modification_position_alpha, self.modification_position_beta)
            modified = created + position * (now - created)
        else:
            modified = created
        recency_days = float(self.access_recency_days.sample(rng, 1)[0])
        accessed = now - recency_days * SECONDS_PER_DAY
        accessed = min(max(accessed, modified), now)
        return FileTimestamps(created=created, modified=modified, accessed=accessed)

    def sample_many(self, rng: np.random.Generator, now: float, count: int) -> list[FileTimestamps]:
        """Sample timestamps for ``count`` files."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng, now) for _ in range(count)]

    def age_distribution_days(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Raw creation-age sample in days (for analysis/fitting round trips)."""
        return self.creation_age_days.sample(rng, count)
