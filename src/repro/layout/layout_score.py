"""Layout score (Smith & Seltzer), the fragmentation metric of Section 3.7.

For a single file the layout score is the fraction of its blocks that are
*optimally placed*, i.e. immediately follow the previous logical block on
disk; the first block is always counted as optimal.  A file laid out in one
contiguous run scores 1.0; a file whose blocks are all scattered scores
``1 / num_blocks`` (only the first block counts).  Files with zero or one
block are defined to have a score of 1.0.

The file-system-wide layout score is the block-weighted aggregate over all
files: the fraction of all file blocks (excluding each file's first block)
that are contiguous with their logical predecessor.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.layout.disk import SimulatedDisk

__all__ = ["file_layout_score", "layout_score", "layout_score_from_blockmaps"]


def file_layout_score(blocks: Sequence[int]) -> float:
    """Layout score of one file given its blocks in logical order."""
    if len(blocks) <= 1:
        return 1.0
    optimal = sum(1 for prev, cur in zip(blocks[:-1], blocks[1:]) if cur == prev + 1)
    return (optimal + 1) / len(blocks)


def layout_score_from_blockmaps(blockmaps: Iterable[Sequence[int]]) -> float:
    """Aggregate layout score over many files' block maps.

    The aggregate follows the metric's original definition: the fraction of
    non-first blocks that are optimally placed, pooled over all files.  An
    empty file system (or one with only single-block files) scores 1.0.
    """
    optimal = 0
    candidates = 0
    for blocks in blockmaps:
        if len(blocks) <= 1:
            continue
        candidates += len(blocks) - 1
        optimal += sum(1 for prev, cur in zip(blocks[:-1], blocks[1:]) if cur == prev + 1)
    if candidates == 0:
        return 1.0
    return optimal / candidates


def layout_score(disk: SimulatedDisk, file_names: Iterable[str] | None = None) -> float:
    """Layout score of (a subset of) the files on a simulated disk."""
    if file_names is None:
        blockmaps = [disk.blocks_of(name) for name in _all_names(disk)]
    else:
        blockmaps = [disk.blocks_of(name) for name in file_names]
    return layout_score_from_blockmaps(blockmaps)


def per_file_scores(disk: SimulatedDisk) -> Mapping[str, float]:
    """Layout score of every file on the disk (diagnostic helper)."""
    return {name: file_layout_score(disk.blocks_of(name)) for name in _all_names(disk)}


def _all_names(disk: SimulatedDisk) -> list[str]:
    return disk.file_names()
