"""Layout score (Smith & Seltzer), the fragmentation metric of Section 3.7.

For a single file the layout score is the fraction of its blocks that are
*optimally placed*, i.e. immediately follow the previous logical block on
disk; the first block is always counted as optimal.  A file laid out in one
contiguous run scores 1.0; a file whose blocks are all scattered scores
``1 / num_blocks`` (only the first block counts).  Files with zero or one
block are defined to have a score of 1.0.

The file-system-wide layout score is the block-weighted aggregate over all
files: the fraction of all file blocks (excluding each file's first block)
that are contiguous with their logical predecessor.

Scoring is extent-native: a file of ``b`` blocks in ``r`` contiguous runs has
exactly ``b - r`` optimally placed non-first blocks, and the
:class:`~repro.layout.disk.SimulatedDisk` caches ``(b, r)`` per file and the
whole-disk aggregates, so :func:`layout_score` is O(1) over the full disk and
O(files) over a subset — no block list is ever expanded.  The blockmap entry
points remain for callers that carry raw block sequences (vectorised with
numpy for long maps).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.layout.disk import SimulatedDisk

__all__ = ["file_layout_score", "layout_score", "layout_score_from_blockmaps"]

#: Below this many blocks a pure-Python pair scan beats the numpy round trip.
_VECTORIZE_THRESHOLD = 64


def optimal_pairs(blocks: Sequence[int]) -> int:
    """Number of blocks immediately following their logical predecessor."""
    n = len(blocks)
    if n <= 1:
        return 0
    if n < _VECTORIZE_THRESHOLD:
        return sum(1 for prev, cur in zip(blocks[:-1], blocks[1:]) if cur == prev + 1)
    array = np.asarray(blocks, dtype=np.int64)
    return int(np.count_nonzero(np.diff(array) == 1))


def file_layout_score(blocks: Sequence[int]) -> float:
    """Layout score of one file given its blocks in logical order."""
    if len(blocks) <= 1:
        return 1.0
    return (optimal_pairs(blocks) + 1) / len(blocks)


def layout_score_from_blockmaps(blockmaps: Iterable[Sequence[int]]) -> float:
    """Aggregate layout score over many files' block maps.

    The aggregate follows the metric's original definition: the fraction of
    non-first blocks that are optimally placed, pooled over all files.  An
    empty file system (or one with only single-block files) scores 1.0.
    """
    optimal = 0
    candidates = 0
    for blocks in blockmaps:
        if len(blocks) <= 1:
            continue
        candidates += len(blocks) - 1
        optimal += optimal_pairs(blocks)
    if candidates == 0:
        return 1.0
    return optimal / candidates


def layout_score(disk: SimulatedDisk, file_names: Iterable[str] | None = None) -> float:
    """Layout score of (a subset of) the files on a simulated disk.

    With ``file_names=None`` this is the whole-disk score, an O(1) read of
    the disk's maintained aggregates.  With an explicit subset it sums the
    per-file cached block/run counts, O(len(file_names)).
    """
    if file_names is None:
        return disk.layout_score()
    optimal = 0
    candidates = 0
    for name in file_names:
        blocks = disk.block_count(name)
        if blocks <= 1:
            continue
        candidates += blocks - 1
        optimal += blocks - disk.run_count(name)
    if candidates == 0:
        return 1.0
    return optimal / candidates


def per_file_scores(disk: SimulatedDisk) -> Mapping[str, float]:
    """Layout score of every file on the disk (diagnostic helper)."""
    scores: dict[str, float] = {}
    for name in disk.file_names():
        blocks = disk.block_count(name)
        if blocks <= 1:
            scores[name] = 1.0
        else:
            scores[name] = (blocks - disk.run_count(name) + 1) / blocks
    return scores
