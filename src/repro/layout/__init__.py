"""Disk layout and fragmentation (Section 3.7).

The paper measures on-disk fragmentation with the *layout score* of Smith &
Seltzer: 1.0 when every file's blocks are laid out consecutively, 0.0 when no
two blocks of any file are adjacent.  Impressions can both measure the score
of an existing layout and *create* a layout with a requested score by issuing
pairs of temporary file create/delete operations while regular files are being
written.

The original tool reads block maps from real Ext2/Ext3 file systems via
``debugfs``; offline we substitute :class:`repro.layout.disk.SimulatedDisk`, a
first-fit block allocator that models exactly the allocation behaviour the
create/delete trick exploits (holes left by deleted temporary files force the
next allocation to split).

* :mod:`repro.layout.disk` — simulated block device and allocator.
* :mod:`repro.layout.layout_score` — the layout-score metric.
* :mod:`repro.layout.fragmenter` — target-score fragmentation during image
  creation, plus the alternate "run a workload, report the score" mode.
* :mod:`repro.layout.aging` — a simple create/delete aging workload.
"""

from repro.layout.aging import AgingWorkload, WorkloadOperation
from repro.layout.disk import AllocationError, SimulatedDisk
from repro.layout.fragmenter import Fragmenter
from repro.layout.layout_score import file_layout_score, layout_score

__all__ = [
    "SimulatedDisk",
    "AllocationError",
    "layout_score",
    "file_layout_score",
    "Fragmenter",
    "AgingWorkload",
    "WorkloadOperation",
]
