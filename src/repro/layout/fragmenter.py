"""Creating layouts with a target degree of fragmentation (Section 3.7).

Impressions achieves a requested layout score "by issuing pairs of temporary
file create and delete operations, during creation of regular files".  The
:class:`Fragmenter` wraps a :class:`~repro.layout.disk.SimulatedDisk` and,
while a regular file is being written, interleaves small temporary files
between chunks of it: each temporary pushes the next chunk off the end of the
previous one, splitting the file, and deleting the temporaries afterwards
leaves holes that later files fall into.  Both effects lower the aggregate
layout score.

How much to fragment each file is decided by a deficit controller: it tracks
the exact number of non-optimally-placed blocks so far and plans just enough
splits for the current file to keep the aggregate score on target.  A layout
score of 1.0 disables the mechanism entirely (the paper's default).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.disk import AllocationError, SimulatedDisk

__all__ = ["Fragmenter", "FragmentationReport"]


@dataclass
class FragmentationReport:
    """Result of a fragmentation run."""

    target_score: float
    achieved_score: float
    regular_files: int
    temporary_operations: int

    @property
    def error(self) -> float:
        return abs(self.achieved_score - self.target_score)


class Fragmenter:
    """Allocates regular files while steering the layout score to a target.

    Args:
        disk: the simulated disk to allocate on.
        target_score: desired aggregate layout score in ``(0, 1]``.
        rng: random generator (kept for API symmetry and used to spread the
            planned splits across a file's chunks).
        temp_file_blocks: size (in blocks) of each temporary file inserted
            between chunks; 1 block produces the finest-grained holes.
        max_splits_per_file: safety cap on how many times one file may be
            split (a file of ``n`` blocks can be split at most ``n - 1``
            times anyway).
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        target_score: float,
        rng: np.random.Generator,
        temp_file_blocks: int = 1,
        max_splits_per_file: int = 64,
    ) -> None:
        if not 0.0 < target_score <= 1.0:
            raise ValueError("target_score must lie in (0, 1]")
        if temp_file_blocks < 1:
            raise ValueError("temp_file_blocks must be at least 1")
        if max_splits_per_file < 1:
            raise ValueError("max_splits_per_file must be at least 1")
        self._disk = disk
        self._target = target_score
        self._rng = rng
        self._temp_blocks = temp_file_blocks
        self._max_splits = max_splits_per_file
        self._temp_counter = 0
        self._regular_names: list[str] = []
        self._temp_operations = 0
        # Incremental layout-score bookkeeping: the aggregate score is
        # optimal / candidates over all non-first blocks seen so far.
        self._optimal_blocks = 0
        self._candidate_blocks = 0

    @property
    def target_score(self) -> float:
        return self._target

    @property
    def temporary_operations(self) -> int:
        return self._temp_operations

    def allocate_regular_file(self, name: str, size_bytes: int) -> list[tuple[int, int]]:
        """Allocate one regular file, fragmenting it as the target requires.

        Returns the file's ``(start, length)`` extents in logical order (use
        ``disk.blocks_of(name)`` for the expanded block list).
        """
        needed_blocks = self._disk.blocks_needed(size_bytes)
        planned_splits = self._planned_splits(needed_blocks)
        if planned_splits == 0:
            self._disk.allocate_extents(name, size_bytes)
        else:
            self._allocate_fragmented(name, size_bytes, needed_blocks, planned_splits)
        self._regular_names.append(name)
        extents = self._disk.extents_of(name)
        self._account(needed_blocks, len(extents))
        return extents

    def finish(self) -> FragmentationReport:
        """Report the final score (no temporaries outlive their file)."""
        return FragmentationReport(
            target_score=self._target,
            achieved_score=self.current_score(),
            regular_files=len(self._regular_names),
            temporary_operations=self._temp_operations,
        )

    def current_score(self) -> float:
        """Aggregate layout score of the regular files allocated so far.

        Maintained incrementally so the controller stays O(1) per file;
        :func:`repro.layout.layout_score.layout_score` recomputed over the
        disk gives the same value (the tests assert this).
        """
        if self._candidate_blocks == 0:
            return 1.0
        return self._optimal_blocks / self._candidate_blocks

    # Internal helpers ---------------------------------------------------------

    def _planned_splits(self, needed_blocks: int) -> int:
        """How many splits this file needs to keep the aggregate on target."""
        if self._target >= 1.0 or needed_blocks <= 1:
            return 0
        future_candidates = self._candidate_blocks + needed_blocks - 1
        desired_non_optimal = (1.0 - self._target) * future_candidates
        current_non_optimal = self._candidate_blocks - self._optimal_blocks
        deficit = desired_non_optimal - current_non_optimal
        planned = int(round(deficit))
        return int(np.clip(planned, 0, min(needed_blocks - 1, self._max_splits)))

    def _allocate_fragmented(
        self, name: str, size_bytes: int, needed_blocks: int, splits: int
    ) -> None:
        """Create ``name`` in ``splits + 1`` chunks separated by temporary files."""
        block_size = self._disk.geometry.block_size
        chunk_sizes = self._chunk_blocks(needed_blocks, splits + 1)
        temps: list[str] = []
        remaining_bytes = size_bytes
        try:
            for index, chunk in enumerate(chunk_sizes):
                chunk_bytes = min(chunk * block_size, remaining_bytes)
                remaining_bytes -= chunk_bytes
                if index == 0:
                    self._disk.allocate_extents(name, chunk_bytes)
                else:
                    temp_name = self._next_temp_name()
                    try:
                        self._disk.allocate_extents(temp_name, self._temp_blocks * block_size)
                        temps.append(temp_name)
                        self._temp_operations += 1
                    except AllocationError:
                        pass
                    self._disk.extend_extents(name, chunk_bytes)
        finally:
            for temp_name in temps:
                self._disk.delete(temp_name)
                self._temp_operations += 1

    def _chunk_blocks(self, needed_blocks: int, num_chunks: int) -> list[int]:
        """Split ``needed_blocks`` into ``num_chunks`` roughly equal positive parts."""
        num_chunks = min(num_chunks, needed_blocks)
        base = needed_blocks // num_chunks
        remainder = needed_blocks % num_chunks
        return [base + (1 if index < remainder else 0) for index in range(num_chunks)]

    def _next_temp_name(self) -> str:
        name = f".impressions-tmp-{self._temp_counter}"
        self._temp_counter += 1
        return name

    def _account(self, blocks: int, runs: int) -> None:
        if blocks <= 1:
            return
        self._candidate_blocks += blocks - 1
        self._optimal_blocks += blocks - runs
