"""Workload-driven fragmentation measurement (the alternate mode of §3.7).

Instead of requesting a layout score directly, a user can hand Impressions a
pre-specified workload — a sequence of create/delete/append operations — run
it against the (simulated) file system, and read back the layout score the
workload produced.  "Thus if a file system employs better strategies to avoid
fragmentation, it is reflected in the final layout score after running the
fragmentation workload."

:class:`AgingWorkload` provides both a replayable operation list and a
generator of random aging workloads in the spirit of Smith & Seltzer's file
system aging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.layout.disk import AllocationError, SimulatedDisk
from repro.layout.layout_score import layout_score

__all__ = ["WorkloadOperation", "AgingWorkload"]


@dataclass(frozen=True)
class WorkloadOperation:
    """One operation of an aging workload.

    ``kind`` is ``create`` or ``delete``; ``name`` identifies the file;
    ``size_bytes`` only matters for creates.
    """

    kind: str
    name: str
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("create", "delete"):
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.kind == "create" and self.size_bytes < 0:
            raise ValueError("create size must be non-negative")


class AgingWorkload:
    """A replayable create/delete workload used to age a file system."""

    def __init__(self, operations: Sequence[WorkloadOperation]) -> None:
        self._operations = list(operations)

    @property
    def operations(self) -> list[WorkloadOperation]:
        return list(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    @classmethod
    def random(
        cls,
        num_operations: int,
        rng: np.random.Generator,
        mean_file_size: int = 64 * 1024,
        delete_fraction: float = 0.4,
        name_prefix: str = "aging",
    ) -> "AgingWorkload":
        """Generate a random aging workload.

        Creates dominate early (there is nothing to delete yet); afterwards a
        ``delete_fraction`` share of operations remove a random live file,
        which is what carves the holes that age a file system.
        """
        if num_operations < 1:
            raise ValueError("num_operations must be positive")
        if not 0.0 <= delete_fraction < 1.0:
            raise ValueError("delete_fraction must lie in [0, 1)")
        operations: list[WorkloadOperation] = []
        live: list[str] = []
        counter = 0
        for _ in range(num_operations):
            if live and rng.random() < delete_fraction:
                victim_index = int(rng.integers(len(live)))
                victim = live.pop(victim_index)
                operations.append(WorkloadOperation(kind="delete", name=victim))
            else:
                name = f"{name_prefix}-{counter}"
                counter += 1
                size = int(max(1, rng.exponential(mean_file_size)))
                operations.append(WorkloadOperation(kind="create", name=name, size_bytes=size))
                live.append(name)
        return cls(operations)

    def replay(self, disk: SimulatedDisk) -> float:
        """Replay the workload on ``disk`` and return the resulting layout score.

        The score is computed over the files that survive the workload.
        Creates that do not fit on the disk are skipped (the workload is a
        best-effort aging pass, not a correctness test).
        """
        survivors: list[str] = []
        for operation in self._operations:
            if operation.kind == "create":
                try:
                    disk.allocate(operation.name, operation.size_bytes)
                except AllocationError:
                    continue
                survivors.append(operation.name)
            else:
                if disk.has_file(operation.name):
                    disk.delete(operation.name)
                    if operation.name in survivors:
                        survivors.remove(operation.name)
        if not survivors:
            return 1.0
        return layout_score(disk, survivors)

    def extended_with(self, operations: Iterable[WorkloadOperation]) -> "AgingWorkload":
        """A new workload with extra operations appended."""
        return AgingWorkload(self._operations + list(operations))
