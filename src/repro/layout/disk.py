"""Simulated block device and allocator, stored as extents.

A :class:`SimulatedDisk` stands in for the real Ext2/Ext3 partition the paper
uses.  It models the single property the layout experiments depend on: which
logical blocks of which file sit where, and therefore whether consecutive file
blocks are adjacent on disk.  Allocation is first-fit over a free-extent list,
which is close enough to ext2's block allocator for the create/delete
fragmentation trick to behave the same way (deleting a temporary file leaves a
hole that splits the next allocation).

Per-file allocations are stored as *extents* — ``(start, length)`` runs of
contiguous blocks in logical (file offset) order — rather than one Python int
per block.  Consecutive extents that happen to be contiguous on disk are
merged on append, so ``len(extents)`` *is* the file's contiguous-run count and
a file's optimally-placed block count (the layout-score numerator) is simply
``blocks - runs``.  A paper-scale Image2 (~3M blocks) therefore costs memory
proportional to its fragmentation, not its size.

On top of the per-file caches the disk maintains two running aggregates —
total candidate blocks (non-first blocks over all files) and total optimally
placed blocks — updated on every allocate/extend/delete, which makes the
whole-image Smith & Seltzer layout score an O(1) lookup
(:meth:`SimulatedDisk.layout_score`) instead of an O(total blocks) re-scan.

The disk also exposes a simple cost model (seek + rotational + transfer time
per contiguous run) used by the ``find``/``grep`` workload simulators.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

__all__ = [
    "SimulatedDisk",
    "AllocationError",
    "DoubleFreeError",
    "DiskGeometry",
    "expand_extents",
]


class AllocationError(RuntimeError):
    """Raised when the disk has insufficient free space for an allocation."""


class DoubleFreeError(RuntimeError):
    """Raised when :meth:`SimulatedDisk.free` targets a file that is not allocated.

    Covers both a genuine double free (the file was already freed) and a free
    of a name that never existed; either way the caller's view of the disk has
    diverged from the allocator's, which trace replay must surface loudly
    instead of silently corrupting the free list.
    """


@dataclass(frozen=True)
class DiskGeometry:
    """Timing model of the simulated disk.

    The defaults approximate a 7200 RPM SATA disk of the paper's era: 8.5 ms
    average seek, 4.16 ms average rotational delay, ~100 MB/s sequential
    transfer with 4 KB blocks.
    """

    block_size: int = 4096
    seek_time_ms: float = 8.5
    rotational_delay_ms: float = 4.16
    transfer_rate_mb_s: float = 100.0

    def transfer_time_ms(self, num_blocks: int) -> float:
        megabytes = num_blocks * self.block_size / (1024.0 * 1024.0)
        return 1000.0 * megabytes / self.transfer_rate_mb_s

    def access_time_ms(self, contiguous_runs: int, num_blocks: int) -> float:
        """Time to read ``num_blocks`` split into ``contiguous_runs`` runs."""
        positioning = contiguous_runs * (self.seek_time_ms + self.rotational_delay_ms)
        return positioning + self.transfer_time_ms(num_blocks)


class SimulatedDisk:
    """First-fit extent allocator over a fixed number of blocks."""

    def __init__(self, num_blocks: int, geometry: DiskGeometry | None = None) -> None:
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        self._num_blocks = num_blocks
        self._geometry = geometry or DiskGeometry()
        # Free extents as sorted, non-overlapping, non-adjacent [start, length] pairs.
        self._free_starts: list[int] = [0]
        self._free_lengths: list[int] = [num_blocks]
        self._free_blocks = num_blocks
        # Per-file extents in logical order; contiguous neighbours are merged
        # on append, so len(extents) == the file's contiguous-run count.
        self._extents: dict[str, list[tuple[int, int]]] = {}
        self._block_counts: dict[str, int] = {}
        # Layout-score aggregates over all files, maintained incrementally:
        # candidates = sum(max(blocks - 1, 0)), optimal = sum(blocks - runs).
        self._agg_candidates = 0
        self._agg_optimal = 0

    # Introspection ----------------------------------------------------------

    @property
    def geometry(self) -> DiskGeometry:
        return self._geometry

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def free_blocks(self) -> int:
        return self._free_blocks

    @property
    def used_blocks(self) -> int:
        return self._num_blocks - self._free_blocks

    @property
    def num_files(self) -> int:
        return len(self._extents)

    @property
    def total_extents(self) -> int:
        """Extent count over all files (the image's layout memory footprint)."""
        return sum(len(extents) for extents in self._extents.values())

    def extents_of(self, name: str) -> list[tuple[int, int]]:
        """``(start, length)`` runs owned by ``name`` in logical order."""
        extents = self._extents.get(name)
        if extents is None:
            raise KeyError(f"unknown file {name!r}")
        return list(extents)

    def blocks_of(self, name: str) -> list[int]:
        """Block numbers owned by ``name`` in logical (file offset) order.

        Compatibility expansion of :meth:`extents_of`: materialises one int
        per block, so prefer the extent/count accessors on large files.
        """
        extents = self._extents.get(name)
        if extents is None:
            raise KeyError(f"unknown file {name!r}")
        return expand_extents(extents)

    def block_count(self, name: str) -> int:
        """Number of blocks owned by ``name`` (O(1))."""
        count = self._block_counts.get(name)
        if count is None:
            raise KeyError(f"unknown file {name!r}")
        return count

    def run_count(self, name: str) -> int:
        """Number of contiguous runs ``name`` occupies (O(1); 0 for empty files)."""
        extents = self._extents.get(name)
        if extents is None:
            raise KeyError(f"unknown file {name!r}")
        return len(extents)

    def first_block_of(self, name: str) -> int | None:
        """First (logical offset 0) block of ``name``, or None for empty files."""
        extents = self._extents.get(name)
        if extents is None:
            raise KeyError(f"unknown file {name!r}")
        return extents[0][0] if extents else None

    def file_names(self) -> list[str]:
        """Names of every allocated file, in insertion order."""
        return list(self._extents.keys())

    def has_file(self, name: str) -> bool:
        return name in self._extents

    def free_extents(self) -> list[tuple[int, int]]:
        """The free list as sorted, non-adjacent ``(start, length)`` pairs."""
        return list(zip(self._free_starts, self._free_lengths))

    def blocks_needed(self, size_bytes: int) -> int:
        block_size = self._geometry.block_size
        return max(1, (size_bytes + block_size - 1) // block_size) if size_bytes > 0 else 0

    # Layout score -------------------------------------------------------------

    @property
    def layout_aggregates(self) -> tuple[int, int]:
        """``(optimal, candidates)`` over all files, maintained incrementally."""
        return self._agg_optimal, self._agg_candidates

    def layout_score(self) -> float:
        """Aggregate Smith & Seltzer layout score of every file on the disk.

        O(1): the fraction of non-first blocks contiguous with their logical
        predecessor, read off the maintained aggregates.  1.0 when no file
        has more than one block.
        """
        if self._agg_candidates == 0:
            return 1.0
        return self._agg_optimal / self._agg_candidates

    # Allocation --------------------------------------------------------------

    def allocate(self, name: str, size_bytes: int) -> list[int]:
        """Allocate blocks for a file of ``size_bytes``; returns them expanded.

        Compatibility wrapper over :meth:`allocate_extents`.
        """
        return expand_extents(self.allocate_extents(name, size_bytes))

    def allocate_extents(self, name: str, size_bytes: int) -> list[tuple[int, int]]:
        """Allocate extents for a file of ``size_bytes`` and record them.

        Allocation fills free extents in address order (lowest block first),
        the way ext2 fills holes near the front of a block group.  A file that
        does not fit in the first hole spills into the next one, which is what
        turns the holes left by deleted temporary files into fragmentation.
        Zero-byte files own no blocks but are still tracked so they can be
        deleted symmetrically.
        """
        if name in self._extents:
            raise ValueError(f"file {name!r} already allocated")
        needed = self.blocks_needed(size_bytes)
        if needed > self._free_blocks:
            raise AllocationError(
                f"cannot allocate {needed} blocks for {name!r}: only {self._free_blocks} free"
            )
        extents = self._take(needed)
        self._extents[name] = extents
        self._block_counts[name] = needed
        if needed:
            self._agg_candidates += needed - 1
            self._agg_optimal += needed - len(extents)
        return list(extents)

    def extend(self, name: str, size_bytes: int) -> list[int]:
        """Append blocks for ``size_bytes`` more data; returns only the new blocks.

        Compatibility wrapper over :meth:`extend_extents`.
        """
        return expand_extents(self.extend_extents(name, size_bytes))

    def extend_extents(self, name: str, size_bytes: int) -> list[tuple[int, int]]:
        """Append extents for ``size_bytes`` more data to an existing file.

        Returns only the newly allocated extents (before any merge with the
        file's previous tail).  Like :meth:`allocate_extents`, new space comes
        from the lowest-address free extents, so extending a file after
        something else was allocated (or a hole was left) splits it.  The
        file keeps its position in :meth:`file_names` insertion order.
        """
        extents = self._extents.get(name)
        if extents is None:
            raise KeyError(f"unknown file {name!r}")
        needed = self.blocks_needed(size_bytes)
        if needed == 0:
            return []
        if needed > self._free_blocks:
            raise AllocationError(
                f"cannot extend {name!r} by {needed} blocks: only {self._free_blocks} free"
            )
        old_blocks = self._block_counts[name]
        old_runs = len(extents)
        pieces = self._take(needed)
        # Merge the first new piece into the file's tail when contiguous, so
        # len(extents) stays equal to the contiguous-run count.
        if extents and extents[-1][0] + extents[-1][1] == pieces[0][0]:
            tail_start, tail_length = extents[-1]
            extents[-1] = (tail_start, tail_length + pieces[0][1])
            extents.extend(pieces[1:])
        else:
            extents.extend(pieces)
        new_blocks = old_blocks + needed
        self._block_counts[name] = new_blocks
        self._agg_candidates += (new_blocks - 1) - (old_blocks - 1 if old_blocks else 0)
        self._agg_optimal += (new_blocks - len(extents)) - (old_blocks - old_runs)
        return pieces

    def delete(self, name: str) -> None:
        """Free all blocks owned by ``name``."""
        extents = self._extents.pop(name, None)
        if extents is None:
            raise KeyError(f"unknown file {name!r}")
        blocks = self._block_counts.pop(name)
        if blocks:
            self._agg_candidates -= blocks - 1
            self._agg_optimal -= blocks - len(extents)
        self._free_blocks += blocks
        for start, length in extents:
            self._release_extent(start, length)

    def free(self, name: str) -> int:
        """Public free path: release ``name``'s blocks, returning how many.

        Unlike :meth:`delete` (which raises ``KeyError`` for compatibility
        with the original API), ``free`` raises :class:`DoubleFreeError` when
        the file is not currently allocated — the unambiguous signal a trace
        replayer needs for a delete of an already-deleted file.
        """
        if name not in self._extents:
            raise DoubleFreeError(f"double free: {name!r} is not currently allocated")
        freed = self._block_counts[name]
        self.delete(name)
        return freed

    def reallocate(self, name: str, size_bytes: int) -> list[int]:
        """Free ``name`` and allocate it afresh at ``size_bytes``.

        The free happens first, so the new allocation may reuse the file's own
        old blocks — exactly what a rewrite-in-place of a churned file does on
        ext2.  Raises :class:`DoubleFreeError` when the file is not allocated
        and :class:`AllocationError` (with the file left deallocated) when the
        new size does not fit.
        """
        if name not in self._extents:
            raise DoubleFreeError(f"cannot reallocate {name!r}: not currently allocated")
        self.free(name)
        return self.allocate(name, size_bytes)

    def adopt_extents(self, name: str, extents: list[tuple[int, int]]) -> None:
        """Record ``name`` as owning exactly ``extents``, carving them from the
        free list.

        Unlike :meth:`allocate_extents` the caller dictates *where* the blocks
        sit — this is how a shard merge folds several per-shard disks into one
        address space: each shard's extents are shifted by the shard's base
        offset and adopted verbatim, so the merged layout (and therefore the
        merged layout score) is exactly the concatenation of the shard
        layouts.  Every block of every extent must currently be free;
        :class:`AllocationError` is raised (with the disk unchanged) when a
        range is out of bounds or already allocated.

        ``extents`` must be in logical (file offset) order; runs that happen
        to be adjacent on disk are merged on adoption so ``len(extents)``
        keeps meaning the file's contiguous-run count.
        """
        if name in self._extents:
            raise ValueError(f"file {name!r} already allocated")
        canonical: list[tuple[int, int]] = []
        total = 0
        for start, length in extents:
            if length <= 0:
                raise ValueError(f"extent ({start}, {length}) has non-positive length")
            if start < 0 or start + length > self._num_blocks:
                raise AllocationError(
                    f"cannot adopt ({start}, {length}) for {name!r}: outside the "
                    f"disk's {self._num_blocks} blocks"
                )
            total += length
            if canonical and canonical[-1][0] + canonical[-1][1] == start:
                canonical[-1] = (canonical[-1][0], canonical[-1][1] + length)
            else:
                canonical.append((start, length))
        # Validate every range against the free list before mutating anything,
        # so a partial failure cannot leave blocks half-carved.
        by_start = sorted(canonical)
        for (start, length), (next_start, _) in zip(by_start, by_start[1:]):
            if start + length > next_start:
                raise ValueError(f"extents for {name!r} overlap at block {next_start}")
        for start, length in canonical:
            index = bisect.bisect_right(self._free_starts, start) - 1
            if (
                index < 0
                or start + length > self._free_starts[index] + self._free_lengths[index]
            ):
                raise AllocationError(
                    f"cannot adopt ({start}, {length}) for {name!r}: range is not free"
                )
        for start, length in canonical:
            self._carve(start, length)
        self._free_blocks -= total
        self._extents[name] = canonical
        self._block_counts[name] = total
        if total:
            self._agg_candidates += total - 1
            self._agg_optimal += total - len(canonical)

    def rename(self, old_name: str, new_name: str) -> None:
        """Transfer ``old_name``'s allocation to ``new_name`` (blocks unchanged)."""
        if old_name not in self._extents:
            raise KeyError(f"unknown file {old_name!r}")
        if new_name in self._extents:
            raise ValueError(f"file {new_name!r} already allocated")
        self._extents[new_name] = self._extents.pop(old_name)
        self._block_counts[new_name] = self._block_counts.pop(old_name)

    # Free-list internals ------------------------------------------------------

    def _take(self, needed: int) -> list[tuple[int, int]]:
        """Carve ``needed`` blocks off the front of the free list, first-fit.

        Returns the pieces as extents.  Pieces from different free extents are
        never contiguous (the free list keeps adjacent extents coalesced), so
        the result is already in canonical run form.
        """
        if needed == 0:
            return []
        starts = self._free_starts
        lengths = self._free_lengths
        pieces: list[tuple[int, int]] = []
        consumed = 0
        remaining = needed
        while remaining > 0:
            start = starts[consumed]
            length = lengths[consumed]
            if length <= remaining:
                pieces.append((start, length))
                remaining -= length
                consumed += 1
            else:
                pieces.append((start, remaining))
                starts[consumed] = start + remaining
                lengths[consumed] = length - remaining
                remaining = 0
        if consumed:
            del starts[:consumed]
            del lengths[:consumed]
        self._free_blocks -= needed
        return pieces

    def _carve(self, start: int, length: int) -> None:
        """Remove the (validated) range ``[start, start+length)`` from the free
        list, splitting the containing free extent as needed."""
        index = bisect.bisect_right(self._free_starts, start) - 1
        free_start = self._free_starts[index]
        free_length = self._free_lengths[index]
        left = start - free_start
        right = (free_start + free_length) - (start + length)
        if left and right:
            self._free_lengths[index] = left
            self._free_starts.insert(index + 1, start + length)
            self._free_lengths.insert(index + 1, right)
        elif left:
            self._free_lengths[index] = left
        elif right:
            self._free_starts[index] = start + length
            self._free_lengths[index] = right
        else:
            del self._free_starts[index]
            del self._free_lengths[index]

    def _release_extent(self, start: int, length: int) -> None:
        index = bisect.bisect_left(self._free_starts, start)
        self._free_starts.insert(index, start)
        self._free_lengths.insert(index, length)
        self._coalesce_around(index)

    def _coalesce_around(self, index: int) -> None:
        # Merge with the following extent if adjacent.
        if index + 1 < len(self._free_starts):
            end = self._free_starts[index] + self._free_lengths[index]
            if end == self._free_starts[index + 1]:
                self._free_lengths[index] += self._free_lengths[index + 1]
                del self._free_starts[index + 1]
                del self._free_lengths[index + 1]
        # Merge with the preceding extent if adjacent.
        if index > 0:
            previous_end = self._free_starts[index - 1] + self._free_lengths[index - 1]
            if previous_end == self._free_starts[index]:
                self._free_lengths[index - 1] += self._free_lengths[index]
                del self._free_starts[index]
                del self._free_lengths[index]

    # Cost model ---------------------------------------------------------------

    def contiguous_runs(self, name: str) -> int:
        """Number of contiguous block runs a file occupies (1 = perfectly laid out)."""
        return self.run_count(name)

    def read_time_ms(self, name: str) -> float:
        """Simulated time to read a whole file from disk (O(1) per file)."""
        blocks = self.block_count(name)
        if not blocks:
            return 0.0
        return self._geometry.access_time_ms(len(self._extents[name]), blocks)

    def metadata_read_time_ms(self) -> float:
        """Simulated cost of one metadata (inode/directory block) read."""
        return self._geometry.access_time_ms(1, 1)

    def summary(self) -> dict:
        return {
            "num_blocks": self._num_blocks,
            "used_blocks": self.used_blocks,
            "free_blocks": self._free_blocks,
            "files": self.num_files,
            "free_extents": len(self._free_starts),
            "file_extents": self.total_extents,
            "layout_score": self.layout_score(),
        }


def expand_extents(extents: list[tuple[int, int]]) -> list[int]:
    """Materialise extents into the individual block numbers they cover."""
    blocks: list[int] = []
    for start, length in extents:
        blocks.extend(range(start, start + length))
    return blocks
