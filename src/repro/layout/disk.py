"""Simulated block device and allocator.

A :class:`SimulatedDisk` stands in for the real Ext2/Ext3 partition the paper
uses.  It models the single property the layout experiments depend on: which
logical blocks of which file sit where, and therefore whether consecutive file
blocks are adjacent on disk.  Allocation is first-fit over a free-extent list,
which is close enough to ext2's block allocator for the create/delete
fragmentation trick to behave the same way (deleting a temporary file leaves a
hole that splits the next allocation).

The disk also exposes a simple cost model (seek + rotational + transfer time
per contiguous run) used by the ``find``/``grep`` workload simulators.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

__all__ = ["SimulatedDisk", "AllocationError", "DoubleFreeError", "DiskGeometry"]


class AllocationError(RuntimeError):
    """Raised when the disk has insufficient free space for an allocation."""


class DoubleFreeError(RuntimeError):
    """Raised when :meth:`SimulatedDisk.free` targets a file that is not allocated.

    Covers both a genuine double free (the file was already freed) and a free
    of a name that never existed; either way the caller's view of the disk has
    diverged from the allocator's, which trace replay must surface loudly
    instead of silently corrupting the free list.
    """


@dataclass(frozen=True)
class DiskGeometry:
    """Timing model of the simulated disk.

    The defaults approximate a 7200 RPM SATA disk of the paper's era: 8.5 ms
    average seek, 4.16 ms average rotational delay, ~100 MB/s sequential
    transfer with 4 KB blocks.
    """

    block_size: int = 4096
    seek_time_ms: float = 8.5
    rotational_delay_ms: float = 4.16
    transfer_rate_mb_s: float = 100.0

    def transfer_time_ms(self, num_blocks: int) -> float:
        megabytes = num_blocks * self.block_size / (1024.0 * 1024.0)
        return 1000.0 * megabytes / self.transfer_rate_mb_s

    def access_time_ms(self, contiguous_runs: int, num_blocks: int) -> float:
        """Time to read ``num_blocks`` split into ``contiguous_runs`` runs."""
        positioning = contiguous_runs * (self.seek_time_ms + self.rotational_delay_ms)
        return positioning + self.transfer_time_ms(num_blocks)


class SimulatedDisk:
    """First-fit block allocator over a fixed number of blocks."""

    def __init__(self, num_blocks: int, geometry: DiskGeometry | None = None) -> None:
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        self._num_blocks = num_blocks
        self._geometry = geometry or DiskGeometry()
        # Free extents as sorted, non-overlapping, non-adjacent [start, length] pairs.
        self._free_starts: list[int] = [0]
        self._free_lengths: list[int] = [num_blocks]
        self._allocations: dict[str, list[int]] = {}

    # Introspection ----------------------------------------------------------

    @property
    def geometry(self) -> DiskGeometry:
        return self._geometry

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def free_blocks(self) -> int:
        return sum(self._free_lengths)

    @property
    def used_blocks(self) -> int:
        return self._num_blocks - self.free_blocks

    @property
    def num_files(self) -> int:
        return len(self._allocations)

    def blocks_of(self, name: str) -> list[int]:
        """Block numbers owned by ``name`` in logical (file offset) order."""
        if name not in self._allocations:
            raise KeyError(f"unknown file {name!r}")
        return list(self._allocations[name])

    def file_names(self) -> list[str]:
        """Names of every file currently allocated on the disk."""
        return list(self._allocations.keys())

    def has_file(self, name: str) -> bool:
        return name in self._allocations

    def blocks_needed(self, size_bytes: int) -> int:
        block_size = self._geometry.block_size
        return max(1, (size_bytes + block_size - 1) // block_size) if size_bytes > 0 else 0

    # Allocation --------------------------------------------------------------

    def allocate(self, name: str, size_bytes: int) -> list[int]:
        """Allocate blocks for a file of ``size_bytes`` and record them.

        Allocation fills free extents in address order (lowest block first),
        the way ext2 fills holes near the front of a block group.  A file that
        does not fit in the first hole spills into the next one, which is what
        turns the holes left by deleted temporary files into fragmentation.
        Zero-byte files own no blocks but are still tracked so they can be
        deleted symmetrically.
        """
        if name in self._allocations:
            raise ValueError(f"file {name!r} already allocated")
        needed = self.blocks_needed(size_bytes)
        if needed > self.free_blocks:
            raise AllocationError(
                f"cannot allocate {needed} blocks for {name!r}: only {self.free_blocks} free"
            )
        blocks: list[int] = []
        remaining = needed
        while remaining > 0:
            start = self._free_starts[0]
            length = self._free_lengths[0]
            take = min(length, remaining)
            blocks.extend(range(start, start + take))
            if take == length:
                del self._free_starts[0]
                del self._free_lengths[0]
            else:
                self._free_starts[0] = start + take
                self._free_lengths[0] = length - take
            remaining -= take
        self._allocations[name] = blocks
        return list(blocks)

    def extend(self, name: str, size_bytes: int) -> list[int]:
        """Append blocks for ``size_bytes`` more data to an existing file.

        Returns only the newly added blocks.  Like :meth:`allocate`, the new
        blocks come from the lowest-address free extents, so extending a file
        after something else was allocated (or a hole was left) splits it.
        """
        if name not in self._allocations:
            raise KeyError(f"unknown file {name!r}")
        needed = self.blocks_needed(size_bytes)
        if needed == 0:
            return []
        if needed > self.free_blocks:
            raise AllocationError(
                f"cannot extend {name!r} by {needed} blocks: only {self.free_blocks} free"
            )
        existing = self._allocations.pop(name)
        try:
            new_blocks = self.allocate(name, size_bytes)
        finally:
            # Re-attach whatever the nested allocate recorded to the original
            # allocation, keeping logical block order.
            added = self._allocations.pop(name, [])
            self._allocations[name] = existing + added
        return new_blocks

    def delete(self, name: str) -> None:
        """Free all blocks owned by ``name``."""
        if name not in self._allocations:
            raise KeyError(f"unknown file {name!r}")
        blocks = self._allocations.pop(name)
        for start, length in _runs(sorted(blocks)):
            self._release_extent(start, length)

    def free(self, name: str) -> int:
        """Public free path: release ``name``'s blocks, returning how many.

        Unlike :meth:`delete` (which raises ``KeyError`` for compatibility
        with the original API), ``free`` raises :class:`DoubleFreeError` when
        the file is not currently allocated — the unambiguous signal a trace
        replayer needs for a delete of an already-deleted file.
        """
        if name not in self._allocations:
            raise DoubleFreeError(f"double free: {name!r} is not currently allocated")
        freed = len(self._allocations[name])
        self.delete(name)
        return freed

    def reallocate(self, name: str, size_bytes: int) -> list[int]:
        """Free ``name`` and allocate it afresh at ``size_bytes``.

        The free happens first, so the new allocation may reuse the file's own
        old blocks — exactly what a rewrite-in-place of a churned file does on
        ext2.  Raises :class:`DoubleFreeError` when the file is not allocated
        and :class:`AllocationError` (with the file left deallocated) when the
        new size does not fit.
        """
        if name not in self._allocations:
            raise DoubleFreeError(f"cannot reallocate {name!r}: not currently allocated")
        self.free(name)
        return self.allocate(name, size_bytes)

    def rename(self, old_name: str, new_name: str) -> None:
        """Transfer ``old_name``'s allocation to ``new_name`` (blocks unchanged)."""
        if old_name not in self._allocations:
            raise KeyError(f"unknown file {old_name!r}")
        if new_name in self._allocations:
            raise ValueError(f"file {new_name!r} already allocated")
        self._allocations[new_name] = self._allocations.pop(old_name)

    def _release_extent(self, start: int, length: int) -> None:
        index = bisect.bisect_left(self._free_starts, start)
        self._free_starts.insert(index, start)
        self._free_lengths.insert(index, length)
        self._coalesce_around(index)

    def _coalesce_around(self, index: int) -> None:
        # Merge with the following extent if adjacent.
        if index + 1 < len(self._free_starts):
            end = self._free_starts[index] + self._free_lengths[index]
            if end == self._free_starts[index + 1]:
                self._free_lengths[index] += self._free_lengths[index + 1]
                del self._free_starts[index + 1]
                del self._free_lengths[index + 1]
        # Merge with the preceding extent if adjacent.
        if index > 0:
            previous_end = self._free_starts[index - 1] + self._free_lengths[index - 1]
            if previous_end == self._free_starts[index]:
                self._free_lengths[index - 1] += self._free_lengths[index]
                del self._free_starts[index]
                del self._free_lengths[index]

    # Cost model ---------------------------------------------------------------

    def contiguous_runs(self, name: str) -> int:
        """Number of contiguous block runs a file occupies (1 = perfectly laid out)."""
        blocks = self.blocks_of(name)
        if not blocks:
            return 0
        return len(list(_runs(sorted(blocks))))

    def read_time_ms(self, name: str) -> float:
        """Simulated time to read a whole file from disk."""
        blocks = self.blocks_of(name)
        if not blocks:
            return 0.0
        runs = self.contiguous_runs(name)
        return self._geometry.access_time_ms(runs, len(blocks))

    def metadata_read_time_ms(self) -> float:
        """Simulated cost of one metadata (inode/directory block) read."""
        return self._geometry.access_time_ms(1, 1)

    def summary(self) -> dict:
        return {
            "num_blocks": self._num_blocks,
            "used_blocks": self.used_blocks,
            "free_blocks": self.free_blocks,
            "files": self.num_files,
            "free_extents": len(self._free_starts),
        }


def _runs(sorted_blocks: list[int]):
    """Yield (start, length) contiguous runs from a sorted block list."""
    if not sorted_blocks:
        return
    run_start = sorted_blocks[0]
    run_length = 1
    for block in sorted_blocks[1:]:
        if block == run_start + run_length:
            run_length += 1
        else:
            yield run_start, run_length
            run_start = block
            run_length = 1
    yield run_start, run_length
