"""Exception-safety rules: don't swallow simulated crashes or kill signals.

The fault-injection plane (:mod:`repro.faults`) threads
:class:`~repro.faults.plan.InjectedCrash` — a ``BaseException`` subclass —
through the cache, store, queue, worker, and sink layers so chaos tests can
prove crash consistency.  An overly broad handler on one of those paths can
turn a simulated power cut into a silently-absorbed no-op, voiding the whole
experiment; a ``BaseException`` handler that fails to re-raise additionally
eats ``KeyboardInterrupt`` and worker lease-loss signals.

Rules:

* ``bare-except`` — ``except:`` anywhere; it catches everything including
  ``SystemExit`` and gives the reader no contract at all.
* ``broad-except`` — ``except Exception`` that does not re-raise, in a
  package threaded with fault-injection points.  Intentional terminal
  handlers (verdict capture, HTTP 500 boundaries, quarantine-and-heal) must
  carry a ``# detlint: ignore[broad-except]`` pragma with a justification.
* ``swallowed-crash`` — ``except BaseException`` without a bare ``raise``,
  unless an earlier handler of the same ``try`` already re-raises
  ``InjectedCrash``/``KeyboardInterrupt`` (the worker idiom: let process
  death propagate, absorb everything else as a job failure).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, Module, Project, Rule, register_rule

__all__ = ["BareExceptRule", "BroadExceptRule", "SwallowedCrashRule"]

_CRASH_NAMES = frozenset({"InjectedCrash", "KeyboardInterrupt", "SystemExit"})


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """The exception class names a handler catches (by trailing name)."""
    names: set[str] = set()
    node = handler.type
    elements = node.elts if isinstance(node, ast.Tuple) else [node] if node else []
    for element in elements:
        if isinstance(element, ast.Name):
            names.add(element.id)
        elif isinstance(element, ast.Attribute):
            names.add(element.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise`` (outside nested defs)."""
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _crash_propagated_earlier(try_node: ast.Try, handler: ast.ExceptHandler) -> bool:
    """An earlier handler catches InjectedCrash/KeyboardInterrupt and re-raises."""
    for earlier in try_node.handlers:
        if earlier is handler:
            return False
        if _handler_names(earlier) & _CRASH_NAMES and _reraises(earlier):
            return True
    return False


def _iter_handlers(module: Module) -> Iterable[tuple[ast.Try, ast.ExceptHandler]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                yield node, handler


@register_rule
class BareExceptRule(Rule):
    name = "bare-except"
    description = "bare 'except:' catches everything, including SystemExit"

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for _try_node, handler in _iter_handlers(module):
            if handler.type is None:
                yield self.finding(
                    module,
                    handler,
                    "bare 'except:' clause",
                    hint="name the exceptions this code can actually handle",
                )


@register_rule
class BroadExceptRule(Rule):
    name = "broad-except"
    description = (
        "'except Exception' without re-raise in a fault-threaded package — "
        "audit against swallowing failure signals, then narrow or pragma"
    )

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        if not project.is_fault_threaded(module):
            return
        for _try_node, handler in _iter_handlers(module):
            if "Exception" not in _handler_names(handler):
                continue
            if _reraises(handler):
                continue
            yield self.finding(
                module,
                handler,
                "'except Exception' without re-raise in a fault-threaded module",
                hint="narrow to the exceptions this path produces, re-raise, or "
                "annotate with '# detlint: ignore[broad-except] <why>' if the "
                "broad catch is the contract",
            )


@register_rule
class SwallowedCrashRule(Rule):
    name = "swallowed-crash"
    description = (
        "'except BaseException' without re-raise can absorb InjectedCrash, "
        "KeyboardInterrupt, and lease-loss signals"
    )

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for try_node, handler in _iter_handlers(module):
            if "BaseException" not in _handler_names(handler):
                continue
            if _reraises(handler):
                continue
            if _crash_propagated_earlier(try_node, handler):
                continue
            yield self.finding(
                module,
                handler,
                "'except BaseException' without a bare re-raise",
                hint="re-raise after cleanup, or catch and re-raise "
                "InjectedCrash/KeyboardInterrupt in an earlier handler",
            )
