"""Reporters: render an analysis run (plus baseline split) as text or JSON.

The text reporter is for humans at a terminal; the JSON reporter is the
machine interface the CI gate archives.  Both show the same three-way split
against the baseline — *new* findings (fail the run), *baselined* findings
(accepted debt), and *stale* baseline entries (debt already paid off, prune
them from the file).
"""

from __future__ import annotations

import json

from repro.analysis.baseline import BaselineSplit
from repro.analysis.core import AnalysisResult

__all__ = ["render_json", "render_text"]


def render_text(result: AnalysisResult, split: BaselineSplit) -> str:
    """Human-readable report: new findings in full, the rest summarized."""
    sections: list[str] = []
    if split.new:
        sections.append("\n".join(finding.render() for finding in split.new))
    if split.baselined:
        lines = ["baselined findings (accepted debt, not failing the run):"]
        lines.extend(
            f"  {finding.path}:{finding.line}: {finding.rule}: {finding.message}"
            for finding in split.baselined
        )
        sections.append("\n".join(lines))
    if split.stale:
        lines = ["stale baseline entries (fixed — prune them from the baseline):"]
        lines.extend(
            f"  {path}: {rule}: {message}" for rule, path, message in split.stale
        )
        sections.append("\n".join(lines))
    summary = (
        f"{result.files} files, {len(result.rules)} rules: "
        f"{len(split.new)} new, {len(split.baselined)} baselined, "
        f"{len(split.stale)} stale, {len(result.suppressed)} suppressed by pragma"
    )
    sections.append(summary)
    return "\n\n".join(sections)


def render_json(result: AnalysisResult, split: BaselineSplit) -> str:
    """Machine-readable report; ``new`` is the set that gates CI."""
    payload = result.as_dict()
    payload["new"] = [finding.as_dict() for finding in split.new]
    payload["baselined"] = [finding.as_dict() for finding in split.baselined]
    payload["stale"] = [
        {"rule": rule, "path": path, "message": message}
        for rule, path, message in split.stale
    ]
    payload["summary"] = {
        "new": len(split.new),
        "baselined": len(split.baselined),
        "stale": len(split.stale),
        "suppressed": len(result.suppressed),
    }
    return json.dumps(payload, indent=2)
