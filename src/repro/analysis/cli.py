"""``impressions analyze`` — the detlint static-analysis gate.

::

    impressions analyze [PATHS ...] [--rule RULE ...] [--baseline FILE]
                        [--write-baseline] [--json] [--list-rules]
                        [--root DIR] [--obs-dir DIR]

Runs the determinism / cache-soundness rule suite over the given paths
(default: ``src`` when it exists, else the current directory) and reports
findings with precise spans and fix hints.

Exit status: 0 when every finding is covered by the baseline (or there are
none), 1 when new findings exist, 2 on usage errors.  ``--write-baseline``
accepts the current findings as debt and rewrites the baseline file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline, split_findings
from repro.analysis.core import AnalysisError, analyze, rule_descriptions
from repro.analysis.report import render_json, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="impressions analyze",
        description=(
            "Static analysis for determinism and cache soundness: knob purity, "
            "nondeterministic enumeration, exception safety, durability discipline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze (default: 'src' if present, else '.')",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="RULE",
        default=None,
        help="run only this rule (exact name, or a family prefix such as "
        "'nondet'); repeatable",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of accepted findings; new findings still fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="root that display paths and baseline keys are relative to "
        "(default: current directory)",
    )
    parser.add_argument(
        "--obs-dir",
        metavar="PATH",
        default=None,
        help="export analyzer telemetry (file/finding counters) to this directory",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, description in rule_descriptions().items():
            print(f"{name}: {description}")
        return 0

    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline FILE")

    paths = list(args.paths)
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]

    telemetry = None
    if args.obs_dir:
        from repro import obs

        telemetry = obs.Telemetry(run_id="detlint")

    from repro.core.cli import obs_use_scope

    try:
        with obs_use_scope(telemetry):
            result = analyze(paths, rules=args.rule, root=args.root)
    except AnalysisError as error:
        print(f"impressions analyze: error: {error}", file=sys.stderr)
        return 2

    if telemetry is not None:
        from repro import obs

        obs.save(telemetry, args.obs_dir)

    baseline_path = Path(args.baseline) if args.baseline else None
    if args.write_baseline:
        assert baseline_path is not None
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"wrote baseline with {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    baseline = None
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, OSError) as error:
            print(
                f"impressions analyze: error: bad baseline {baseline_path}: {error}",
                file=sys.stderr,
            )
            return 2

    split = split_findings(result.findings, baseline)
    report = render_json(result, split) if args.json else render_text(result, split)
    print(report)
    return 1 if split.new else 0


if __name__ == "__main__":
    raise SystemExit(main())
