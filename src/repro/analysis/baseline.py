"""Committed-baseline support: ratchet the repo clean without a flag day.

A baseline file records currently-accepted findings as a multiset of
``(rule, path, message)`` keys.  Line numbers are deliberately excluded so
the baseline survives unrelated edits above a grandfathered site; two
identical findings in one file are tracked by count.

The contract is a ratchet:

* findings present in the baseline are reported as *baselined* and do not
  fail the run;
* findings absent from the baseline are *new* and fail the run;
* baseline entries with no matching finding are *stale* and reported so the
  file can be shrunk — the baseline only ever gets smaller.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.core import Finding

__all__ = ["Baseline", "BaselineSplit", "split_findings"]

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """A persisted multiset of accepted finding keys."""

    entries: Counter = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries=Counter(finding.key() for finding in findings))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {_FORMAT_VERSION})"
            )
        entries: Counter = Counter()
        for row in payload.get("findings", []):
            key = (str(row["rule"]), str(row["path"]), str(row["message"]))
            entries[key] += int(row.get("count", 1))
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        rows = [
            {"rule": rule, "path": file_path, "message": message, "count": count}
            for (rule, file_path, message), count in sorted(self.entries.items())
        ]
        payload = {"version": _FORMAT_VERSION, "findings": rows}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def __len__(self) -> int:
        return sum(self.entries.values())


@dataclass
class BaselineSplit:
    """The three-way partition of a run's findings against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[tuple[str, str, str]] = field(default_factory=list)


def split_findings(
    findings: Sequence[Finding], baseline: Baseline | None
) -> BaselineSplit:
    """Partition findings into new / baselined, and surface stale entries."""
    split = BaselineSplit()
    if baseline is None:
        split.new = list(findings)
        return split
    remaining = Counter(baseline.entries)
    for finding in findings:
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            split.baselined.append(finding)
        else:
            split.new.append(finding)
    for key, count in sorted(remaining.items()):
        split.stale.extend([key] * count)
    return split
