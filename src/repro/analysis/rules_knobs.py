"""Knob purity: a stage's ``config_knobs`` must equal what it actually reads.

The content-addressed stage cache is sound only because a stage fingerprint
covers *exactly* the config knobs that influence the stage
(:mod:`repro.pipeline.stage`).  Both failure directions are bugs:

* an **undeclared read** — the stage's behaviour varies with a knob its
  fingerprint ignores, so two different configs share one cache key and the
  second run restores the first run's artifact: silent cache poisoning
  (``knob-purity``);
* an **unused declaration** — the fingerprint varies with a knob the stage
  never consults, so sweeping that knob regenerates artifacts that would have
  been bit-identical: a false cache miss, wasted work (``knob-unused``).

The checker resolves reads through three layers:

1. direct attribute reads on a config alias (``config.layout_score``,
   ``context.config.beta``, or a local bound from either);
2. config *method* calls (``config.resolved_num_files()``) — charged with the
   knobs that method transitively reads, computed once by parsing
   :mod:`repro.core.config` itself;
3. helpers in the same module: module-level functions the stage calls (with
   the config/context threaded through) and methods inherited from
   module-local stage base classes, resolved to a fixpoint.

Reads of model-object attributes outside the knob view (``extension_model``,
``timestamp_model``, …) are ignored: configs carrying such overrides are
already excluded from the cache by
:func:`repro.pipeline.cache.config_cache_safe`.  Two context attributes alias
knobs: ``context.rng`` is seeded from the ``seed`` knob and
``context.content_generator`` exists iff the ``content_model`` knob enables
content.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Iterator, Mapping

from repro.analysis.core import Finding, Module, Project, Rule, register_rule

__all__ = [
    "KnobPurityRule",
    "KnobUnusedRule",
    "config_method_knobs",
    "stage_classes",
]

#: Config attributes that are not knob names themselves but whose value is a
#: function of one (see :meth:`ImpressionsConfig.to_knobs`).
CONFIG_ATTRIBUTE_ALIASES: Mapping[str, str] = {
    "generate_content": "content_model",
    "content": "content_model",
}

#: GenerationContext attributes derived from config knobs: reading them is
#: reading the knob.
CONTEXT_ATTRIBUTE_ALIASES: Mapping[str, str] = {
    "rng": "seed",
    "content_generator": "content_model",
}

#: Class names that mark a stage hierarchy even when defined in another
#: module (module-local bases are resolved by fixpoint on top of these).
STAGE_BASE_NAMES = frozenset({"Stage", "PostGenerationStage"})


def _knob_names() -> frozenset[str]:
    from repro.core.config import KNOB_NAMES

    return frozenset(KNOB_NAMES)


@lru_cache(maxsize=1)
def config_method_knobs() -> dict[str, frozenset[str]]:
    """Map ``ImpressionsConfig`` method name → knobs it transitively reads.

    Parsed from the real :mod:`repro.core.config` source so the map can never
    drift from the code it describes; cached for the process lifetime.
    """
    import repro.core.config as config_module

    with open(config_module.__file__, encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    class_node = next(
        node
        for node in tree.body
        if isinstance(node, ast.ClassDef) and node.name == "ImpressionsConfig"
    )
    knobs = _knob_names()
    direct: dict[str, set[str]] = {}
    calls: dict[str, set[str]] = {}
    for item in class_node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        reads: set[str] = set()
        called: set[str] = set()
        for node in ast.walk(item):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                if node.value.id != "self":
                    continue
                if node.attr in knobs:
                    reads.add(node.attr)
                elif node.attr in CONFIG_ATTRIBUTE_ALIASES:
                    reads.add(CONFIG_ATTRIBUTE_ALIASES[node.attr])
                else:
                    called.add(node.attr)  # resolved below iff it is a method
        direct[item.name] = reads
        calls[item.name] = called
    closed = {name: set(reads) for name, reads in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in closed:
            for callee in calls[name]:
                extra = closed.get(callee)
                if extra and not extra <= closed[name]:
                    closed[name] |= extra
                    changed = True
    return {name: frozenset(reads) for name, reads in closed.items()}


# Per-function read collection -------------------------------------------------


@dataclass
class _FunctionSummary:
    """Knob reads and local call edges of one function/method body."""

    knobs: set[str] = field(default_factory=set)
    knob_lines: dict[str, int] = field(default_factory=dict)  # first read line
    local_calls: set[str] = field(default_factory=set)  # module-level f(...)
    self_calls: set[str] = field(default_factory=set)  # self.m(...)

    def add(self, knob: str, line: int) -> None:
        self.knobs.add(knob)
        self.knob_lines.setdefault(knob, line)


class _ReadCollector(ast.NodeVisitor):
    """Collect knob reads from one function, tracking config/context aliases."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.summary = _FunctionSummary()
        self._knobs = _knob_names()
        self._methods = config_method_knobs()
        args = node.args
        params = [
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        self.config_aliases = {name for name in params if name == "config"}
        self.context_aliases = {name for name in params if name == "context"}
        for statement in node.body:
            self.visit(statement)

    # Alias tracking -----------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._track_alias(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._track_alias([node.target], node.value)
        self.generic_visit(node)

    def _track_alias(self, targets: list[ast.expr], value: ast.expr) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "config"
            and isinstance(value.value, ast.Name)
            and value.value.id in self.context_aliases
        ):
            self.config_aliases.add(name)
        elif isinstance(value, ast.Name) and value.id in self.config_aliases:
            self.config_aliases.add(name)

    # Reads --------------------------------------------------------------------

    def _config_value(self, node: ast.expr) -> bool:
        """Whether ``node`` evaluates to the config object."""
        if isinstance(node, ast.Name):
            return node.id in self.config_aliases
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "config"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.context_aliases
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and self._config_value(func.value):
            # config.method(...): charge the method's transitive knob reads
            # (an unknown name falls through to the attribute read below).
            for knob in self._methods.get(func.attr, frozenset()):
                self.summary.add(knob, node.lineno)
        elif isinstance(func, ast.Name):
            self.summary.local_calls.add(func.id)
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            self.summary.self_calls.add(func.attr)
        if not (isinstance(func, ast.Attribute) and self._config_value(func.value)):
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            if self._config_value(node.value):
                if node.attr in self._knobs:
                    self.summary.add(node.attr, node.lineno)
                elif node.attr in CONFIG_ATTRIBUTE_ALIASES:
                    self.summary.add(CONFIG_ATTRIBUTE_ALIASES[node.attr], node.lineno)
            elif (
                isinstance(node.value, ast.Name)
                and node.value.id in self.context_aliases
                and node.attr in CONTEXT_ATTRIBUTE_ALIASES
            ):
                self.summary.add(CONTEXT_ATTRIBUTE_ALIASES[node.attr], node.lineno)
        self.generic_visit(node)


# Stage discovery --------------------------------------------------------------


@dataclass
class _StageClass:
    node: ast.ClassDef
    declared: frozenset[str] | None  # None: no config_knobs assignment
    name_attr: str | None
    methods: dict[str, _FunctionSummary]


def _class_string_tuple(class_node: ast.ClassDef, attribute: str) -> frozenset[str] | None:
    """The value of a class-level ``attribute = ("a", "b")`` assignment."""
    for item in class_node.body:
        if not isinstance(item, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == attribute
            for target in item.targets
        ):
            continue
        if isinstance(item.value, (ast.Tuple, ast.List)):
            values = []
            for element in item.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    values.append(element.value)
            return frozenset(values)
        return frozenset()
    return None


def _class_name_attr(class_node: ast.ClassDef) -> str | None:
    for item in class_node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "name":
                    if isinstance(item.value, ast.Constant) and isinstance(
                        item.value.value, str
                    ):
                        return item.value.value
    return None


def _base_names(class_node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in class_node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def stage_classes(module: Module) -> Iterator[tuple[ast.ClassDef, list[ast.ClassDef]]]:
    """Yield ``(stage_class, local_ancestors)`` for every stage class.

    A class is a stage when its base chain — resolved through classes defined
    in the same module — reaches one of :data:`STAGE_BASE_NAMES`.
    """
    local_classes = {
        node.name: node for node in module.tree.body if isinstance(node, ast.ClassDef)
    }
    stage_names: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, node in local_classes.items():
            if name in stage_names:
                continue
            bases = _base_names(node)
            if bases & STAGE_BASE_NAMES or bases & stage_names:
                stage_names.add(name)
                changed = True
    for name in sorted(stage_names):
        node = local_classes[name]
        ancestors: list[ast.ClassDef] = []
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for base in _base_names(current):
                ancestor = local_classes.get(base)
                if ancestor is not None and ancestor not in ancestors:
                    ancestors.append(ancestor)
                    frontier.append(ancestor)
        yield node, ancestors


def _module_function_knobs(module: Module) -> dict[str, set[str]]:
    """Transitive knob reads of every module-level function (fixpoint)."""
    summaries: dict[str, _FunctionSummary] = {}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summaries[node.name] = _ReadCollector(node).summary
    closed = {name: set(summary.knobs) for name, summary in summaries.items()}
    changed = True
    while changed:
        changed = False
        for name, summary in summaries.items():
            for callee in summary.local_calls:
                extra = closed.get(callee)
                if extra and not extra <= closed[name]:
                    closed[name] |= extra
                    changed = True
    return closed


@dataclass
class _StageAnalysis:
    """Resolved declared/used knob sets for one concrete stage class."""

    class_node: ast.ClassDef
    stage_name: str
    declared: frozenset[str]
    used: frozenset[str]
    read_lines: dict[str, int]


def _analyze_stages(module: Module) -> Iterator[_StageAnalysis]:
    function_knobs = _module_function_knobs(module)
    for class_node, ancestors in stage_classes(module):
        stage_name = _class_name_attr(class_node)
        if not stage_name:
            continue  # abstract base (Stage itself, PostGenerationStage, …)
        declared = _class_string_tuple(class_node, "config_knobs")
        if declared is None:
            for ancestor in ancestors:
                declared = _class_string_tuple(ancestor, "config_knobs")
                if declared is not None:
                    break
        declared = declared if declared is not None else frozenset()

        # Method table: ancestors first so subclass overrides win.
        methods: dict[str, tuple[_FunctionSummary, int]] = {}
        for owner in (*reversed(ancestors), class_node):
            for item in owner.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = (
                        _ReadCollector(item).summary,
                        item.lineno,
                    )

        used: set[str] = set()
        read_lines: dict[str, int] = {}
        for summary, lineno in methods.values():
            for knob in summary.knobs:
                used.add(knob)
                read_lines.setdefault(knob, summary.knob_lines.get(knob, lineno))
            # self.m() edges all land in the same method table, and every
            # method's reads are unioned anyway, so no per-edge resolution is
            # needed — the union over methods *is* the fixpoint.
            for callee in summary.local_calls:
                for knob in function_knobs.get(callee, set()):
                    used.add(knob)
                    read_lines.setdefault(knob, lineno)
        yield _StageAnalysis(
            class_node=class_node,
            stage_name=stage_name,
            declared=declared,
            used=frozenset(used),
            read_lines=read_lines,
        )


@register_rule
class KnobPurityRule(Rule):
    name = "knob-purity"
    description = (
        "a Stage reads a config knob it does not declare in config_knobs — "
        "its fingerprint ignores the knob, so distinct configs share a cache "
        "key (cache poisoning)"
    )

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for stage in _analyze_stages(module):
            for knob in sorted(stage.used - stage.declared):
                line = stage.read_lines.get(knob, stage.class_node.lineno)
                anchor = ast.Constant(value=None)
                anchor.lineno = line
                anchor.col_offset = 0
                yield self.finding(
                    module,
                    anchor,
                    f"stage '{stage.stage_name}' reads config knob '{knob}' "
                    "not declared in its config_knobs",
                    hint=f"add '{knob}' to {stage.class_node.name}.config_knobs "
                    "so the stage fingerprint covers it",
                )


@register_rule
class KnobUnusedRule(Rule):
    name = "knob-unused"
    description = (
        "a Stage declares a config knob it never reads — sweeping that knob "
        "invalidates cache entries that would have been bit-identical (false "
        "cache miss)"
    )

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for stage in _analyze_stages(module):
            for knob in sorted(stage.declared - stage.used):
                yield self.finding(
                    module,
                    stage.class_node,
                    f"stage '{stage.stage_name}' declares config knob '{knob}' "
                    "in config_knobs but never reads it",
                    hint=f"drop '{knob}' from {stage.class_node.name}.config_knobs, "
                    "or annotate the declaration if the dependency is indirect",
                )
