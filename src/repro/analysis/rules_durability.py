"""Durability-discipline rules: one write path, one transaction shape.

Crash consistency in this repo rests on two conventions:

* every durable artifact goes through
  :func:`repro.faults.atomic.atomic_write_bytes` (tmp file + checksum seal +
  fsync + rename) so a reader sees either the full sealed payload or a
  detectable corruption — never a silent prefix;
* every multi-statement sqlite mutation in the job queue runs inside a
  ``BEGIN IMMEDIATE`` transaction, which takes the write lock *up front* and
  makes lease handoff atomic under concurrent workers.

Rules:

* ``raw-write`` — a write-mode builtin ``open(...)`` in a module that imports
  the atomic-write layer: it opted into the discipline, so a bare write is
  either a bug or needs a pragma explaining why torn bytes are acceptable
  (e.g. append-only logs with read-side healing, best-effort sidecars).
* ``sqlite-tx`` — a deferred ``BEGIN`` (sqlite upgrades the lock mid-
  transaction, which can deadlock or interleave under load), or mutating SQL
  executed directly on a connection attribute instead of a cursor from the
  ``BEGIN IMMEDIATE`` helper.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, Module, Project, Rule, register_rule

__all__ = ["RawWriteRule", "SqliteTxRule"]

_WRITE_MODE_CHARS = set("wax+")


def _call_mode(node: ast.Call) -> str | None:
    """The literal mode of a builtin ``open(...)`` call, or None."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: give the benefit of the doubt


@register_rule
class RawWriteRule(Rule):
    name = "raw-write"
    description = (
        "write-mode open() in a module using the atomic-write layer — durable "
        "bytes must go through atomic_write_bytes (seal + fsync + rename)"
    )

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        imports = module.imported_modules()
        if not any(
            name in ("repro.faults.atomic", "repro.faults.atomic.atomic_write_bytes")
            or name.startswith("repro.faults.atomic.")
            for name in imports
        ) and "repro.faults.atomic" not in imports:
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
            ):
                continue
            mode = _call_mode(node)
            if mode is None or not (_WRITE_MODE_CHARS & set(mode)):
                continue
            yield self.finding(
                module,
                node,
                f"open(..., {mode!r}) bypasses atomic_write_bytes in a module "
                "that imports the atomic-write layer",
                hint="write through repro.faults.atomic.atomic_write_bytes, or "
                "annotate with '# detlint: ignore[raw-write] <why torn bytes "
                "are tolerable here>'",
            )


_MUTATING_PREFIXES = ("INSERT", "UPDATE", "DELETE", "REPLACE")


def _sql_literal(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
        node.args[0].value, str
    ):
        return node.args[0].value
    return None


@register_rule
class SqliteTxRule(Rule):
    name = "sqlite-tx"
    description = (
        "deferred BEGIN or connection-level mutation — queue writes must run "
        "inside BEGIN IMMEDIATE so the write lock is taken up front"
    )

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        if "sqlite3" not in module.imported_modules():
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("execute", "executescript", "executemany")
            ):
                continue
            sql = _sql_literal(node)
            if sql is None:
                continue
            statement = sql.lstrip().upper()
            if statement.startswith("BEGIN") and "IMMEDIATE" not in statement:
                yield self.finding(
                    module,
                    node,
                    f"deferred transaction {sql.strip()!r} — the write lock is "
                    "only taken at the first mutation",
                    hint="use BEGIN IMMEDIATE so concurrent writers serialize "
                    "at transaction start",
                )
                continue
            receiver = node.func.value
            on_connection = (
                isinstance(receiver, ast.Attribute)
                and receiver.attr in ("_conn", "conn", "connection")
            )
            if on_connection and statement.startswith(_MUTATING_PREFIXES):
                yield self.finding(
                    module,
                    node,
                    f"mutating SQL {sql.strip().split(chr(10))[0][:60]!r} executed "
                    "directly on the connection, outside a BEGIN IMMEDIATE "
                    "transaction",
                    hint="run mutations on a cursor from the _tx() helper "
                    "(BEGIN IMMEDIATE), or baseline/pragma genuinely idempotent "
                    "bootstrap statements",
                )
